#!/usr/bin/env python3
"""Performance trajectory from committed ``BENCH_*.json`` revisions.

Walks ``git log`` for every commit that touched a benchmark snapshot,
loads each revision's payload via ``git show``, and prints the headline
numbers per commit — engine speedup, serving busy cycles and p95
latency, cluster fleet cycles and the affinity/random ratio, SLO
attainment, video reprojection speedup and probe counts — so a
performance regression shows up as a trend break in one table instead
of a diff archaeology session.

Usage::

    python tools/bench_history.py                # table, newest last
    python tools/bench_history.py --json         # machine-readable
    python tools/bench_history.py --file BENCH_engine.json

Requires a git checkout (exits 1, not an exception, outside one).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

#: Snapshots tracked, with the headline metrics pulled from each.
BENCH_FILES = (
    "BENCH_serving.json",
    "BENCH_engine.json",
    "BENCH_cluster.json",
    "BENCH_slo.json",
    "BENCH_video.json",
)


def _git(root: Path, *args: str) -> str:
    return subprocess.run(
        ["git", "-C", str(root), *args],
        check=True,
        capture_output=True,
        text=True,
    ).stdout


def _revisions(root: Path, bench_file: str):
    """``(commit, date, subject)`` for every commit touching the file,
    oldest first."""
    out = _git(
        root, "log", "--follow", "--format=%H\t%as\t%s", "--", bench_file
    )
    rows = [line.split("\t", 2) for line in out.splitlines() if line.strip()]
    return list(reversed(rows))


def _payload_at(root: Path, commit: str, bench_file: str):
    try:
        return json.loads(_git(root, "show", f"{commit}:{bench_file}"))
    except (subprocess.CalledProcessError, json.JSONDecodeError):
        return None


def _headline(bench_file: str, payload) -> dict:
    """The metrics one snapshot revision contributes to its table row."""
    if payload is None:
        return {"note": "unreadable"}
    if bench_file == "BENCH_engine.json":
        serve = payload.get("serve", {})
        return {
            "serve_speedup": serve.get("speedup"),
            "micro_speedup": payload.get("frame_micro", {}).get("speedup"),
        }
    if bench_file == "BENCH_serving.json":
        policies = payload.get("policies", {})
        best_p95 = min(
            (p.get("p95_ms") for p in policies.values()
             if p.get("p95_ms") is not None),
            default=None,
        )
        busy = {p.get("busy_cycles") for p in policies.values()}
        return {
            "policies": len(policies),
            "busy_cycles": busy.pop() if len(busy) == 1 else sorted(
                b for b in busy if b is not None
            ),
            "best_p95_ms": best_p95,
        }
    if bench_file == "BENCH_cluster.json":
        return {
            "fleet_cycles": {
                name: r.get("total_busy_cycles")
                for name, r in payload.get("routers", {}).items()
            },
            "affinity_over_random": payload.get(
                "affinity_over_random_cycles"
            ),
        }
    if bench_file == "BENCH_slo.json":
        return {
            "interactive_attainment": {
                run: payload.get(run, {})
                .get("slo_attainment", {})
                .get("interactive")
                for run in ("baseline", "slo")
            },
            "slo_busy_cycles": payload.get("slo", {}).get("busy_cycles"),
        }
    if bench_file == "BENCH_video.json":
        keyframes = payload.get("keyframes", {})
        return {
            "orbit_speedup": payload.get("orbit", {}).get(
                "speedup_vs_fresh"
            ),
            "probes": {
                run: keyframes.get(run, {}).get("probes")
                for run in ("fixed", "adaptive")
            },
            "adaptive_min_psnr": keyframes.get("adaptive", {}).get(
                "min_psnr"
            ),
        }
    return {}


def history(root: Path, files=BENCH_FILES):
    """``{bench_file: [{commit, date, subject, **headline}, ...]}``,
    oldest revision first."""
    out = {}
    for bench_file in files:
        rows = []
        for commit, date, subject in _revisions(root, bench_file):
            payload = _payload_at(root, commit, bench_file)
            rows.append(
                {
                    "commit": commit[:10],
                    "date": date,
                    "subject": subject,
                    **_headline(bench_file, payload),
                }
            )
        out[bench_file] = rows
    return out


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, dict):
        return " ".join(f"{k}={_format_value(v)}" for k, v in sorted(
            value.items()
        ))
    return str(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=Path(__file__).resolve().parent.parent,
        type=Path,
        help="repository root (default: the checkout containing this tool)",
    )
    parser.add_argument(
        "--file",
        action="append",
        choices=BENCH_FILES,
        help="restrict to one snapshot (repeatable; default: all tracked)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the history as JSON"
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()
    try:
        _git(root, "rev-parse", "--git-dir")
    except (subprocess.CalledProcessError, FileNotFoundError) as exc:
        print(f"not a git checkout: {root} ({exc})", file=sys.stderr)
        return 1

    data = history(root, tuple(args.file) if args.file else BENCH_FILES)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    empty = True
    for bench_file, rows in data.items():
        print(f"== {bench_file} ({len(rows)} committed revision(s)) ==")
        if not rows:
            print("  (never committed)")
            continue
        empty = False
        for row in rows:
            metrics = {
                k: v
                for k, v in row.items()
                if k not in ("commit", "date", "subject")
            }
            metric_str = "  ".join(
                f"{k}={_format_value(v)}" for k, v in metrics.items()
            )
            print(f"  {row['date']} {row['commit']}  {metric_str}")
            print(f"      {row['subject']}")
        print()
    if empty:
        print("no BENCH_*.json revisions committed yet")
    return 0


if __name__ == "__main__":
    sys.exit(main())
