#!/usr/bin/env python3
"""Documentation link checker (the CI docs job).

Scans the project's markdown documentation for inline links and verifies
that every relative target resolves: linked files exist inside the
repository, and ``#anchor`` fragments match a heading in the target
document (GitHub-style slugs).  External ``http(s)``/``mailto`` links are
not fetched — this job must stay hermetic.

Usage::

    python tools/check_docs.py [--root REPO_ROOT]

Exits non-zero listing every broken link.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Documents checked (globs relative to the repository root).
DOC_GLOBS = (
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/**/*.md",
    "examples/README.md",
)

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (lowercase, punctuation
    stripped, spaces to hyphens)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: Path) -> set:
    content = _CODE_FENCE.sub("", markdown.read_text(encoding="utf-8"))
    slugs = set()
    for match in _HEADING.finditer(content):
        slug = github_slug(match.group(1))
        # Duplicate headings get -1, -2, ... suffixes on GitHub; accept
        # the base slug for each occurrence.
        slugs.add(slug)
    return slugs


def check_file(doc: Path, root: Path):
    """Yield ``(doc, target, reason)`` for every broken link in ``doc``."""
    content = _CODE_FENCE.sub("", doc.read_text(encoding="utf-8"))
    targets = _LINK.findall(content) + _IMAGE.findall(content)
    for target in targets:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (doc.parent / path_part).resolve()
            try:
                resolved.relative_to(root)
            except ValueError:
                yield doc, target, "escapes the repository"
                continue
            if not resolved.exists():
                yield doc, target, "file does not exist"
                continue
        else:
            resolved = doc
        if anchor:
            if resolved.suffix.lower() != ".md" or resolved.is_dir():
                continue  # anchors into non-markdown targets: not checked
            if github_slug(anchor) not in heading_slugs(resolved):
                yield doc, target, f"no heading for anchor #{anchor}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=Path(__file__).resolve().parent.parent,
        type=Path,
        help="repository root (default: the checkout containing this tool)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    docs = []
    for pattern in DOC_GLOBS:
        docs.extend(sorted(root.glob(pattern)))
    if not docs:
        print(f"no documentation found under {root}", file=sys.stderr)
        return 1

    broken = []
    for doc in docs:
        broken.extend(check_file(doc, root))

    for doc, target, reason in broken:
        print(f"BROKEN {doc.relative_to(root)}: ({target}) {reason}")
    checked = len(docs)
    if broken:
        print(f"{len(broken)} broken link(s) across {checked} document(s)")
        return 1
    print(f"ok: {checked} document(s), all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
