#!/usr/bin/env python3
"""Validate machine-readable benchmark/telemetry artifacts (CI smoke jobs).

One entry point for every JSON artifact this repo emits —
``BENCH_serving.json`` (``serving_bench/v1``), ``BENCH_engine.json``
(``engine_bench/v1``), ``BENCH_cluster.json`` (``cluster_bench/v1``),
``BENCH_slo.json`` (``slo_bench/v1``), ``BENCH_video.json``
(``video_bench/v1``), ``obs_events/v1`` JSONL logs and Chrome
trace-event timelines.  The
actual checks live in :mod:`repro.obs.schemas`, shared with the
``repro bench run-all`` harness, so the CI inline validation blocks this
tool replaced cannot drift from what the harness enforces.

Usage::

    python tools/validate_bench.py BENCH_serving.json [more files ...]
    python tools/validate_bench.py --root REPO_ROOT results/*.json

Exits non-zero listing every schema problem.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files", nargs="+", help="artifact files (.json or .jsonl)"
    )
    parser.add_argument(
        "--root",
        default=Path(__file__).resolve().parent.parent,
        type=Path,
        help="repository root (default: the checkout containing this tool)",
    )
    args = parser.parse_args(argv)
    src = str(args.root.resolve() / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.obs.schemas import validate_file

    problems = 0
    for name in args.files:
        path = Path(name)
        if not path.exists():
            print(f"INVALID {name}: file does not exist")
            problems += 1
            continue
        errors = validate_file(path)
        if errors:
            for err in errors:
                print(f"INVALID {name}: {err}")
            problems += len(errors)
        else:
            print(f"ok: {name}")
    if problems:
        print(f"{problems} schema problem(s) across {len(args.files)} file(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
