"""Occupancy grid for empty-space skipping.

Instant-NGP maintains a coarse bitfield of occupied voxels and skips
samples falling in empty space; this is the mechanism behind the early
part of the paper's "background pixels need as few as 12 points"
observation.  The grid is built by probing the trained model's density on
a coarse lattice and can filter any sample batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class OccupancyGrid:
    """A boolean voxel grid over the unit cube.

    Attributes:
        resolution: Voxels per axis.
        occupied: ``(res, res, res)`` boolean array.
    """

    resolution: int
    occupied: np.ndarray

    def __post_init__(self) -> None:
        expected = (self.resolution,) * 3
        if self.occupied.shape != expected:
            raise ConfigurationError(
                f"occupancy grid must be {expected}, got {self.occupied.shape}"
            )

    @property
    def occupancy_rate(self) -> float:
        """Fraction of voxels marked occupied."""
        return float(self.occupied.mean())

    def query(self, points: np.ndarray) -> np.ndarray:
        """Boolean occupancy of unit-cube points ``(N, 3)`` -> ``(N,)``."""
        idx = np.clip(
            (np.atleast_2d(points) * self.resolution).astype(np.int64),
            0,
            self.resolution - 1,
        )
        return self.occupied[idx[:, 0], idx[:, 1], idx[:, 2]]

    def filter_samples(self, points: np.ndarray, sigmas: np.ndarray) -> np.ndarray:
        """Zero the densities of samples in empty voxels.

        The renderer can then skip their MLP evaluation entirely; zeroing
        is the compositing-equivalent formulation.
        """
        mask = self.query(points.reshape(-1, 3)).reshape(sigmas.shape)
        return sigmas * mask


def build_occupancy_grid(
    model,
    resolution: int = 32,
    threshold: float = 0.5,
    dilation: int = 1,
) -> OccupancyGrid:
    """Probe ``model`` at voxel centers and threshold the density.

    Args:
        model: Object with ``query_density``.
        resolution: Grid resolution (paper-scale NGP uses 128; 32 suits the
            experiment scale).
        threshold: Density above which a voxel counts as occupied.
        dilation: Morphological dilation steps so surfaces near voxel
            boundaries are never clipped (conservative occupancy).
    """
    if resolution < 2:
        raise ConfigurationError("resolution must be >= 2")
    centers = (np.arange(resolution) + 0.5) / resolution
    gx, gy, gz = np.meshgrid(centers, centers, centers, indexing="ij")
    points = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)
    sigma, _ = model.query_density(points)
    occupied = (sigma > threshold).reshape(resolution, resolution, resolution)
    for _ in range(dilation):
        occupied = _dilate(occupied)
    return OccupancyGrid(resolution=resolution, occupied=occupied)


def _dilate(mask: np.ndarray) -> np.ndarray:
    """6-neighbourhood boolean dilation."""
    out = mask.copy()
    out[1:, :, :] |= mask[:-1, :, :]
    out[:-1, :, :] |= mask[1:, :, :]
    out[:, 1:, :] |= mask[:, :-1, :]
    out[:, :-1, :] |= mask[:, 1:, :]
    out[:, :, 1:] |= mask[:, :, :-1]
    out[:, :, :-1] |= mask[:, :, 1:]
    return out


def skip_statistics(grid: OccupancyGrid, points: np.ndarray) -> dict:
    """How much sampling work the grid would skip for a point batch."""
    occupied = grid.query(points.reshape(-1, 3))
    total = occupied.size
    return {
        "total_samples": int(total),
        "skipped_samples": int(total - occupied.sum()),
        "skip_rate": float(1.0 - occupied.mean()) if total else 0.0,
    }
