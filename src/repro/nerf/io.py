"""Model checkpoint save/load (NumPy ``.npz`` archives).

Checkpoints let the experiment harness distill each scene once and share
the trained model across benchmark processes.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ReproError
from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.model import InstantNGPConfig, InstantNGPModel
from repro.nerf.tensorf import TensoRFConfig, TensoRFModel


def _config_to_json(config: InstantNGPConfig) -> str:
    payload = asdict(config)
    return json.dumps(payload)


def save_instant_ngp(model: InstantNGPModel, path: Union[str, Path]) -> None:
    """Write an Instant-NGP checkpoint to ``path`` (.npz)."""
    arrays = {"__config__": np.frombuffer(
        _config_to_json(model.config).encode(), dtype=np.uint8
    )}
    for i, table in enumerate(model.encoder.tables):
        arrays[f"table_{i}"] = table
    for prefix, mlp in (("density", model.density_mlp), ("color", model.color_mlp)):
        for i, (w, b) in enumerate(zip(mlp.weights, mlp.biases)):
            arrays[f"{prefix}_w{i}"] = w
            arrays[f"{prefix}_b{i}"] = b
    np.savez_compressed(str(path), **arrays)


def load_instant_ngp(path: Union[str, Path]) -> InstantNGPModel:
    """Load an Instant-NGP checkpoint written by :func:`save_instant_ngp`."""
    data = np.load(str(path))
    if "__config__" not in data:
        raise ReproError(f"{path} is not an Instant-NGP checkpoint")
    payload = json.loads(bytes(data["__config__"]).decode())
    grid = HashGridConfig(**payload.pop("grid"))
    config = InstantNGPConfig(grid=grid, **payload)
    model = InstantNGPModel(config)
    for i in range(config.grid.num_levels):
        model.encoder.tables[i] = data[f"table_{i}"]
    for prefix, mlp in (("density", model.density_mlp), ("color", model.color_mlp)):
        for i in range(len(mlp.weights)):
            mlp.weights[i] = data[f"{prefix}_w{i}"]
            mlp.biases[i] = data[f"{prefix}_b{i}"]
    return model


def save_tensorf(model: TensoRFModel, path: Union[str, Path]) -> None:
    """Write a TensoRF checkpoint to ``path`` (.npz)."""
    arrays = {"__config__": np.frombuffer(
        json.dumps(asdict(model.config)).encode(), dtype=np.uint8
    )}
    for k in range(3):
        arrays[f"plane_{k}"] = model.planes[k]
        arrays[f"line_{k}"] = model.lines[k]
    for prefix, mlp in (("density", model.density_mlp), ("color", model.color_mlp)):
        for i, (w, b) in enumerate(zip(mlp.weights, mlp.biases)):
            arrays[f"{prefix}_w{i}"] = w
            arrays[f"{prefix}_b{i}"] = b
    np.savez_compressed(str(path), **arrays)


def load_tensorf(path: Union[str, Path]) -> TensoRFModel:
    """Load a TensoRF checkpoint written by :func:`save_tensorf`."""
    data = np.load(str(path))
    if "__config__" not in data:
        raise ReproError(f"{path} is not a TensoRF checkpoint")
    config = TensoRFConfig(**json.loads(bytes(data["__config__"]).decode()))
    model = TensoRFModel(config)
    for k in range(3):
        model.planes[k] = data[f"plane_{k}"]
        model.lines[k] = data[f"line_{k}"]
    for prefix, mlp in (("density", model.density_mlp), ("color", model.color_mlp)):
        for i in range(len(mlp.weights)):
            mlp.weights[i] = data[f"{prefix}_w{i}"]
            mlp.biases[i] = data[f"{prefix}_b{i}"]
    return model
