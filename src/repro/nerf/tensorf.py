"""TensoRF substrate (Section 6.8 of the paper).

TensoRF factorises the feature volume into vector-matrix (VM) components:
for each of the three axes the field is the sum over components of a plane
feature (bilinear lookup on the two other axes) times a line feature
(linear lookup on the axis).  The decoder MLPs are shared with the
Instant-NGP model, so ASDR's adaptive sampling and color approximation
apply unchanged — the property Section 6.8 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nerf.mlp import MLP, MLPConfig
from repro.nerf.spherical import SH_DIM, sh_encode
from repro.utils.math import sigmoid, trunc_exp
from repro.utils.rng import derive_seed, seeded_rng

# Axis triples: (line axis, plane axis u, plane axis v).
_VM_AXES = ((0, 1, 2), (1, 0, 2), (2, 0, 1))


@dataclass
class TensoRFConfig:
    """Shape of the VM-decomposed feature volume.

    Attributes:
        resolution: Grid resolution along each axis.
        num_components: Rank of the VM decomposition per axis.
        feature_dim: Output feature channels of the aggregation.
        geo_feature_dim / hidden dims: Decoder MLP shapes.
        grid_lr_multiplier: Scale applied to the trainer's table learning
            rate for the VM grids.  The line-times-plane factorisation
            attenuates gradients by the magnitude of the co-factor (~0.1),
            so the grids need a much larger step than direct embedding
            tables to train at the same pace.
    """

    resolution: int = 64
    num_components: int = 8
    feature_dim: int = 16
    grid_lr_multiplier: float = 130.0
    geo_feature_dim: int = 15
    density_hidden_dim: int = 64
    density_num_hidden: int = 1
    color_hidden_dim: int = 128
    color_num_hidden: int = 3

    def __post_init__(self) -> None:
        if self.resolution < 4:
            raise ConfigurationError("resolution must be >= 4")
        if self.num_components < 1:
            raise ConfigurationError("num_components must be >= 1")

    @property
    def encoding_dim(self) -> int:
        """Raw VM feature dimensionality (3 axes x components)."""
        return 3 * self.num_components

    @property
    def density_mlp_config(self) -> MLPConfig:
        return MLPConfig(
            input_dim=self.encoding_dim,
            hidden_dim=self.density_hidden_dim,
            num_hidden=self.density_num_hidden,
            output_dim=1 + self.geo_feature_dim,
        )

    @property
    def color_mlp_config(self) -> MLPConfig:
        return MLPConfig(
            input_dim=self.geo_feature_dim + SH_DIM,
            hidden_dim=self.color_hidden_dim,
            num_hidden=self.color_num_hidden,
            output_dim=3,
        )


class TensoRFModel:
    """A trainable TensoRF (VM decomposition) radiance field."""

    def __init__(self, config: TensoRFConfig, seed: int = 0) -> None:
        self.config = config
        rng = seeded_rng(derive_seed(seed, "tensorf"))
        r = config.resolution
        c = config.num_components
        scale = 0.1
        # planes[k]: (C, R, R); lines[k]: (C, R)
        self.planes: List[np.ndarray] = [
            rng.normal(0.0, scale, size=(c, r, r)) for _ in range(3)
        ]
        self.lines: List[np.ndarray] = [
            rng.normal(0.0, scale, size=(c, r)) for _ in range(3)
        ]
        self.density_mlp = MLP(
            config.density_mlp_config, seed=derive_seed(seed, "t-density")
        )
        self.color_mlp = MLP(
            config.color_mlp_config, seed=derive_seed(seed, "t-color")
        )

    # ------------------------------------------------------------------
    def _line_lookup(self, line: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Linear interpolation on a per-component 1D grid -> ``(N, C)``."""
        r = self.config.resolution
        x = np.clip(t, 0.0, 1.0) * (r - 1)
        i0 = np.floor(x).astype(np.int64)
        i0 = np.clip(i0, 0, r - 2)
        f = x - i0
        return (line[:, i0] * (1.0 - f) + line[:, i0 + 1] * f).T

    def _plane_lookup(self, plane: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Bilinear interpolation on a per-component 2D grid -> ``(N, C)``."""
        r = self.config.resolution
        x = np.clip(u, 0.0, 1.0) * (r - 1)
        y = np.clip(v, 0.0, 1.0) * (r - 1)
        i0 = np.clip(np.floor(x).astype(np.int64), 0, r - 2)
        j0 = np.clip(np.floor(y).astype(np.int64), 0, r - 2)
        fx = x - i0
        fy = y - j0
        p00 = plane[:, i0, j0]
        p10 = plane[:, i0 + 1, j0]
        p01 = plane[:, i0, j0 + 1]
        p11 = plane[:, i0 + 1, j0 + 1]
        out = (
            p00 * (1 - fx) * (1 - fy)
            + p10 * fx * (1 - fy)
            + p01 * (1 - fx) * fy
            + p11 * fx * fy
        )
        return out.T

    def encode(self, points: np.ndarray) -> np.ndarray:
        """VM features at unit-cube points -> ``(N, 3*C)``."""
        points = np.atleast_2d(points)
        feats = []
        for k, (la, ua, va) in enumerate(_VM_AXES):
            line_f = self._line_lookup(self.lines[k], points[:, la])
            plane_f = self._plane_lookup(self.planes[k], points[:, ua], points[:, va])
            feats.append(line_f * plane_f)
        return np.concatenate(feats, axis=-1)

    def encode_backward(
        self, points: np.ndarray, grad_output: np.ndarray, learning_rate: float
    ) -> None:
        """SGD update of planes/lines given d(loss)/d(encoding)."""
        points = np.atleast_2d(points)
        learning_rate = learning_rate * self.config.grid_lr_multiplier
        r = self.config.resolution
        c = self.config.num_components
        for k, (la, ua, va) in enumerate(_VM_AXES):
            g = grad_output[:, k * c : (k + 1) * c]  # (N, C)
            line_f = self._line_lookup(self.lines[k], points[:, la])
            plane_f = self._plane_lookup(self.planes[k], points[:, ua], points[:, va])
            grad_line = g * plane_f  # (N, C)
            grad_plane = g * line_f  # (N, C)

            t = np.clip(points[:, la], 0.0, 1.0) * (r - 1)
            i0 = np.clip(np.floor(t).astype(np.int64), 0, r - 2)
            f = t - i0
            np.add.at(
                self.lines[k].T, i0, -learning_rate * grad_line * (1.0 - f)[:, None]
            )
            np.add.at(
                self.lines[k].T, i0 + 1, -learning_rate * grad_line * f[:, None]
            )

            u = np.clip(points[:, ua], 0.0, 1.0) * (r - 1)
            v = np.clip(points[:, va], 0.0, 1.0) * (r - 1)
            iu = np.clip(np.floor(u).astype(np.int64), 0, r - 2)
            iv = np.clip(np.floor(v).astype(np.int64), 0, r - 2)
            fu = (u - iu)[:, None]
            fv = (v - iv)[:, None]
            plane_t = np.transpose(self.planes[k], (1, 2, 0))  # (R, R, C) view
            np.add.at(plane_t, (iu, iv), -learning_rate * grad_plane * (1 - fu) * (1 - fv))
            np.add.at(plane_t, (iu + 1, iv), -learning_rate * grad_plane * fu * (1 - fv))
            np.add.at(plane_t, (iu, iv + 1), -learning_rate * grad_plane * (1 - fu) * fv)
            np.add.at(plane_t, (iu + 1, iv + 1), -learning_rate * grad_plane * fu * fv)

    # ------------------------------------------------------------------
    def query_density(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        encoding = self.encode(points)
        raw, _ = self.density_mlp.forward(encoding)
        return trunc_exp(raw[:, 0]), raw[:, 1:]

    def query_color(self, geo_feat: np.ndarray, dirs: np.ndarray) -> np.ndarray:
        color_in = np.concatenate([geo_feat, sh_encode(dirs)], axis=-1)
        raw, _ = self.color_mlp.forward(color_in)
        return sigmoid(raw)

    def query(self, points: np.ndarray, dirs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        sigma, geo = self.query_density(points)
        return sigma, self.query_color(geo, dirs)

    # ------------------------------------------------------------------
    def flops_embedding_per_point(self) -> int:
        """Bilinear (4) + linear (2) lookups and the product, per axis."""
        c = self.config.num_components
        return 3 * (4 * 2 * c + 2 * 2 * c + c)

    def flops_density_per_point(self) -> int:
        return self.density_mlp.flops_per_point()

    def flops_color_per_point(self) -> int:
        return self.color_mlp.flops_per_point()

    def bytes_embedding_per_point(self, bytes_per_feature: int = 2) -> int:
        c = self.config.num_components
        return 3 * (4 + 2) * c * bytes_per_feature

    def parameter_count(self) -> int:
        grids = sum(p.size for p in self.planes) + sum(l.size for l in self.lines)
        return grids + self.density_mlp.parameter_count() + self.color_mlp.parameter_count()
