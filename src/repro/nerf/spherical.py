"""Spherical-harmonics encoding of view directions (degree 0-3).

Instant-NGP feeds the color MLP the viewing direction encoded with the
first 16 real spherical harmonics; we use the same basis.
"""

from __future__ import annotations

import numpy as np

SH_DIM = 16

_C0 = 0.28209479177387814
_C1 = 0.4886025119029199
_C2 = (1.0925484305920792, -1.0925484305920792, 0.31539156525252005,
       -1.0925484305920792, 0.5462742152960396)
_C3 = (-0.5900435899266435, 2.890611442640554, -0.4570457994644658,
       0.3731763325901154, -0.4570457994644658, 1.445305721320277,
       -0.5900435899266435)


def sh_encode(dirs: np.ndarray) -> np.ndarray:
    """Encode unit direction vectors with 16 real SH basis functions.

    Args:
        dirs: ``(N, 3)`` unit vectors.

    Returns:
        ``(N, 16)`` encoding.
    """
    dirs = np.atleast_2d(dirs)
    x, y, z = dirs[:, 0], dirs[:, 1], dirs[:, 2]
    xx, yy, zz = x * x, y * y, z * z
    xy, yz, xz = x * y, y * z, x * z
    out = np.empty((dirs.shape[0], SH_DIM), dtype=np.float64)
    out[:, 0] = _C0
    out[:, 1] = -_C1 * y
    out[:, 2] = _C1 * z
    out[:, 3] = -_C1 * x
    out[:, 4] = _C2[0] * xy
    out[:, 5] = _C2[1] * yz
    out[:, 6] = _C2[2] * (2.0 * zz - xx - yy)
    out[:, 7] = _C2[3] * xz
    out[:, 8] = _C2[4] * (xx - yy)
    out[:, 9] = _C3[0] * y * (3.0 * xx - yy)
    out[:, 10] = _C3[1] * xy * z
    out[:, 11] = _C3[2] * y * (4.0 * zz - xx - yy)
    out[:, 12] = _C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy)
    out[:, 13] = _C3[4] * x * (4.0 * zz - xx - yy)
    out[:, 14] = _C3[5] * z * (xx - yy)
    out[:, 15] = _C3[6] * x * (xx - 3.0 * yy)
    return out
