"""Distillation training of radiance-field models from analytic scenes.

The paper starts from trained Instant-NGP checkpoints; offline we produce
equivalent models by *distilling* the analytic scene fields: the model is
regressed directly against the scene's ground-truth density ``sigma*(x)``
and color ``c*(x, d)`` at randomly sampled points.  This is much cheaper
than photometric training and yields a model whose rendering pipeline is
identical to a trained checkpoint — which is all ASDR's evaluation needs.

Supports both :class:`~repro.nerf.model.InstantNGPModel` and
:class:`~repro.nerf.tensorf.TensoRFModel` (their decoder interfaces match).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import TrainingError
from repro.nerf.spherical import sh_encode
from repro.scenes.analytic import AnalyticScene
from repro.utils.math import normalize_rows, sigmoid, sigmoid_grad, trunc_exp
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class TrainingConfig:
    """Distillation hyper-parameters.

    Attributes:
        steps: Number of Adam steps.
        batch_size: Points per step.
        learning_rate: Adam step size for the MLPs.
        table_learning_rate: SGD step size for the feature grids.
        surface_fraction: Fraction of each batch drawn near the scene
            surface (importance sampling; the rest is uniform so empty
            space learns zero density).
        density_scale: Weight of the density loss term.
        seed: Seed for the sampling streams.
    """

    steps: int = 600
    batch_size: int = 2048
    learning_rate: float = 3e-3
    table_learning_rate: float = 0.15
    surface_fraction: float = 0.5
    density_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1 or self.batch_size < 1:
            raise TrainingError("steps and batch_size must be positive")
        if not 0.0 <= self.surface_fraction <= 1.0:
            raise TrainingError("surface_fraction must lie in [0, 1]")


class Adam:
    """Adam optimiser over a fixed list of parameter arrays (in-place)."""

    def __init__(self, params: List[np.ndarray], lr: float) -> None:
        self.params = params
        self.lr = lr
        self.beta1 = 0.9
        self.beta2 = 0.999
        self.eps = 1e-8
        self.t = 0
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]

    def step(self, grads: List[np.ndarray]) -> None:
        """Apply one update given gradients aligned with ``params``."""
        self.t += 1
        b1c = 1.0 - self.beta1**self.t
        b2c = 1.0 - self.beta2**self.t
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / b1c) / (np.sqrt(v / b2c) + self.eps)


def _sample_training_points(
    scene: AnalyticScene,
    count: int,
    surface_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Mix of uniform cube points and points clustered near the surface."""
    n_surface = int(count * surface_fraction)
    n_uniform = count - n_surface
    uniform = rng.random((n_uniform, 3))
    if n_surface == 0:
        return uniform
    # Rejection-free surface sampling: draw candidates, keep the ones with
    # the highest density (they are near the surface), and jitter them.
    candidates = rng.random((n_surface * 4, 3))
    sigma = scene.density(candidates)
    order = np.argsort(sigma)[::-1]
    near = candidates[order[:n_surface]]
    near = near + rng.normal(0.0, 0.02, size=near.shape)
    near = np.clip(near, 0.0, 1.0 - 1e-9)
    return np.concatenate([uniform, near], axis=0)


def distill_step(
    model,
    scene: AnalyticScene,
    points: np.ndarray,
    dirs: np.ndarray,
    mlp_optimizer: Adam,
    table_learning_rate: float,
    density_scale: float,
) -> float:
    """One forward/backward distillation step.  Returns the scalar loss."""
    n = points.shape[0]

    # Forward ---------------------------------------------------------
    encoding = model.encode(points) if hasattr(model, "encode") else None
    if encoding is None:
        encoding = model.encoder.encode(points)
    raw_d, cache_d = model.density_mlp.forward(encoding, keep_activations=True)
    sigma = trunc_exp(raw_d[:, 0])
    geo = raw_d[:, 1:]
    sh = sh_encode(dirs)
    color_in = np.concatenate([geo, sh], axis=-1)
    raw_c, cache_c = model.color_mlp.forward(color_in, keep_activations=True)
    rgb = sigmoid(raw_c)

    # Targets -----------------------------------------------------------
    sigma_target = scene.density(points)
    rgb_target = scene.color(points, dirs)

    # Loss: density in log space (stable across decades), color weighted
    # towards occupied space where it actually matters.
    log_err = np.log1p(sigma) - np.log1p(sigma_target)
    color_w = (sigma_target / (sigma_target + 1.0))[:, None]
    color_err = rgb - rgb_target
    loss = density_scale * np.mean(log_err**2) + np.mean(color_w * color_err**2)

    # Backward ----------------------------------------------------------
    grad_raw_c = (2.0 / n / 3.0) * color_w * color_err * sigmoid_grad(rgb)
    grad_color_in, gw_c, gb_c = model.color_mlp.backward(cache_c, grad_raw_c)
    geo_dim = geo.shape[1]

    grad_raw_d = np.zeros_like(raw_d)
    # d loss / d raw_d[:,0]: through trunc_exp (identity gradient inside the
    # clip range: d sigma / d raw = sigma).
    grad_raw_d[:, 0] = (
        density_scale * (2.0 / n) * log_err * (sigma / (1.0 + sigma))
    )
    grad_raw_d[:, 1:] = grad_color_in[:, :geo_dim]
    grad_encoding, gw_d, gb_d = model.density_mlp.backward(cache_d, grad_raw_d)

    mlp_optimizer.step(_interleave(gw_d, gb_d) + _interleave(gw_c, gb_c))
    model_backward = getattr(model, "encode_backward", None)
    if model_backward is not None:
        model_backward(points, grad_encoding, table_learning_rate)
    else:
        model.encoder.encode_backward(points, grad_encoding, table_learning_rate)
    return float(loss)


def _interleave(ws: List[np.ndarray], bs: List[np.ndarray]) -> List[np.ndarray]:
    out: List[np.ndarray] = []
    for w, b in zip(ws, bs):
        out.extend([w, b])
    return out


def distill_scene(
    model,
    scene: AnalyticScene,
    config: Optional[TrainingConfig] = None,
) -> List[float]:
    """Distill ``scene`` into ``model``; returns the per-step loss history."""
    config = config or TrainingConfig()
    rng = seeded_rng(derive_seed(config.seed, "distill", scene.name))
    optimizer = Adam(
        model.density_mlp.parameters() + model.color_mlp.parameters(),
        lr=config.learning_rate,
    )
    losses: List[float] = []
    for step in range(config.steps):
        points = _sample_training_points(
            scene, config.batch_size, config.surface_fraction, rng
        )
        dirs = normalize_rows(rng.normal(size=(config.batch_size, 3)))
        loss = distill_step(
            model,
            scene,
            points,
            dirs,
            optimizer,
            config.table_learning_rate,
            config.density_scale,
        )
        losses.append(loss)
    if not np.isfinite(losses[-1]):
        raise TrainingError("distillation diverged (non-finite loss)")
    return losses
