"""Fully-connected networks with manual forward/backward passes.

Instant-NGP uses two tiny MLPs: a density network (1 hidden layer of 64)
and a color network (2 hidden layers of 64).  We implement them with plain
NumPy so the whole library is self-contained, and expose exact FLOP counts
for the breakdown of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.math import relu, relu_grad
from repro.utils.rng import seeded_rng


@dataclass
class MLPConfig:
    """Shape of a fully-connected network.

    Attributes:
        input_dim: Input feature dimensionality.
        hidden_dim: Width of every hidden layer.
        num_hidden: Number of hidden layers (paper: 1 density, 2 color).
        output_dim: Output dimensionality.
    """

    input_dim: int
    hidden_dim: int
    num_hidden: int
    output_dim: int

    def __post_init__(self) -> None:
        for name in ("input_dim", "hidden_dim", "output_dim"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.num_hidden < 0:
            raise ConfigurationError("num_hidden must be >= 0")

    @property
    def layer_dims(self) -> List[Tuple[int, int]]:
        """``(in, out)`` pairs for every weight matrix."""
        dims = [self.input_dim] + [self.hidden_dim] * self.num_hidden
        dims.append(self.output_dim)
        return list(zip(dims[:-1], dims[1:]))


class MLP:
    """A ReLU MLP with He initialisation and a manual backward pass.

    The final layer is linear; callers apply their own output activation
    (exp for density, sigmoid for color) so gradients stay composable.
    """

    def __init__(self, config: MLPConfig, seed: int = 0) -> None:
        self.config = config
        rng = seeded_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in config.layer_dims:
            std = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, std, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, keep_activations: bool = False
    ) -> Tuple[np.ndarray, Optional[List[np.ndarray]]]:
        """Run the network.

        Args:
            x: ``(N, input_dim)`` inputs.
            keep_activations: When True also return the per-layer
                pre-activation inputs needed by :meth:`backward`.

        Returns:
            ``(output, cache)`` where ``cache`` is None unless requested.
        """
        cache = [x] if keep_activations else None
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i != last:
                h = relu(h)
            if keep_activations and i != last:
                cache.append(h)
        return h, cache

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out, _ = self.forward(x)
        return out

    def backward(
        self, cache: List[np.ndarray], grad_out: np.ndarray
    ) -> Tuple[np.ndarray, List[np.ndarray], List[np.ndarray]]:
        """Backpropagate ``grad_out`` through the network.

        Args:
            cache: Activations returned by ``forward(keep_activations=True)``
                (layer inputs: x, h1, ..., h_{L-1}).
            grad_out: ``(N, output_dim)`` gradient at the (linear) output.

        Returns:
            ``(grad_input, grad_weights, grad_biases)``.
        """
        grad_ws: List[np.ndarray] = [None] * len(self.weights)
        grad_bs: List[np.ndarray] = [None] * len(self.biases)
        g = grad_out
        for i in range(len(self.weights) - 1, -1, -1):
            inp = cache[i]
            grad_ws[i] = inp.T @ g
            grad_bs[i] = g.sum(axis=0)
            g = g @ self.weights[i].T
            if i > 0:
                # cache[i] is the *post*-ReLU activation of layer i-1, so the
                # ReLU mask is simply activation > 0.
                g = g * (inp > 0.0)
        return g, grad_ws, grad_bs

    # ------------------------------------------------------------------
    def parameters(self) -> List[np.ndarray]:
        """Flat list of parameter arrays (weights then biases, interleaved)."""
        params: List[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            params.extend([w, b])
        return params

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())

    def flops_per_point(self) -> int:
        """Multiply-accumulate FLOPs (2 per MAC) for a single input row."""
        return sum(2 * fi * fo for fi, fo in self.config.layer_dims)
