"""Instant-NGP substrate implemented in NumPy.

This package contains everything the ASDR paper's rendering pipeline needs:
multi-resolution hash-grid encoding (Eq. 2), spherical-harmonics direction
encoding, density/color MLPs, volume rendering (Eq. 1) with optional early
termination, a distillation trainer, and a baseline renderer with FLOP and
memory-access accounting.  A TensoRF variant supports Section 6.8.
"""

from repro.nerf.hashgrid import HashGridConfig, HashGridEncoder
from repro.nerf.spherical import sh_encode, SH_DIM
from repro.nerf.mlp import MLP, MLPConfig
from repro.nerf.model import InstantNGPConfig, InstantNGPModel
from repro.nerf.tensorf import TensoRFConfig, TensoRFModel
from repro.nerf.rays import ray_aabb_intersect, sample_along_rays
from repro.nerf.volume import composite, composite_prefix, transmittance
from repro.nerf.training import TrainingConfig, distill_scene
from repro.nerf.renderer import BaselineRenderer, RenderResult

__all__ = [
    "HashGridConfig",
    "HashGridEncoder",
    "sh_encode",
    "SH_DIM",
    "MLP",
    "MLPConfig",
    "InstantNGPConfig",
    "InstantNGPModel",
    "TensoRFConfig",
    "TensoRFModel",
    "ray_aabb_intersect",
    "sample_along_rays",
    "composite",
    "composite_prefix",
    "transmittance",
    "TrainingConfig",
    "distill_scene",
    "BaselineRenderer",
    "RenderResult",
]
