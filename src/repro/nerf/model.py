"""The Instant-NGP model: hash encoding -> density MLP -> color MLP.

The density network maps the concatenated hash-grid features to a scalar
density (through a truncated exponential) plus a geometry feature vector;
the color network maps that feature vector concatenated with the
spherical-harmonics-encoded view direction to RGB (through a sigmoid).
This is the exact stage structure of Figure 2 of the paper, and the FLOP
accessors reproduce the imbalance motivating Challenge 2 (density MLP
~8 % of MLP FLOPs, color MLP ~92 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nerf.hashgrid import HashGridConfig, HashGridEncoder
from repro.nerf.mlp import MLP, MLPConfig
from repro.nerf.spherical import SH_DIM, sh_encode
from repro.utils.math import sigmoid, trunc_exp
from repro.utils.rng import derive_seed


@dataclass
class InstantNGPConfig:
    """Hyper-parameters of the full model.

    The default MLP widths follow the paper's FLOP balance: a one-hidden-
    layer density network and a three-hidden-layer, twice-as-wide color
    network, giving the ~8/92 density/color FLOP split of Section 3.
    """

    grid: HashGridConfig = field(default_factory=HashGridConfig)
    geo_feature_dim: int = 15
    density_hidden_dim: int = 64
    density_num_hidden: int = 1
    color_hidden_dim: int = 128
    color_num_hidden: int = 3

    def __post_init__(self) -> None:
        if self.geo_feature_dim < 1:
            raise ConfigurationError("geo_feature_dim must be >= 1")

    @property
    def density_mlp_config(self) -> MLPConfig:
        return MLPConfig(
            input_dim=self.grid.output_dim,
            hidden_dim=self.density_hidden_dim,
            num_hidden=self.density_num_hidden,
            output_dim=1 + self.geo_feature_dim,
        )

    @property
    def color_mlp_config(self) -> MLPConfig:
        return MLPConfig(
            input_dim=self.geo_feature_dim + SH_DIM,
            hidden_dim=self.color_hidden_dim,
            num_hidden=self.color_num_hidden,
            output_dim=3,
        )


class InstantNGPModel:
    """A trainable Instant-NGP radiance field."""

    def __init__(self, config: InstantNGPConfig, seed: int = 0) -> None:
        self.config = config
        self.encoder = HashGridEncoder(config.grid, seed=derive_seed(seed, "grid"))
        self.density_mlp = MLP(
            config.density_mlp_config, seed=derive_seed(seed, "density")
        )
        self.color_mlp = MLP(config.color_mlp_config, seed=derive_seed(seed, "color"))

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def query_density(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Density and geometry features at unit-cube points.

        Returns:
            ``(sigma, geo_feat)`` with shapes ``(N,)`` and ``(N, G)``.
        """
        encoding = self.encoder.encode(points)
        raw, _ = self.density_mlp.forward(encoding)
        sigma = trunc_exp(raw[:, 0])
        return sigma, raw[:, 1:]

    def query_color(self, geo_feat: np.ndarray, dirs: np.ndarray) -> np.ndarray:
        """RGB colors from geometry features and unit view directions."""
        color_in = np.concatenate([geo_feat, sh_encode(dirs)], axis=-1)
        raw, _ = self.color_mlp.forward(color_in)
        return sigmoid(raw)

    def query(self, points: np.ndarray, dirs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Full per-point query: ``(sigma, rgb)``."""
        sigma, geo = self.query_density(points)
        return sigma, self.query_color(geo, dirs)

    # ------------------------------------------------------------------
    # FLOP accounting (drives Figure 5 and the roofline baselines)
    # ------------------------------------------------------------------
    def flops_embedding_per_point(self) -> int:
        return self.encoder.lookup_flops_per_point()

    def flops_density_per_point(self) -> int:
        return self.density_mlp.flops_per_point()

    def flops_color_per_point(self) -> int:
        return self.color_mlp.flops_per_point()

    def bytes_embedding_per_point(self, bytes_per_feature: int = 2) -> int:
        """Embedding-table bytes fetched per point (8 vertices per level)."""
        cfg = self.config.grid
        return cfg.num_levels * 8 * cfg.feature_dim * bytes_per_feature

    def parameter_count(self) -> int:
        return (
            self.encoder.parameter_count()
            + self.density_mlp.parameter_count()
            + self.color_mlp.parameter_count()
        )
