"""Weight/feature quantisation for CIM execution.

The ASDR accelerator stores MLP weights on 8-bit crossbar cells and
embedding features in fixed-point memory crossbars (Section 6.1: 64x64
arrays, 5-bit ADC).  The algorithm-level pipeline runs in float; this
module provides the quantised inference path so the quality impact of the
hardware's precision choices can be measured (the `ext_quant` ablation
experiment sweeps it).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


def quantize_symmetric(values: np.ndarray, bits: int) -> Tuple[np.ndarray, float]:
    """Symmetric per-tensor quantisation.

    Returns:
        ``(quantised, scale)`` where ``quantised = round(values / scale)``
        clipped to the signed ``bits``-bit range and ``values ~ quantised
        * scale``.
    """
    if bits < 2:
        raise ConfigurationError("need at least 2 bits for signed weights")
    qmax = 2 ** (bits - 1) - 1
    scale = float(np.max(np.abs(values))) / qmax if np.any(values) else 1.0
    if scale == 0.0:
        scale = 1.0
    q = np.clip(np.round(values / scale), -qmax - 1, qmax)
    return q, scale


def fake_quantize(values: np.ndarray, bits: int) -> np.ndarray:
    """Quantise and immediately dequantise (simulated fixed-point)."""
    q, scale = quantize_symmetric(values, bits)
    return q * scale


class QuantizedInstantNGP:
    """Instant-NGP inference with CIM-precision weights and tables.

    Wraps a trained float model; every weight matrix is fake-quantised to
    ``weight_bits`` (the crossbar cell precision) and every embedding
    table to ``table_bits`` at construction.  The wrapper satisfies the
    renderer's model interface, so any renderer runs on it unchanged.
    """

    def __init__(self, model, weight_bits: int = 8, table_bits: int = 8) -> None:
        self._model = model
        self.config = model.config
        self.weight_bits = weight_bits
        self.table_bits = table_bits

        import copy

        self._quantized = copy.copy(model)
        self._quantized.encoder = copy.copy(model.encoder)
        self._quantized.encoder.tables = [
            fake_quantize(t, table_bits) for t in model.encoder.tables
        ]
        self._quantized.density_mlp = _quantize_mlp(model.density_mlp, weight_bits)
        self._quantized.color_mlp = _quantize_mlp(model.color_mlp, weight_bits)

    def query_density(self, points):
        return self._quantized.query_density(points)

    def query_color(self, geo_feat, dirs):
        return self._quantized.query_color(geo_feat, dirs)

    def query(self, points, dirs):
        return self._quantized.query(points, dirs)

    def __getattr__(self, name):
        return getattr(self._model, name)


def _quantize_mlp(mlp, bits: int):
    import copy

    out = copy.copy(mlp)
    out.weights = [fake_quantize(w, bits) for w in mlp.weights]
    out.biases = [b.copy() for b in mlp.biases]
    return out


def quantization_error_profile(
    model, points: np.ndarray, bit_widths: List[int]
) -> List[Tuple[int, float]]:
    """Density RMS error of quantised inference across bit widths.

    Returns ``(bits, rms_error)`` pairs; errors shrink monotonically (in
    expectation) as precision grows — the property the crossbar precision
    choice rests on.
    """
    reference, _ = model.query_density(points)
    profile = []
    for bits in bit_widths:
        quantized = QuantizedInstantNGP(model, weight_bits=bits, table_bits=bits)
        approx, _ = quantized.query_density(points)
        rms = float(np.sqrt(np.mean((approx - reference) ** 2)))
        profile.append((bits, rms))
    return profile
