"""Photometric training: fit a model from rendered 2D images only.

The paper's checkpoints come from standard NeRF training — gradient
descent on the photometric loss between rendered and reference pixels.
The distillation trainer (``repro.nerf.training``) is the fast default;
this module provides the faithful photometric path for users who want to
train exactly the way Instant-NGP does, using the same manual backward
passes.

The gradient of Eq. (1) with respect to per-sample density and color is
derived analytically:

    dC/dc_i     = T_i * alpha_i
    dC/dsigma_i = delta_i * [ T_i (1-alpha_i) c_i  -  sum_{j>i} w_j c_j ]

(the second term reflects that raising sigma_i occludes every later
sample).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import TrainingError
from repro.nerf.rays import sample_along_rays
from repro.nerf.spherical import sh_encode
from repro.nerf.training import Adam, _interleave
from repro.nerf.volume import alphas_from_sigmas, transmittance
from repro.scenes.dataset import SceneDataset
from repro.utils.math import sigmoid, sigmoid_grad, trunc_exp
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class PhotometricConfig:
    """Photometric training hyper-parameters.

    Attributes:
        steps: Optimisation steps.
        rays_per_step: Rays sampled per step across training views.
        num_samples: Samples per ray during training.
        learning_rate: Adam step size for MLPs.
        table_learning_rate: SGD step size for feature grids.
        num_views / reference_samples: Training views and the budget used
            to render their reference images.
        seed: RNG seed.
    """

    steps: int = 300
    rays_per_step: int = 256
    num_samples: int = 32
    learning_rate: float = 3e-3
    table_learning_rate: float = 0.2
    num_views: int = 4
    reference_samples: int = 128
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1 or self.rays_per_step < 1 or self.num_samples < 1:
            raise TrainingError("steps, rays and samples must be positive")


def composite_backward(
    sigmas: np.ndarray,
    colors: np.ndarray,
    deltas: np.ndarray,
    grad_rgb: np.ndarray,
    background: float = 1.0,
):
    """Gradients of Eq. (1) compositing wrt ``sigmas`` and ``colors``.

    Args:
        sigmas / colors / deltas: ``(R, N[,3])`` forward inputs.
        grad_rgb: ``(R, 3)`` gradient at the composited pixel colors.

    Returns:
        ``(grad_sigmas, grad_colors)`` of shapes ``(R, N)``, ``(R, N, 3)``.
    """
    alphas = alphas_from_sigmas(sigmas, deltas)
    trans = transmittance(alphas)
    weights = trans * alphas  # (R, N)

    grad_colors = weights[..., None] * grad_rgb[:, None, :]

    # suffix[j] = sum_{k>=j} w_k <c_k, g> ; background contributes through
    # the residual transmittance T_N+1 = prod(1-alpha).
    contrib = np.sum(weights[..., None] * colors * grad_rgb[:, None, :], axis=-1)
    bg_contrib = (
        np.prod(1.0 - alphas + 1e-10, axis=-1)
        * background
        * grad_rgb.sum(axis=-1)
    )
    suffix = np.cumsum(contrib[..., ::-1], axis=-1)[..., ::-1]
    suffix_after = np.concatenate(
        [suffix[..., 1:], np.zeros_like(suffix[..., :1])], axis=-1
    )
    suffix_after = suffix_after + bg_contrib[:, None]

    direct = (
        trans
        * (1.0 - alphas)
        * np.sum(colors * grad_rgb[:, None, :], axis=-1)
    )
    # d alpha_i / d sigma_i = delta_i (1 - alpha_i); occlusion derivative of
    # later weights is -suffix_after / (1 - alpha_i) * dalpha, folded below.
    grad_sigmas = deltas * (
        direct - suffix_after
    )
    return grad_sigmas, grad_colors


def train_photometric(
    model,
    dataset: SceneDataset,
    config: Optional[PhotometricConfig] = None,
) -> List[float]:
    """Train ``model`` from rendered reference images; returns losses."""
    config = config or PhotometricConfig()
    rng = seeded_rng(derive_seed(config.seed, "photometric", dataset.name))
    optimizer = Adam(
        model.density_mlp.parameters() + model.color_mlp.parameters(),
        lr=config.learning_rate,
    )
    views = list(range(min(config.num_views, len(dataset.cameras))))
    references = {
        v: dataset.reference_image(v, num_samples=config.reference_samples)
        for v in views
    }
    losses: List[float] = []
    for step in range(config.steps):
        view = views[step % len(views)]
        camera = dataset.cameras[view]
        n_pixels = camera.width * camera.height
        pixel_ids = rng.integers(0, n_pixels, size=config.rays_per_step)
        target = references[view].reshape(-1, 3)[pixel_ids]
        origins, dirs = camera.rays_for_pixels(pixel_ids)
        loss = _photometric_step(
            model, origins, dirs, target, config, optimizer
        )
        losses.append(loss)
    if not np.isfinite(losses[-1]):
        raise TrainingError("photometric training diverged")
    return losses


def _photometric_step(model, origins, dirs, target, config, optimizer) -> float:
    n_rays = origins.shape[0]
    n_samples = config.num_samples
    points, deltas, hit = sample_along_rays(origins, dirs, n_samples)
    flat = points.reshape(-1, 3)
    dirs_rep = np.repeat(dirs, n_samples, axis=0)

    encoding = model.encoder.encode(flat)
    raw_d, cache_d = model.density_mlp.forward(encoding, keep_activations=True)
    sigma = trunc_exp(raw_d[:, 0])
    geo = raw_d[:, 1:]
    color_in = np.concatenate([geo, sh_encode(dirs_rep)], axis=-1)
    raw_c, cache_c = model.color_mlp.forward(color_in, keep_activations=True)
    rgb = sigmoid(raw_c)

    sigmas = sigma.reshape(n_rays, n_samples) * hit[:, None]
    colors = rgb.reshape(n_rays, n_samples, 3)
    alphas = alphas_from_sigmas(sigmas, deltas)
    trans = transmittance(alphas)
    weights = trans * alphas
    pixel = np.sum(weights[..., None] * colors, axis=-2)
    pixel = pixel + (1.0 - weights.sum(axis=-1))[:, None]  # white background

    err = pixel - target
    loss = float(np.mean(err**2))
    grad_rgb = 2.0 * err / err.size

    grad_sigmas, grad_colors = composite_backward(sigmas, colors, deltas, grad_rgb)
    grad_sigmas = grad_sigmas * hit[:, None]

    grad_raw_c = grad_colors.reshape(-1, 3) * sigmoid_grad(rgb)
    grad_color_in, gw_c, gb_c = model.color_mlp.backward(cache_c, grad_raw_c)

    grad_raw_d = np.zeros_like(raw_d)
    grad_raw_d[:, 0] = grad_sigmas.reshape(-1) * sigma  # through trunc_exp
    grad_raw_d[:, 1:] = grad_color_in[:, : geo.shape[1]]
    grad_encoding, gw_d, gb_d = model.density_mlp.backward(cache_d, grad_raw_d)

    optimizer.step(_interleave(gw_d, gb_d) + _interleave(gw_c, gb_c))
    backward = getattr(model, "encode_backward", None)
    if backward is not None:
        backward(flat, grad_encoding, config.table_learning_rate)
    else:
        model.encoder.encode_backward(
            flat, grad_encoding, config.table_learning_rate
        )
    return loss
