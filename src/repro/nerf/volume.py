"""Volume rendering (Eq. 1 of the paper) and helpers.

Given per-sample densities ``sigma_i``, colors ``c_i`` and inter-sample
distances ``delta_i`` along each ray, the pixel color is

    C = sum_i T_i * alpha_i * c_i,   alpha_i = 1 - exp(-sigma_i * delta_i),
    T_i = prod_{j<i} (1 - alpha_j).

All functions are batched over rays: inputs have shape ``(R, N)`` or
``(R, N, 3)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def alphas_from_sigmas(sigmas: np.ndarray, deltas: np.ndarray) -> np.ndarray:
    """Per-sample opacity ``alpha_i = 1 - exp(-sigma_i * delta_i)``."""
    return 1.0 - np.exp(-np.maximum(sigmas, 0.0) * deltas)


def transmittance(alphas: np.ndarray) -> np.ndarray:
    """Accumulated transparency ``T_i = prod_{j<i} (1 - alpha_j)``.

    Returns an array of the same shape as ``alphas``; ``T_0 = 1``.
    """
    trans = np.cumprod(1.0 - alphas + 1e-10, axis=-1)
    return np.concatenate(
        [np.ones_like(trans[..., :1]), trans[..., :-1]], axis=-1
    )


def composite(
    sigmas: np.ndarray,
    colors: np.ndarray,
    deltas: np.ndarray,
    background: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Composite samples into pixel colors.

    Args:
        sigmas: ``(R, N)`` densities.
        colors: ``(R, N, 3)`` sample colors.
        deltas: ``(R, N)`` inter-sample distances.
        background: Background intensity blended in through residual
            transmittance (Synthetic-NeRF uses a white background).

    Returns:
        ``(rgb, opacity)`` where ``rgb`` is ``(R, 3)`` and ``opacity`` is
        the ``(R,)`` accumulated alpha.
    """
    alphas = alphas_from_sigmas(sigmas, deltas)
    trans = transmittance(alphas)
    weights = trans * alphas
    rgb = np.sum(weights[..., None] * colors, axis=-2)
    opacity = np.sum(weights, axis=-1)
    rgb = rgb + (1.0 - opacity)[..., None] * background
    return rgb, opacity


def composite_prefix(
    sigmas: np.ndarray,
    colors: np.ndarray,
    deltas: np.ndarray,
    counts: np.ndarray,
    background: float = 1.0,
) -> np.ndarray:
    """Composite using only the first ``counts[r]`` samples of each ray.

    This is the primitive behind the adaptive-sampling probe (Section 4.2):
    one full-budget prediction pass supports volume rendering at many
    candidate sample counts, because rendering with ``ns_i < ns`` points
    just truncates the sum.

    Args:
        counts: ``(R,)`` integer prefix lengths, each in ``[0, N]``.

    Returns:
        ``(R, 3)`` colors.
    """
    n = sigmas.shape[-1]
    mask = np.arange(n)[None, :] < np.asarray(counts)[:, None]
    masked_sigmas = np.where(mask, sigmas, 0.0)
    rgb, _ = composite(masked_sigmas, colors, deltas, background)
    return rgb


def subsample_indices(num_samples: int, count: int) -> np.ndarray:
    """``count`` near-uniformly spread indices into ``num_samples`` samples.

    Rendering a ray "with ``ns_i`` points" (Section 4.2) means ``ns_i``
    points spread across the whole ray; reusing the full-budget predictions
    at these indices reproduces that render without new MLP work.
    """
    count = max(1, min(count, num_samples))
    return np.unique(np.round(np.linspace(0, num_samples - 1, count)).astype(np.int64))


def composite_subsample(
    sigmas: np.ndarray,
    colors: np.ndarray,
    deltas: np.ndarray,
    count: int,
    background: float = 1.0,
) -> np.ndarray:
    """Composite using ``count`` uniformly spread samples of each ray.

    The subset's inter-sample distances grow by ``N / count`` so the ray
    span (and therefore optical depth of homogeneous media) is preserved —
    this matches rendering the ray from scratch with ``count`` stratified
    samples.
    """
    n = sigmas.shape[-1]
    idx = subsample_indices(n, count)
    scale = n / len(idx)
    rgb, _ = composite(
        sigmas[:, idx], colors[:, idx, :], deltas[:, idx] * scale, background
    )
    return rgb


def early_termination_counts(
    sigmas: np.ndarray, deltas: np.ndarray, opacity_threshold: float = 0.99
) -> np.ndarray:
    """Samples each ray needs before accumulated opacity crosses threshold.

    Implements the classic early-termination optimisation (Section 6.6):
    once ``1 - T_i`` exceeds ``opacity_threshold`` the remaining samples
    contribute (almost) nothing.  Returns ``(R,)`` counts in ``[1, N]``.
    """
    alphas = alphas_from_sigmas(sigmas, deltas)
    trans = transmittance(alphas)
    weights = trans * alphas
    opacity = np.cumsum(weights, axis=-1)
    done = opacity >= opacity_threshold
    n = sigmas.shape[-1]
    first = np.where(done.any(axis=-1), done.argmax(axis=-1) + 1, n)
    return first.astype(np.int64)
