"""Ray/AABB intersection and stratified sampling along rays.

The scene lives in the unit cube ``[0, 1]^3``; rays that miss it get zero
samples (the renderer composites the background directly).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def ray_aabb_intersect(
    origins: np.ndarray,
    directions: np.ndarray,
    box_min: float = 0.0,
    box_max: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Intersect rays with an axis-aligned cube.

    Returns:
        ``(t_near, t_far, hit)``: entry/exit distances (``(R,)``) and a
        boolean hit mask.  ``t_near`` is clamped to zero so origins inside
        the box work.
    """
    inv = 1.0 / np.where(np.abs(directions) < 1e-12, 1e-12, directions)
    t0 = (box_min - origins) * inv
    t1 = (box_max - origins) * inv
    t_near = np.max(np.minimum(t0, t1), axis=-1)
    t_far = np.min(np.maximum(t0, t1), axis=-1)
    t_near = np.maximum(t_near, 0.0)
    hit = t_far > t_near
    return t_near, t_far, hit


def sample_along_rays(
    origins: np.ndarray,
    directions: np.ndarray,
    num_samples: int,
    jitter_rng: Optional[np.random.Generator] = None,
    box_min: float = 0.0,
    box_max: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Place ``num_samples`` points along each ray inside the scene cube.

    Sampling is uniform in depth between the ray's cube entry and exit
    (optionally jittered per-bin, the stratified scheme used for training).
    Rays that miss the cube receive points collapsed at the origin with
    zero ``delta`` so they contribute nothing to compositing.

    Returns:
        ``(points, deltas, hit)``: ``(R, N, 3)`` sample positions inside the
        unit cube, ``(R, N)`` inter-sample distances, and the ``(R,)`` hit
        mask.
    """
    t_near, t_far, hit = ray_aabb_intersect(origins, directions, box_min, box_max)
    num_rays = origins.shape[0]
    edges = np.linspace(0.0, 1.0, num_samples + 1)
    mids = (edges[:-1] + edges[1:]) / 2.0
    fractions = np.broadcast_to(mids, (num_rays, num_samples)).copy()
    if jitter_rng is not None:
        jitter = (jitter_rng.random((num_rays, num_samples)) - 0.5) / num_samples
        fractions += jitter
    span = np.where(hit, t_far - t_near, 0.0)
    t_vals = t_near[:, None] + fractions * span[:, None]
    points = origins[:, None, :] + t_vals[..., None] * directions[:, None, :]
    deltas = np.full((num_rays, num_samples), 1.0, dtype=np.float64)
    deltas *= (span / num_samples)[:, None]
    points = np.clip(points, box_min, box_max - 1e-9)
    return points, deltas, hit
