"""Baseline (Instant-NGP style) renderer with operation accounting.

Renders images with a *fixed* per-ray sample budget — the red path of
Figure 1 — and records the FLOP and memory-traffic statistics that drive
the Figure 5 breakdown and the roofline baselines.  The ASDR renderer in
:mod:`repro.core.pipeline` reuses the same primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.nerf.rays import sample_along_rays
from repro.nerf.volume import composite, early_termination_counts
from repro.scenes.cameras import Camera

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.exec.frame_trace import FrameTrace


@dataclass
class PhaseCounts:
    """Operation counts for one rendering phase."""

    flops: int = 0
    bytes: int = 0

    def add(self, flops: int, bytes_: int = 0) -> None:
        self.flops += int(flops)
        self.bytes += int(bytes_)


@dataclass
class RenderResult:
    """Output of a render: the image plus operation statistics.

    Attributes:
        image: ``(H, W, 3)`` float RGB in [0, 1].
        num_rays: Rays traced (== pixels).
        points_total: Sample points whose density was evaluated.
        color_points: Sample points whose *color MLP* actually ran (can be
            fewer than ``points_total`` under ASDR's approximation).
        phase_counts: FLOPs/bytes per phase: embedding / density / color /
            volume.
        sample_counts: ``(H*W,)`` per-ray sample budgets actually used.
        trace: The :class:`~repro.exec.frame_trace.FrameTrace` this render
            executed (replayed by the simulator and the profilers).
    """

    image: np.ndarray
    num_rays: int
    points_total: int
    color_points: int
    phase_counts: Dict[str, PhaseCounts]
    sample_counts: np.ndarray
    trace: Optional["FrameTrace"] = None

    @property
    def total_flops(self) -> int:
        return sum(pc.flops for pc in self.phase_counts.values())

    def flops_fraction(self, phase: str) -> float:
        total = self.total_flops
        return self.phase_counts[phase].flops / total if total else 0.0


def _new_phase_counts() -> Dict[str, PhaseCounts]:
    return {name: PhaseCounts() for name in ("embedding", "density", "color", "volume")}


class BaselineRenderer:
    """Fixed-budget volume renderer over any model with the query interface.

    Args:
        model: Object exposing ``query_density`` / ``query_color`` and the
            ``flops_*_per_point`` accessors (InstantNGP or TensoRF).
        num_samples: Fixed per-ray sample count (paper: 192).
        early_termination: When set, stop each ray once accumulated opacity
            exceeds this threshold (Section 6.6); ``None`` disables it.
        background: Background intensity (Synthetic-NeRF uses white).
    """

    def __init__(
        self,
        model,
        num_samples: int = 64,
        early_termination: Optional[float] = None,
        background: float = 1.0,
        batch_rays: int = 4096,
    ) -> None:
        self.model = model
        self.num_samples = num_samples
        self.early_termination = early_termination
        self.background = background
        self.batch_rays = batch_rays

    # ------------------------------------------------------------------
    def render_rays(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Predict along rays without compositing.

        Returns:
            ``(points, sigmas, colors, deltas, hit)`` with shapes
            ``(R, N, 3)``, ``(R, N)``, ``(R, N, 3)``, ``(R, N)``, ``(R,)``.
        """
        points, deltas, hit = sample_along_rays(origins, directions, self.num_samples)
        flat = points.reshape(-1, 3)
        dirs_rep = np.repeat(directions, self.num_samples, axis=0)
        sigma, geo = self.model.query_density(flat)
        rgb = self.model.query_color(geo, dirs_rep)
        n_rays = origins.shape[0]
        sigmas = sigma.reshape(n_rays, self.num_samples)
        colors = rgb.reshape(n_rays, self.num_samples, 3)
        sigmas = sigmas * hit[:, None]
        return points, sigmas, colors, deltas, hit

    def render_image(self, camera: Camera) -> RenderResult:
        """Render a full image through the fixed-budget pipeline."""
        from repro.exec.frame_trace import PHASE_MAIN, FrameTrace, TraceWavefront

        origins, directions = camera.pixel_rays()
        n_rays = origins.shape[0]
        image = np.zeros((n_rays, 3))
        counts = _new_phase_counts()
        sample_counts = np.zeros(n_rays, dtype=np.int64)
        points_total = 0
        color_points = 0
        wavefronts: List[TraceWavefront] = []

        for start in range(0, n_rays, self.batch_rays):
            sl = slice(start, min(start + self.batch_rays, n_rays))
            points, sigmas, colors, deltas, hit = self.render_rays(
                origins[sl], directions[sl]
            )
            used = np.full(sigmas.shape[0], self.num_samples, dtype=np.int64)
            if self.early_termination is not None:
                used = early_termination_counts(
                    sigmas, deltas, self.early_termination
                )
                mask = np.arange(self.num_samples)[None, :] < used[:, None]
                sigmas = sigmas * mask
            used = used * hit  # missed rays cost nothing
            rgb, _ = composite(sigmas, colors, deltas, self.background)
            image[sl] = rgb
            sample_counts[sl] = used

            batch_points = int(used.sum())
            points_total += batch_points
            color_points += batch_points
            self._charge(counts, batch_points, batch_points)
            wavefronts.append(
                TraceWavefront.from_samples(
                    phase=PHASE_MAIN,
                    budget=self.num_samples,
                    ray_ids=np.arange(sl.start, sl.stop, dtype=np.int64),
                    hit=hit,
                    points=points,
                    used=used,
                    color_used=used,
                )
            )

        h, w = camera.height, camera.width
        return RenderResult(
            image=image.reshape(h, w, 3),
            num_rays=n_rays,
            points_total=points_total,
            color_points=color_points,
            phase_counts=counts,
            sample_counts=sample_counts,
            trace=FrameTrace(
                num_pixels=n_rays,
                full_budget=self.num_samples,
                kind="baseline",
                wavefronts=wavefronts,
            ),
        )

    # ------------------------------------------------------------------
    def _charge(
        self,
        counts: Dict[str, PhaseCounts],
        density_points: int,
        color_points: int,
    ) -> None:
        """Account FLOPs/bytes for a batch of point evaluations."""
        m = self.model
        counts["embedding"].add(
            density_points * m.flops_embedding_per_point(),
            density_points * m.bytes_embedding_per_point(),
        )
        counts["density"].add(density_points * m.flops_density_per_point())
        counts["color"].add(color_points * m.flops_color_per_point())
        counts["volume"].add(density_points * 10)
