"""Multi-resolution hash-grid encoding (Instant-NGP, Eq. 2 of the paper).

Each of ``num_levels`` resolution levels stores per-vertex feature vectors
in an embedding table of ``table_size`` entries.  A sample point is located
in its voxel at every level; the features of the voxel's eight vertices are
fetched (dense indexing when the grid fits, hashed otherwise) and blended
by trilinear interpolation; per-level features are concatenated.

Besides encoding, this module exposes the *addressing* primitives the
architecture simulator replays: vertex coordinates, table indices, and
whether a level is hash-compressed — exactly the information the hybrid
address generator of Section 5.2.1 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import seeded_rng

# The paper's Eq. (2) primes (pi_1 = 1 keeps x-locality in Instant-NGP's
# reference implementation; we follow it).
HASH_PRIMES = (1, 2654435761, 805459861)

# Offsets of a voxel's eight corners, in (x, y, z) minor-to-major order.
CORNER_OFFSETS = np.array(
    [[i & 1, (i >> 1) & 1, (i >> 2) & 1] for i in range(8)], dtype=np.int64
)


@dataclass
class HashGridConfig:
    """Configuration of the multi-resolution hash encoding.

    Attributes:
        num_levels: Number of resolution levels (paper: 16).
        table_size: Entries per level's embedding table (paper: 2**19).
        feature_dim: Features per table entry (paper: 2).
        base_resolution: Grid resolution of the coarsest level.
        max_resolution: Grid resolution of the finest level.
    """

    num_levels: int = 16
    table_size: int = 2**19
    feature_dim: int = 2
    base_resolution: int = 16
    max_resolution: int = 512

    def __post_init__(self) -> None:
        if self.num_levels < 1:
            raise ConfigurationError("num_levels must be >= 1")
        if self.table_size < 8:
            raise ConfigurationError("table_size must be >= 8")
        if self.feature_dim < 1:
            raise ConfigurationError("feature_dim must be >= 1")
        if not (1 < self.base_resolution <= self.max_resolution):
            raise ConfigurationError(
                "need 1 < base_resolution <= max_resolution"
            )

    @property
    def level_resolutions(self) -> np.ndarray:
        """Per-level grid resolutions, geometrically spaced (Instant-NGP)."""
        if self.num_levels == 1:
            return np.array([self.base_resolution], dtype=np.int64)
        growth = np.exp(
            (np.log(self.max_resolution) - np.log(self.base_resolution))
            / (self.num_levels - 1)
        )
        res = np.floor(
            self.base_resolution * growth ** np.arange(self.num_levels)
        ).astype(np.int64)
        return np.maximum(res, 2)

    @property
    def output_dim(self) -> int:
        """Dimensionality of the concatenated encoding."""
        return self.num_levels * self.feature_dim

    def level_is_dense(self, level: int) -> bool:
        """True when the level's full grid fits in the table without hashing.

        These are the paper's "low-resolution" levels: their tables can be
        de-hashed, bit-reorder addressed and replicated (Section 5.2.1).
        """
        res = int(self.level_resolutions[level])
        return (res + 1) ** 3 <= self.table_size


def hash_coords(coords: np.ndarray, table_size: int) -> np.ndarray:
    """Spatial hash of integer vertex coordinates, Eq. (2).

    Args:
        coords: ``(..., 3)`` integer vertex coordinates.
        table_size: Modulus ``T`` (need not be a power of two).

    Returns:
        ``(...)`` indices in ``[0, table_size)``.
    """
    coords = np.asarray(coords, dtype=np.uint64)
    result = coords[..., 0] * np.uint64(HASH_PRIMES[0])
    result ^= coords[..., 1] * np.uint64(HASH_PRIMES[1])
    result ^= coords[..., 2] * np.uint64(HASH_PRIMES[2])
    return (result % np.uint64(table_size)).astype(np.int64)


def dense_coords_index(coords: np.ndarray, resolution: int) -> np.ndarray:
    """Row-major dense index of vertex coordinates on a ``(res+1)^3`` grid."""
    coords = np.asarray(coords, dtype=np.int64)
    stride = resolution + 1
    return (coords[..., 2] * stride + coords[..., 1]) * stride + coords[..., 0]


class HashGridEncoder:
    """Trainable multi-resolution hash-grid encoder.

    The tables are NumPy arrays updated by the distillation trainer; the
    encoder also provides :meth:`voxel_vertices` and :meth:`table_indices`
    used by the architecture simulator to replay memory accesses.
    """

    def __init__(self, config: HashGridConfig, seed: int = 0) -> None:
        self.config = config
        rng = seeded_rng(seed)
        scale = 1e-2
        self.tables: List[np.ndarray] = [
            rng.uniform(-scale, scale, size=(config.table_size, config.feature_dim))
            for _ in range(config.num_levels)
        ]
        self._resolutions = config.level_resolutions

    # ------------------------------------------------------------------
    # Addressing primitives (shared with the architecture simulator)
    # ------------------------------------------------------------------
    def voxel_vertices(
        self, points: np.ndarray, level: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Locate points in their voxel at ``level``.

        Args:
            points: ``(N, 3)`` positions in the unit cube.

        Returns:
            ``(corners, weights)``: the ``(N, 8, 3)`` integer coordinates of
            each point's voxel vertices and the ``(N, 8)`` trilinear weights.
        """
        res = int(self._resolutions[level])
        scaled = np.asarray(points) * res
        base = np.floor(scaled).astype(np.int64)
        base = np.clip(base, 0, res - 1)
        frac = scaled - base
        corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]
        # Weight of corner (ox, oy, oz) is prod over axes of
        # frac if offset==1 else (1-frac).
        offs = CORNER_OFFSETS[None, :, :]
        w = np.where(offs == 1, frac[:, None, :], 1.0 - frac[:, None, :])
        weights = np.prod(w, axis=-1)
        return corners, weights

    def table_indices(self, corners: np.ndarray, level: int) -> np.ndarray:
        """Embedding-table indices of vertex coordinates at ``level``.

        Dense (low-resolution) levels index the grid directly; compressed
        (high-resolution) levels hash with Eq. (2).
        """
        res = int(self._resolutions[level])
        if self.config.level_is_dense(level):
            return dense_coords_index(corners, res)
        return hash_coords(corners, self.config.table_size)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_level(self, points: np.ndarray, level: int) -> np.ndarray:
        """Trilinearly interpolated features for one level, ``(N, F)``."""
        corners, weights = self.voxel_vertices(points, level)
        idx = self.table_indices(corners, level)
        feats = self.tables[level][idx]  # (N, 8, F)
        return np.sum(weights[..., None] * feats, axis=1)

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Concatenated multi-resolution encoding, ``(N, L*F)``."""
        points = np.atleast_2d(points)
        outs = [
            self.encode_level(points, level)
            for level in range(self.config.num_levels)
        ]
        return np.concatenate(outs, axis=-1)

    def encode_with_cache(
        self, points: np.ndarray
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Encode and also return per-level table indices ``(N, 8)``.

        Used by the trainer (for gradient scatter) and the renderer (for
        access tracing) so the expensive voxel location runs once.
        """
        points = np.atleast_2d(points)
        outs = []
        index_lists = []
        for level in range(self.config.num_levels):
            corners, weights = self.voxel_vertices(points, level)
            idx = self.table_indices(corners, level)
            feats = self.tables[level][idx]
            outs.append(np.sum(weights[..., None] * feats, axis=1))
            index_lists.append(idx)
        return np.concatenate(outs, axis=-1), index_lists

    def encode_backward(
        self,
        points: np.ndarray,
        grad_output: np.ndarray,
        learning_rate: float,
    ) -> None:
        """SGD update of the tables given d(loss)/d(encoding).

        ``grad_output`` has shape ``(N, L*F)``; gradients are scattered to
        the eight vertices of each point's voxel with trilinear weights.
        """
        points = np.atleast_2d(points)
        fdim = self.config.feature_dim
        for level in range(self.config.num_levels):
            corners, weights = self.voxel_vertices(points, level)
            idx = self.table_indices(corners, level)
            g = grad_output[:, level * fdim : (level + 1) * fdim]
            contrib = weights[..., None] * g[:, None, :]  # (N, 8, F)
            np.add.at(
                self.tables[level],
                idx.reshape(-1),
                -learning_rate * contrib.reshape(-1, fdim),
            )

    def parameter_count(self) -> int:
        """Total number of trainable table entries times feature dim."""
        return sum(t.size for t in self.tables)

    def lookup_flops_per_point(self) -> int:
        """FLOPs of one point's encoding (trilinear blend, all levels).

        Eight vertices x feature_dim multiply-adds per level plus the
        weight products; matches the accounting behind Figure 5.
        """
        per_level = 8 * self.config.feature_dim * 2 + 8 * 3
        return per_level * self.config.num_levels
