"""Storage-utilisation analysis of table mappings (Figures 11-13).

Under the original all-hash mapping, a low-resolution level with
``(res+1)^3`` vertices touches only that many of its ``T`` table entries —
the rest of the crossbar storage is dead.  The hybrid mapping de-hashes
those levels and fills the headroom with replicated copies, driving
utilisation from ~62 % to ~86 % in the paper's Figure 13.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cim.address import HybridAddressGenerator, dense_slot_size
from repro.nerf.hashgrid import HashGridConfig, hash_coords


def _distinct_hash_fraction(resolution: int, table_size: int) -> float:
    """Fraction of table entries a full ``(res+1)^3`` grid touches via hash.

    Computed exactly for small grids and by the standard occupancy formula
    ``1 - (1 - 1/T)^V`` for large ones (hashing is effectively uniform).
    """
    vertices = (resolution + 1) ** 3
    if vertices <= 2**21:
        coords = np.stack(
            np.meshgrid(*([np.arange(resolution + 1)] * 3), indexing="ij"), axis=-1
        ).reshape(-1, 3)
        distinct = len(np.unique(hash_coords(coords, table_size)))
        return distinct / table_size
    return 1.0 - (1.0 - 1.0 / table_size) ** vertices


def storage_utilization(grid: HashGridConfig) -> List[float]:
    """Per-level utilisation under the original all-hash mapping."""
    out = []
    for level in range(grid.num_levels):
        res = int(grid.level_resolutions[level])
        out.append(min(1.0, _distinct_hash_fraction(res, grid.table_size)))
    return out


def hybrid_utilization(grid: HashGridConfig) -> List[float]:
    """Per-level utilisation under ASDR's hybrid mapping.

    De-hashed levels pack ``copies`` replicas; every stored entry is a live
    grid vertex, so utilisation is the packed fraction of the table
    capacity.  Hashed levels are unchanged.
    """
    gen = HybridAddressGenerator(grid, mode="hybrid")
    baseline = storage_utilization(grid)
    out = []
    for level, mapping in enumerate(gen.levels):
        if not mapping.dense:
            out.append(baseline[level])
            continue
        live_entries = (mapping.resolution + 1) ** 3 * mapping.copies
        out.append(min(1.0, live_entries / grid.table_size))
    return out


def average_utilization(values: List[float]) -> float:
    """Mean utilisation across levels (the Figure 13 'Avg.' annotation)."""
    return float(np.mean(values)) if values else 0.0
