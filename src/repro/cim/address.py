"""Hybrid address generation (Section 5.2.1, Figures 12 and 14).

Low-resolution embedding tables fit their full dense grid into the table
capacity, so ASDR de-hashes them: vertex coordinates are turned into
addresses by *bit reorder and concatenation* — the low (parity) bits of
``(x, y, z)`` become the high bits of the address, so the eight vertices of
any voxel land on eight different memory crossbars and can be read in one
parallel cycle.  The leftover capacity stores replicated copies of the
table, letting concurrent sample points read the same entry from different
copies.  High-resolution tables keep the original Eq. (2) hash mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.nerf.hashgrid import HashGridConfig, hash_coords


def naive_concat_address(corners: np.ndarray, resolution: int) -> np.ndarray:
    """Figure 14(a)'s strawman: concatenate x|y|z bit fields.

    Vertices of one voxel share their high bits, so they pile onto the same
    crossbar — this mapping exists as the conflict-prone comparison point.
    """
    bits = max(1, math.ceil(math.log2(resolution + 1)))
    c = np.asarray(corners, dtype=np.int64)
    return (c[..., 0] << (2 * bits)) | (c[..., 1] << bits) | c[..., 2]


def bit_reorder_address(
    corners: np.ndarray,
    resolution: int,
    copy_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Figure 14(b)'s mapping: parity bits become the address high bits.

    Args:
        corners: ``(..., 3)`` integer vertex coordinates in
            ``[0, resolution]``.
        resolution: Grid resolution of the level.
        copy_ids: Optional ``(...)`` replica selector; copy ``k`` addresses
            the ``k``-th replicated table instance.

    Returns:
        ``(...)`` addresses.  The 8 vertices of any voxel always receive 8
        distinct parity prefixes, hence distinct crossbars.
    """
    c = np.asarray(corners, dtype=np.int64)
    parity = (c[..., 0] & 1) | ((c[..., 1] & 1) << 1) | ((c[..., 2] & 1) << 2)
    half = resolution // 2 + 1
    rest = ((c[..., 2] >> 1) * half + (c[..., 1] >> 1)) * half + (c[..., 0] >> 1)
    addr = parity * half**3 + rest
    if copy_ids is not None:
        addr = addr + np.asarray(copy_ids, dtype=np.int64) * dense_slot_size(resolution)
    return addr


def dense_slot_size(resolution: int) -> int:
    """Address-space footprint of one de-hashed table copy."""
    half = resolution // 2 + 1
    return 8 * half**3


@dataclass
class LevelMapping:
    """How one resolution level's table is mapped into crossbar storage.

    Attributes:
        level: Level index.
        resolution: Grid resolution.
        table_size: Logical table entries (capacity).
        dense: True when the level is de-hashed (low resolution).
        copies: Replicated table instances (1 for hashed levels).
    """

    level: int
    resolution: int
    table_size: int
    dense: bool
    copies: int

    @property
    def address_space(self) -> int:
        """Entries of physical storage the mapping occupies."""
        if self.dense:
            return dense_slot_size(self.resolution) * self.copies
        return self.table_size


class HybridAddressGenerator:
    """Per-level address generation for the encoding engine.

    Args:
        grid: The hash-grid configuration being accelerated.
        mode: ``"hybrid"`` (the ASDR design), ``"hash"`` (original mapping
            everywhere) or ``"naive"`` (de-hash by plain concatenation —
            the Figure 14a strawman).
    """

    MODES = ("hybrid", "hash", "naive")

    def __init__(self, grid: HashGridConfig, mode: str = "hybrid") -> None:
        if mode not in self.MODES:
            raise ConfigurationError(f"mode must be one of {self.MODES}")
        self.grid = grid
        self.mode = mode
        self.levels: List[LevelMapping] = []
        resolutions = grid.level_resolutions
        for level in range(grid.num_levels):
            res = int(resolutions[level])
            dense = mode != "hash" and grid.level_is_dense(level)
            copies = 1
            if dense and mode == "hybrid":
                copies = max(1, grid.table_size // dense_slot_size(res))
            self.levels.append(
                LevelMapping(
                    level=level,
                    resolution=res,
                    table_size=grid.table_size,
                    dense=dense,
                    copies=copies,
                )
            )

    def addresses(
        self,
        corners: np.ndarray,
        level: int,
        request_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Physical addresses of vertex ``corners`` at ``level``.

        Args:
            corners: ``(N, 8, 3)`` voxel-vertex coordinates.
            request_ids: Optional ``(N,)`` sequence numbers of the issuing
                sample points; replicated levels stripe consecutive
                requests across copies (round-robin), which is what lets
                concurrent points read the same entry conflict-free.
        """
        mapping = self.levels[level]
        if not mapping.dense:
            return hash_coords(corners, mapping.table_size)
        if self.mode == "naive":
            return naive_concat_address(corners, mapping.resolution)
        copy_ids = None
        if mapping.copies > 1 and request_ids is not None:
            copy_ids = (np.asarray(request_ids, dtype=np.int64) % mapping.copies)[
                :, None
            ]
        return bit_reorder_address(corners, mapping.resolution, copy_ids)

    def striped(self, level: int) -> bool:
        """Whether the level's physical addresses depend on request ids
        (replicated dense levels round-robin across copies; every other
        mapping is request-independent)."""
        mapping = self.levels[level]
        return self.mode == "hybrid" and mapping.dense and mapping.copies > 1

    def level_storage_entries(self, level: int) -> int:
        """Physical entries backing the level (for bank sizing)."""
        return max(self.levels[level].address_space, self.grid.table_size)
