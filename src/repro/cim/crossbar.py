"""CIM crossbar MVM timing and energy model.

A weight matrix is tiled over 64x64 crossbars; inputs stream in bit-serial
through DACs and columns are read out by 5-bit ADCs (the paper's
configuration).  Multi-bit weights span ``ceil(weight_bits / cell_bits)``
adjacent columns whose partial sums are shifted and added digitally.

The model is deterministic: given a layer shape it returns cycles and
energy per input vector, which the MLP engine aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cim.reram import RERAM, DeviceParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CrossbarConfig:
    """Array geometry and data precision of a CIM PE.

    Attributes:
        rows / cols: Crossbar dimensions (paper: 64x64).
        adc_bits: ADC precision (paper: 5).
        input_bits: Bit-serial input precision (activations).
        weight_bits: Weight precision.
        device: The memory technology.
    """

    rows: int = 64
    cols: int = 64
    adc_bits: int = 5
    input_bits: int = 8
    weight_bits: int = 8
    device: DeviceParams = RERAM

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("crossbar dimensions must be positive")
        if min(self.adc_bits, self.input_bits, self.weight_bits) < 1:
            raise ConfigurationError("bit precisions must be positive")

    @property
    def cells_per_weight(self) -> int:
        return math.ceil(self.weight_bits / self.device.cell_bits)

    @property
    def weights_per_array(self) -> int:
        """Distinct matrix entries one array stores."""
        return self.rows * (self.cols // self.cells_per_weight)


@dataclass(frozen=True)
class MVMCost:
    """Cost of one matrix-vector product on the CIM fabric.

    Attributes:
        cycles: Latency in clock cycles assuming ``parallel_arrays``
            crossbars operate concurrently.
        energy_pj: Total dynamic energy.
        arrays_used: Crossbar tiles the matrix occupies.
    """

    cycles: int
    energy_pj: float
    arrays_used: int


class CIMCrossbarModel:
    """Maps weight matrices onto crossbars and prices MVMs."""

    def __init__(self, config: CrossbarConfig) -> None:
        self.config = config

    def tiles_for_matrix(self, in_dim: int, out_dim: int) -> int:
        """Number of crossbar tiles an ``in_dim x out_dim`` matrix needs."""
        c = self.config
        row_tiles = math.ceil(in_dim / c.rows)
        col_tiles = math.ceil(out_dim * c.cells_per_weight / c.cols)
        return row_tiles * col_tiles

    def mvm_cost(self, in_dim: int, out_dim: int, parallel_arrays: int = 1) -> MVMCost:
        """Cost of one MVM through an ``in_dim x out_dim`` layer.

        Args:
            parallel_arrays: Crossbar tiles that can fire concurrently
                (set by the engine's PE budget).
        """
        if parallel_arrays < 1:
            raise ConfigurationError("parallel_arrays must be >= 1")
        c = self.config
        tiles = self.tiles_for_matrix(in_dim, out_dim)
        waves = math.ceil(tiles / parallel_arrays)
        # Bit-serial input: one analog activation per input bit per wave.
        cycles = c.input_bits * waves * c.device.read_latency_cycles
        activations = c.input_bits * tiles
        adc_reads = activations * c.cols
        energy = (
            activations * c.device.mvm_energy_pj
            + adc_reads * c.device.adc_energy_pj
        )
        return MVMCost(cycles=cycles, energy_pj=energy, arrays_used=tiles)

    def write_energy_pj(self, in_dim: int, out_dim: int) -> float:
        """One-time programming energy for a layer's weights."""
        c = self.config
        return in_dim * out_dim * c.cells_per_weight * c.device.write_energy_pj
