"""Memory crossbar banks storing embedding tables.

Each memory crossbar (Mem Xbar) holds ``rows`` table entries and serves one
row read per cycle — the mechanism behind the paper's Figure 3(c): when the
eight vertex lookups of a sample point land on the same crossbar they
serialise, while lookups hitting distinct crossbars proceed in parallel.

:meth:`MemXbarBank.read_cycles` consumes a batch of addresses grouped into
parallel *issue groups* (one group per lookup cycle, e.g. the 8 vertices of
a voxel) and returns the conflict-serialised cycle count, vectorised over
the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cim.reram import RERAM, DeviceParams
from repro.errors import ConfigurationError


@dataclass
class ReadStats:
    """Outcome of replaying a lookup stream on a bank.

    Attributes:
        cycles: Total read cycles after conflict serialisation.
        accesses: Row reads issued (equals the number of addresses).
        conflicts: Extra cycles lost to same-crossbar serialisation
            (``cycles - ideal_cycles``).
        energy_pj: Dynamic read energy.
    """

    cycles: int
    accesses: int
    conflicts: int
    energy_pj: float


class MemXbarBank:
    """A bank of memory crossbars addressed linearly.

    Address ``a`` maps to crossbar ``a // rows``, row ``a % rows``.

    Args:
        total_entries: Table entries the bank stores.
        rows: Entries per crossbar (paper: 64).
        device: Memory technology for energy accounting.
    """

    def __init__(
        self,
        total_entries: int,
        rows: int = 64,
        device: DeviceParams = RERAM,
    ) -> None:
        if total_entries < 1:
            raise ConfigurationError("total_entries must be >= 1")
        if rows < 1:
            raise ConfigurationError("rows must be >= 1")
        self.total_entries = total_entries
        self.rows = rows
        self.device = device

    @property
    def num_xbars(self) -> int:
        return -(-self.total_entries // self.rows)

    def xbar_of(self, addresses: np.ndarray) -> np.ndarray:
        """Crossbar id of each address."""
        return np.asarray(addresses, dtype=np.int64) // self.rows

    def read_cycles(self, grouped_addresses: np.ndarray) -> ReadStats:
        """Replay reads issued in parallel groups.

        Args:
            grouped_addresses: ``(G, K)`` array; each row is one issue group
                of ``K`` addresses presented in the same cycle (e.g. the 8
                voxel-vertex lookups of one sample point).  Negative
                addresses mark lanes with nothing to read (cache hits).

        Returns:
            :class:`ReadStats` with conflict-serialised cycles.
        """
        grouped = np.atleast_2d(np.asarray(grouped_addresses, dtype=np.int64))
        valid = grouped >= 0
        accesses = int(valid.sum())
        if accesses == 0:
            return ReadStats(cycles=0, accesses=0, conflicts=0, energy_pj=0.0)

        xbars = np.where(valid, grouped // self.rows, -1)
        # Per group, the cycle cost is the largest number of addresses
        # landing on one crossbar.  Sorting each row makes equal crossbar
        # ids adjacent; the longest run is found with run-length tricks.
        order = np.sort(xbars, axis=1)
        same_as_prev = (order[:, 1:] == order[:, :-1]) & (order[:, 1:] >= 0)
        run = np.ones(order.shape, dtype=np.int64)
        for k in range(1, order.shape[1]):
            run[:, k] = np.where(same_as_prev[:, k - 1], run[:, k - 1] + 1, 1)
        group_cycles = np.where(valid.any(axis=1), run.max(axis=1), 0)
        cycles = int(group_cycles.sum()) * self.device.read_latency_cycles
        ideal = int(valid.any(axis=1).sum()) * self.device.read_latency_cycles
        energy = accesses * self.device.read_energy_pj
        return ReadStats(
            cycles=cycles,
            accesses=accesses,
            conflicts=cycles - ideal,
            energy_pj=energy,
        )
