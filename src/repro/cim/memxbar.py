"""Memory crossbar banks storing embedding tables.

Each memory crossbar (Mem Xbar) holds ``rows`` table entries and serves one
row read per cycle — the mechanism behind the paper's Figure 3(c): when the
eight vertex lookups of a sample point land on the same crossbar they
serialise, while lookups hitting distinct crossbars proceed in parallel.

:meth:`MemXbarBank.read_cycles` consumes a batch of addresses grouped into
parallel *issue groups* (one group per lookup cycle, e.g. the 8 vertices of
a voxel) and returns the conflict-serialised cycle count, vectorised over
the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cim.reram import RERAM, DeviceParams
from repro.errors import ConfigurationError


@dataclass
class ReadStats:
    """Outcome of replaying a lookup stream on a bank.

    Attributes:
        cycles: Total read cycles after conflict serialisation.
        accesses: Row reads issued (equals the number of addresses).
        conflicts: Extra cycles lost to same-crossbar serialisation
            (``cycles - ideal_cycles``).
        energy_pj: Dynamic read energy.
    """

    cycles: int
    accesses: int
    conflicts: int
    energy_pj: float


class MemXbarBank:
    """A bank of memory crossbars addressed linearly.

    Address ``a`` maps to crossbar ``a // rows``, row ``a % rows``.

    Args:
        total_entries: Table entries the bank stores.
        rows: Entries per crossbar (paper: 64).
        device: Memory technology for energy accounting.
    """

    def __init__(
        self,
        total_entries: int,
        rows: int = 64,
        device: DeviceParams = RERAM,
    ) -> None:
        if total_entries < 1:
            raise ConfigurationError("total_entries must be >= 1")
        if rows < 1:
            raise ConfigurationError("rows must be >= 1")
        self.total_entries = total_entries
        self.rows = rows
        self.device = device

    @property
    def num_xbars(self) -> int:
        return -(-self.total_entries // self.rows)

    def xbar_of(self, addresses: np.ndarray) -> np.ndarray:
        """Crossbar id of each address."""
        return np.asarray(addresses, dtype=np.int64) // self.rows

    def group_read_cycles(self, grouped_addresses: np.ndarray) -> np.ndarray:
        """Per-group serialised read cycles, before the device latency.

        Args:
            grouped_addresses: ``(G, K)`` array of issue groups (negative
                lanes mark nothing to read).

        Returns:
            ``(G,)`` int64 array — for each group, the largest number of
            addresses landing on one crossbar (0 for all-empty groups).
            ``read_cycles`` is ``group_read_cycles(...).sum()`` times the
            device read latency; exposing the per-group vector lets the
            batched execution engine price many wavefront slices in one
            fused pass and recover exact per-slice sums by segment.
        """
        grouped = np.atleast_2d(np.asarray(grouped_addresses, dtype=np.int64))
        valid = grouped >= 0
        # Empty lanes (negative addresses) floor-divide to negative ids,
        # which the run-start mask below already excludes — no masking
        # pass needed.
        xbars = grouped // self.rows
        # Per group, the cycle cost is the largest number of addresses
        # landing on one crossbar.  Sorting each row makes equal crossbar
        # ids adjacent; the longest run is found lane-parallel: a lane's
        # run starts at the last column where the sorted value changed
        # (empty lanes never extend a run), so the running maximum of
        # start columns turns ``col - start + 1`` into the length of the
        # run each lane sits in.
        order = np.sort(xbars, axis=1)
        col = np.arange(order.shape[1], dtype=np.int64)
        is_start = np.empty(order.shape, dtype=bool)
        is_start[:, 0] = True
        is_start[:, 1:] = (order[:, 1:] != order[:, :-1]) | (order[:, 1:] < 0)
        start = np.maximum.accumulate(np.where(is_start, col, 0), axis=1)
        longest = (col - start + 1).max(axis=1)
        return np.where(valid.any(axis=1), longest, 0)

    def read_cycles(self, grouped_addresses: np.ndarray) -> ReadStats:
        """Replay reads issued in parallel groups.

        Args:
            grouped_addresses: ``(G, K)`` array; each row is one issue group
                of ``K`` addresses presented in the same cycle (e.g. the 8
                voxel-vertex lookups of one sample point).  Negative
                addresses mark lanes with nothing to read (cache hits).

        Returns:
            :class:`ReadStats` with conflict-serialised cycles.
        """
        grouped = np.atleast_2d(np.asarray(grouped_addresses, dtype=np.int64))
        valid = grouped >= 0
        accesses = int(valid.sum())
        if accesses == 0:
            return ReadStats(cycles=0, accesses=0, conflicts=0, energy_pj=0.0)

        group_cycles = self.group_read_cycles(grouped)
        cycles = int(group_cycles.sum()) * self.device.read_latency_cycles
        ideal = int(valid.any(axis=1).sum()) * self.device.read_latency_cycles
        energy = accesses * self.device.read_energy_pj
        return ReadStats(
            cycles=cycles,
            accesses=accesses,
            conflicts=cycles - ideal,
            energy_pj=energy,
        )

    def read_cycles_segments(
        self, grouped_addresses: np.ndarray, boundaries: np.ndarray
    ) -> tuple:
        """Vectorised per-segment read statistics.

        The conflict model is additive over groups, so a batch of many
        wavefront slices can be replayed in one vectorised pass and split
        back into per-slice stats — each exactly what :meth:`read_cycles`
        returns for that slice's rows alone (the batched engine's
        bit-identity relies on this): cycle/access/conflict counts match
        integer-for-integer, and energy is the same single
        ``accesses * read_energy_pj`` multiply.

        Args:
            grouped_addresses: ``(G, K)`` issue groups of every segment,
                concatenated in order.
            boundaries: ``(S + 1,)`` strictly increasing row offsets with
                ``boundaries[0] == 0`` and ``boundaries[-1] == G``; segment
                ``s`` owns rows ``boundaries[s]:boundaries[s + 1]``.

        Returns:
            ``(cycles, accesses, conflicts, energy_pj)`` arrays of length
            ``S``.  All-empty segments are all-zero, matching
            :meth:`read_cycles`'s no-access early return.
        """
        grouped = np.atleast_2d(np.asarray(grouped_addresses, dtype=np.int64))
        bounds = np.asarray(boundaries, dtype=np.int64)
        valid = grouped >= 0
        any_valid = valid.any(axis=1)
        group_cycles = self.group_read_cycles(grouped)
        starts = bounds[:-1]
        latency = self.device.read_latency_cycles
        accesses = np.add.reduceat(valid.sum(axis=1), starts)
        cycles = np.add.reduceat(group_cycles, starts) * latency
        ideal = np.add.reduceat(any_valid.astype(np.int64), starts) * latency
        return (
            cycles,
            accesses,
            cycles - ideal,
            accesses * self.device.read_energy_pj,
        )

    def read_cycles_segmented(
        self, grouped_addresses: np.ndarray, boundaries: np.ndarray
    ) -> List[ReadStats]:
        """:meth:`read_cycles_segments` packaged as one
        :class:`ReadStats` per segment."""
        cycles, accesses, conflicts, energy = self.read_cycles_segments(
            grouped_addresses, boundaries
        )
        return [
            ReadStats(
                cycles=int(cycles[s]),
                accesses=int(accesses[s]),
                conflicts=int(conflicts[s]),
                energy_pj=float(energy[s]),
            )
            for s in range(len(cycles))
        ]
