"""Computing-in-memory substrate (Section 2.3 / 5 of the paper).

Device-level ReRAM/SRAM parameters, CIM crossbar MVM timing/energy, memory
crossbar banks with read-conflict serialisation, the hybrid address
generator (hash + bit-reorder + replication), the register-based cache
model, and storage-utilisation analysis.
"""

from repro.cim.reram import DeviceParams, RERAM, SRAM
from repro.cim.crossbar import CrossbarConfig, CIMCrossbarModel, MVMCost
from repro.cim.memxbar import MemXbarBank, ReadStats
from repro.cim.address import (
    bit_reorder_address,
    naive_concat_address,
    HybridAddressGenerator,
    LevelMapping,
)
from repro.cim.cache import (
    RegisterCache,
    TemporalVertexCache,
    window_hits,
    exact_lru_hits,
)
from repro.cim.mapping import storage_utilization, hybrid_utilization

__all__ = [
    "DeviceParams",
    "RERAM",
    "SRAM",
    "CrossbarConfig",
    "CIMCrossbarModel",
    "MVMCost",
    "MemXbarBank",
    "ReadStats",
    "bit_reorder_address",
    "naive_concat_address",
    "HybridAddressGenerator",
    "LevelMapping",
    "RegisterCache",
    "window_hits",
    "exact_lru_hits",
    "storage_utilization",
    "hybrid_utilization",
]
