"""Register-based cache model (Section 5.2.2).

Each resolution level owns a small register file caching the most recently
fetched table entries; every generated address is compared against all
cached tags in parallel (all-to-all comparators) and hits bypass the memory
crossbars.

Replaying exact LRU over the 10^7-access streams of a full render is not
tractable in Python, so the production model uses the *access-distance
window* approximation: an access hits iff the same address occurred within
the previous ``window`` accesses of that level's stream.  For the highly
sequential streams produced by ray marching this tracks LRU closely —
:func:`exact_lru_hits` exists so tests can quantify the gap on small
streams.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError


def previous_occurrence_gaps(stream: np.ndarray) -> np.ndarray:
    """Distance to each address's previous occurrence (vectorised).

    Returns an ``(N,)`` int array; entries with no previous occurrence get
    a sentinel larger than any possible window.
    """
    stream = np.asarray(stream).reshape(-1)
    n = len(stream)
    never = np.iinfo(np.int64).max
    gaps = np.full(n, never, dtype=np.int64)
    if n == 0:
        return gaps
    order = np.argsort(stream, kind="stable")
    sorted_vals = stream[order]
    same = sorted_vals[1:] == sorted_vals[:-1]
    gaps[order[1:][same]] = order[1:][same] - order[:-1][same]
    return gaps


def window_hits(stream: np.ndarray, window: int) -> np.ndarray:
    """Boolean hit mask under the access-distance window model."""
    if window <= 0:
        return np.zeros(len(np.asarray(stream).reshape(-1)), dtype=bool)
    return previous_occurrence_gaps(stream) <= window


def exact_lru_hits(stream: np.ndarray, capacity: int) -> np.ndarray:
    """Boolean hit mask of a true LRU cache (reference implementation)."""
    if capacity <= 0:
        return np.zeros(len(np.asarray(stream).reshape(-1)), dtype=bool)
    cache: "OrderedDict[int, None]" = OrderedDict()
    hits = np.zeros(len(stream), dtype=bool)
    for i, addr in enumerate(np.asarray(stream).reshape(-1).tolist()):
        if addr in cache:
            hits[i] = True
            cache.move_to_end(addr)
        else:
            cache[addr] = None
            if len(cache) > capacity:
                cache.popitem(last=False)
    return hits


@dataclass
class CacheStats:
    """Aggregate hit/miss counters of one level's register cache."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class TemporalVertexCache:
    """Cross-frame vertex reuse buffer for video sequences.

    The temporal sibling of :class:`RegisterCache`: where the register
    cache filters repeats *within* a wavefront's recent window, this buffer
    holds the embedding-table entries the *previous frame* fetched, per
    resolution level.  Consecutive frames of a camera path march largely
    overlapping world-space voxels, so a lookup that finds its address in
    the previous frame's working set is served from the buffer and never
    touches the memory crossbars — the same bypass pricing the register
    cache uses.

    The double-buffered protocol matches frame pipelining: lookups during
    frame ``k`` compare against the *committed* set (frame ``k-1``'s
    addresses) while frame ``k``'s own addresses accumulate in a pending
    set; :meth:`commit_frame` swaps them at the frame boundary, recording
    the committer's ``tag`` as the resident set's identity.  The tag is
    folded into the memoised hit-mask keys, so a mask computed against
    one resident set is never served for another — two runs over one
    trace share masks only where their commit histories coincide (the
    warm-replay win), not where a serving schedule skipped a frame the
    alone run executed.

    Args:
        capacity_per_level: Entries the buffer retains per level between
            frames (``None`` = unbounded, an idealised buffer).  When the
            working set overflows, the lowest addresses are kept — a
            deterministic, if arbitrary, replacement policy.
    """

    def __init__(self, capacity_per_level: Optional[int] = None) -> None:
        if capacity_per_level is not None and capacity_per_level <= 0:
            raise ConfigurationError("capacity_per_level must be positive")
        self.capacity_per_level = capacity_per_level
        self._resident: Dict[int, np.ndarray] = {}
        self._resident_tag = None
        # Identity of the resident *content*, folded into memoised hit-mask
        # keys: the committing frame's tag and the bound it was trimmed to,
        # extended by every later trim.  Two caches (or two runs over one
        # shared trace memo) share a mask only when these histories — and
        # therefore the resident sets — coincide; a mere per-instance
        # counter could not guarantee that across serve() runs.
        self._resident_key: tuple = ()
        self._pending: Dict[int, list] = {}
        self.stats: Dict[int, CacheStats] = {}
        #: Optional telemetry hook called as ``observer(level, accesses,
        #: hits)`` after each :meth:`lookup` updates its stats.  Purely
        #: observational — it receives the counts the cache computed
        #: anyway and must never mutate cache state (the serving layer
        #: installs per-tenant hooks when a recorder is enabled).
        self.observer = None

    def resize(self, capacity_per_level: Optional[int]) -> None:
        """Change the per-level bound in place (elastic re-partitioning).

        Shrinking trims every resident set to the new bound with the same
        keep-the-lowest-addresses policy :meth:`commit_frame` uses, so a
        resident set is always a prefix of what a larger bound would hold
        (losing capacity can only lose hits, never invent them); growing
        keeps resident sets untouched.  A resize that truncates resident
        content extends the resident-content key, so memoised hit masks
        computed against the pre-trim set are never served afterwards —
        even if the same nominal capacity recurs, and even from another
        cache instance sharing the trace memo.
        """
        if capacity_per_level is not None and capacity_per_level <= 0:
            raise ConfigurationError("capacity_per_level must be positive")
        if capacity_per_level == self.capacity_per_level:
            return
        self.capacity_per_level = capacity_per_level
        if capacity_per_level is None:
            return
        trimmed = False
        for level, resident in self._resident.items():
            if resident.size > capacity_per_level:
                self._resident[level] = resident[:capacity_per_level]
                trimmed = True
        if trimmed:
            self._resident_key += (("trim", capacity_per_level),)

    def export_state(self) -> Dict:
        """Snapshot the committed resident state for migration hand-off.

        Returns a self-contained dict (resident arrays are copied) that
        :meth:`adopt` can seed a fresh cache from — the mechanism behind
        tenant migration between cluster shards: the destination shard's
        partition starts with the source's resident working set instead
        of cold, so the first frame after the migration keeps its
        temporal hits.  Pending (uncommitted) state is deliberately not
        exported: hand-off happens at a frame boundary, where the commit
        already ran.
        """
        return {
            "resident": {
                level: resident.copy()
                for level, resident in self._resident.items()
            },
            "resident_tag": self._resident_tag,
            "resident_key": self._resident_key,
        }

    def adopt(self, state: Dict) -> None:
        """Seed this cache from another cache's :meth:`export_state`.

        The resident-content key travels with the arrays, so memoised hit
        masks computed against the source's resident set (they live on
        the shared sequence trace, not on the cache) stay valid on the
        adopting side.  If this cache's bound is tighter than the
        exported set, the keep-the-lowest-addresses trim applies and the
        key is extended — exactly the :meth:`resize` semantics, so a
        hand-off can lose hits but never invent them.
        """
        self._resident = {
            level: np.asarray(resident)
            for level, resident in state["resident"].items()
        }
        self._resident_tag = state["resident_tag"]
        self._resident_key = tuple(state["resident_key"])
        self._pending = {}
        if self.capacity_per_level is not None:
            trimmed = False
            for level, resident in self._resident.items():
                if resident.size > self.capacity_per_level:
                    self._resident[level] = resident[: self.capacity_per_level]
                    trimmed = True
            if trimmed:
                self._resident_key += (("trim", self.capacity_per_level),)

    @property
    def resident_token(self) -> tuple:
        """Identity of the resident *content* — the commit/trim history key
        memoised hit masks are scoped by.  Two moments with equal tokens
        (for one logical tenant and trace) hold equal resident sets, so a
        batched pricing plan computed against one can be replayed against
        the other; any commit or trimming resize changes the token, which
        is how stale plans are detected (see
        :func:`repro.exec.batch.build_frame_plans`)."""
        return self._resident_key

    def lookup(
        self, stream: np.ndarray, level: int, memo=None, stream_key=()
    ) -> np.ndarray:
        """Hit mask of ``stream`` against the previous frame's working set.

        Args:
            stream: Flat logical address stream of one wavefront.
            memo: Optional ``(key, compute)`` hook (a sequence-trace memo
                scoped to this frame and wavefront) so warm replays of one
                sequence skip the membership test.
            stream_key: Identity of the address mapping that produced
                ``stream`` (and therefore the resident set) — must be part
                of the memo key, or two engines with different mappings
                simulating one sequence would share masks.
        """
        stream = np.asarray(stream).reshape(-1)
        resident = self._resident.get(level)
        if resident is None or resident.size == 0:
            hits = np.zeros(len(stream), dtype=bool)
        else:
            compute = lambda: np.isin(stream, resident)  # noqa: E731
            if memo is not None:
                hits = memo(
                    ("temporal", level, self._resident_key)
                    + tuple(stream_key),
                    compute,
                )
            else:
                hits = compute()
        accesses = int(len(hits))
        hit_count = int(hits.sum())
        st = self.stats.setdefault(level, CacheStats())
        st.accesses += accesses
        st.hits += hit_count
        if self.observer is not None:
            self.observer(level, accesses, hit_count)
        return hits

    def record(
        self, stream: np.ndarray, level: int, assume_unique: bool = False
    ) -> None:
        """Accumulate this frame's addresses for the next frame's lookups.

        Args:
            stream: Addresses the frame fetched at ``level``.
            assume_unique: The caller already passed the chunk through
                ``np.unique`` (so it is deduplicated *and* sorted
                ascending) — the batched engine records each level's
                whole-frame memoised unique stream this way.
                :meth:`commit_frame` produces the identical committed set
                either way — chunk granularity and ordering never matter —
                but a level whose pending set is exactly one such chunk
                commits without re-sorting.
        """
        chunk = np.asarray(stream).reshape(-1)
        if not assume_unique:
            chunk = np.unique(chunk)
        self._pending.setdefault(level, []).append((chunk, assume_unique))

    def commit_frame(self, tag=None) -> None:
        """Frame boundary: the pending working set becomes the lookup set.

        Args:
            tag: Hashable identity of the committed set (e.g. the frame
                index that produced it); together with the bound the set
                was trimmed to it becomes part of memoised hit-mask keys,
                so masks are never reused across different resident sets.
        """
        self._resident_tag = tag
        self._resident_key = (("commit", tag, self.capacity_per_level),)
        resident: Dict[int, np.ndarray] = {}
        for level, entries in self._pending.items():
            if not entries:
                merged = np.empty(0)
            elif len(entries) == 1 and entries[0][1]:
                # A single already-sorted-unique chunk (the batched
                # engine's whole-frame record) *is* the committed set —
                # np.unique would return it unchanged.
                merged = entries[0][0]
            else:
                merged = np.unique(np.concatenate([c for c, _ in entries]))
            if (
                self.capacity_per_level is not None
                and merged.size > self.capacity_per_level
            ):
                merged = merged[: self.capacity_per_level]
            resident[level] = merged
        self._resident = resident
        self._pending = {}

    def total_stats(self) -> CacheStats:
        total = CacheStats()
        for st in self.stats.values():
            total.accesses += st.accesses
            total.hits += st.hits
        return total


class RegisterCache:
    """Per-level register cache with window-model replay.

    Args:
        capacity: Cached entries per level's register file.  The paper's
            design-space exploration (Figure 22) sweeps 2-16; 8 is the
            chosen design point.  Comparator energy scales with capacity.
        window_scale: Window length per capacity entry; the register file
            holds ``capacity`` *unique* entries, which under the access-
            distance approximation corresponds to a somewhat longer raw
            window when streams repeat (default 1 = conservative).
    """

    def __init__(self, capacity: int = 8, window_scale: float = 1.0) -> None:
        if capacity < 0:
            raise ConfigurationError("capacity must be >= 0")
        if window_scale <= 0:
            raise ConfigurationError("window_scale must be > 0")
        self.capacity = capacity
        self.window_scale = window_scale
        self.stats: Dict[int, CacheStats] = {}

    @property
    def window(self) -> int:
        return int(round(self.capacity * self.window_scale))

    def replay(
        self,
        stream: np.ndarray,
        level: int = 0,
        gaps: np.ndarray = None,
    ) -> np.ndarray:
        """Replay an address stream; returns the hit mask and logs stats.

        Args:
            stream: Flat address stream.
            gaps: Optional precomputed (and possibly clipped) access-
                distance array for ``stream`` — a pure property of the
                stream that trace replay memoises across simulations.
                Clipping is safe as long as the clip bound exceeds the
                window, which the caller guarantees via the dtype's range.
        """
        if self.window <= 0:
            hits = np.zeros(len(np.asarray(stream).reshape(-1)), dtype=bool)
        elif gaps is not None and self.window < np.iinfo(gaps.dtype).max:
            hits = gaps <= self.window
        else:
            hits = window_hits(stream, self.window)
        st = self.stats.setdefault(level, CacheStats())
        st.accesses += int(len(hits))
        st.hits += int(hits.sum())
        return hits

    def total_stats(self) -> CacheStats:
        total = CacheStats()
        for st in self.stats.values():
            total.accesses += st.accesses
            total.hits += st.hits
        return total
