"""Device-level parameters for ReRAM and SRAM CIM arrays.

Representative numbers follow the NeuroSim-style modelling the paper uses
(64x64 crossbars, 5-bit ADCs, 28 nm digital logic at 1 GHz).  The absolute
values matter less than their ratios — SRAM reads are faster but the cell
is larger; ReRAM gives denser storage and cheaper in-situ MVMs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceParams:
    """Per-device energy/latency characteristics of a CIM technology.

    Attributes:
        name: Technology label.
        read_latency_cycles: Crossbar row activation latency at 1 GHz.
        read_energy_pj: Energy of activating one crossbar row (all columns).
        mvm_energy_pj: Energy of one full-array analog MVM activation
            (one input-bit slice), including DAC but not ADC.
        adc_energy_pj: Energy per ADC conversion (one column readout).
        write_energy_pj: Energy per cell write (programming).
        cell_bits: Bits stored per device cell.
        density_mm2_per_mb: Array area per MB of storage.
    """

    name: str
    read_latency_cycles: int
    read_energy_pj: float
    mvm_energy_pj: float
    adc_energy_pj: float
    write_energy_pj: float
    cell_bits: int
    density_mm2_per_mb: float

    def __post_init__(self) -> None:
        if self.read_latency_cycles < 1:
            raise ConfigurationError("read_latency_cycles must be >= 1")
        if self.cell_bits < 1:
            raise ConfigurationError("cell_bits must be >= 1")


RERAM = DeviceParams(
    name="ReRAM",
    read_latency_cycles=1,
    read_energy_pj=1.1,
    mvm_energy_pj=2.4,
    adc_energy_pj=1.6,
    write_energy_pj=9.0,
    cell_bits=2,
    density_mm2_per_mb=0.079,  # 5.03 mm^2 / 64 MB (Table 2 server Mem Xbars)
)

SRAM = DeviceParams(
    name="SRAM",
    read_latency_cycles=1,
    read_energy_pj=0.6,
    mvm_energy_pj=3.4,
    adc_energy_pj=1.6,
    write_energy_pj=0.7,
    cell_bits=1,
    density_mm2_per_mb=0.9,
)
