"""MLP engine simulation (Section 5.3).

The density and color sub-engines execute their networks layer by layer on
CIM crossbar PEs; layers of one point are serial (data dependence) but the
sub-engine pipelines across points, and multiple sub-engines process
disjoint points in parallel.  Under the decoupling optimisation only
anchor points enter the color sub-engine — non-anchor points bypass it
entirely (the skippable pathway of Figure 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.arch.config import ArchConfig
from repro.cim.crossbar import CIMCrossbarModel, CrossbarConfig
from repro.nerf.mlp import MLPConfig


@dataclass
class MLPReport:
    """Aggregate MLP-engine outcome.

    Attributes:
        cycles: Total cycles (max of the two sub-engine pipelines).
        density_cycles / color_cycles: Per-sub-engine busy cycles.
        density_points / color_points: Points processed.
        energy_pj: CIM MVM + ADC energy.
    """

    cycles: int = 0
    density_cycles: int = 0
    color_cycles: int = 0
    density_points: int = 0
    color_points: int = 0
    energy_pj: float = 0.0

    def merge(self, other: "MLPReport") -> None:
        self.cycles += other.cycles
        self.density_cycles += other.density_cycles
        self.color_cycles += other.color_cycles
        self.density_points += other.density_points
        self.color_points += other.color_points
        self.energy_pj += other.energy_pj


class MLPEngine:
    """Analytic throughput/energy model of both MLP sub-engines."""

    def __init__(
        self,
        config: ArchConfig,
        density_mlp: MLPConfig,
        color_mlp: MLPConfig,
    ) -> None:
        self.config = config
        xbar_cfg = CrossbarConfig(
            rows=config.crossbar.rows,
            cols=config.crossbar.cols,
            adc_bits=config.crossbar.adc_bits,
            input_bits=config.crossbar.input_bits,
            weight_bits=config.crossbar.weight_bits,
            device=config.mlp_device,
        )
        self.model = CIMCrossbarModel(xbar_cfg)
        self.density_mlp = density_mlp
        self.color_mlp = color_mlp
        self._density_point = self._network_cost(density_mlp)
        self._color_point = self._network_cost(color_mlp)

    def _network_cost(self, mlp: MLPConfig):
        """(initiation interval cycles, energy_pj) per point.

        Layers of one point are data-dependent but the sub-engine pipelines
        points through its layer stages, so steady-state throughput is set
        by the slowest layer's MVM (the initiation interval), not the sum.
        """
        interval = 0
        energy = 0.0
        for fan_in, fan_out in mlp.layer_dims:
            cost = self.model.mvm_cost(
                fan_in, fan_out, parallel_arrays=self.config.pes_per_engine
            )
            interval = max(interval, cost.cycles)
            energy += cost.energy_pj
        return interval, energy

    @property
    def density_cycles_per_point(self) -> int:
        return self._density_point[0]

    @property
    def color_cycles_per_point(self) -> int:
        return self._color_point[0]

    def process(self, density_points: int, color_points: int) -> MLPReport:
        """Cost of a batch with the given density/color point counts.

        The two sub-engine groups run concurrently, so the batch's latency
        is the slower pipeline; both contribute energy.
        """
        d_cycles_total = math.ceil(
            density_points / self.config.density_engines
        ) * self._density_point[0]
        c_cycles_total = math.ceil(
            color_points / self.config.color_engines
        ) * self._color_point[0]
        energy = (
            density_points * self._density_point[1]
            + color_points * self._color_point[1]
        )
        return MLPReport(
            cycles=max(d_cycles_total, c_cycles_total),
            density_cycles=d_cycles_total,
            color_cycles=c_cycles_total,
            density_points=density_points,
            color_points=color_points,
            energy_pj=energy,
        )
