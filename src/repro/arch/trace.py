"""Trace generation and locality profiling.

The simulator replays the exact voxel-vertex streams the renderer touches.
:func:`encoding_corner_stream` regenerates, for a batch of rays with given
budgets, the per-level voxel corner coordinates in render order.
:func:`repetition_profile` measures the inter-ray / intra-ray voxel
repetition rates of Figure 15, and :func:`hash_address_trace` produces the
Figure 4 address-scatter data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nerf.hashgrid import HashGridConfig, HashGridEncoder, hash_coords
from repro.nerf.rays import sample_along_rays
from repro.scenes.cameras import Camera


@dataclass
class EncodingBatch:
    """One wavefront of sample points headed into the encoding engine.

    Attributes:
        corners: Per level: ``(P, 8, 3)`` voxel-vertex coordinates of the
            batch's sample points, in render order.
        point_ray: ``(P,)`` ray index of each point (for locality studies).
        num_points: Points in the batch.
    """

    corners: Dict[int, np.ndarray]
    point_ray: np.ndarray
    num_points: int


def _points_for_rays(
    camera: Camera, ray_ids: np.ndarray, budget: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample positions for rays sharing a budget -> ``(points, hit)``."""
    origins, directions = camera.rays_for_pixels(ray_ids)
    points, _, hit = sample_along_rays(origins, directions, budget)
    return points, hit


def encoding_corner_stream(
    camera: Camera,
    budgets: np.ndarray,
    grid: HashGridConfig,
    wavefront_rays: int = 64,
    encoder: HashGridEncoder = None,
) -> Iterator[EncodingBatch]:
    """Yield encoding-engine wavefronts for an image render.

    Rays are grouped by sample budget (as the renderer executes them) and
    split into wavefronts of ``wavefront_rays``; rays that miss the scene
    produce no lookups.
    """
    encoder = encoder or HashGridEncoder(grid)
    budgets = np.asarray(budgets)
    for budget in np.unique(budgets):
        if budget <= 0:
            continue
        ray_ids = np.nonzero(budgets == budget)[0]
        for start in range(0, len(ray_ids), wavefront_rays):
            ids = ray_ids[start : start + wavefront_rays]
            points, hit = _points_for_rays(camera, ids, int(budget))
            if not hit.any():
                continue
            points = points[hit]
            ray_of_point = np.repeat(ids[hit], int(budget))
            flat = points.reshape(-1, 3)
            corners = {}
            for level in range(grid.num_levels):
                c, _ = encoder.voxel_vertices(flat, level)
                corners[level] = c
            yield EncodingBatch(
                corners=corners,
                point_ray=ray_of_point,
                num_points=flat.shape[0],
            )


# ----------------------------------------------------------------------
# Locality profiling (Figures 4, 8, 15)
# ----------------------------------------------------------------------
def voxel_ids(corners: np.ndarray, resolution: int) -> np.ndarray:
    """Scalar voxel id of each point from its corner-0 coordinates."""
    base = corners[:, 0, :]
    stride = resolution + 1
    return (base[:, 2] * stride + base[:, 1]) * stride + base[:, 0]


def repetition_profile(
    camera: Camera,
    grid: HashGridConfig,
    num_samples: int,
    max_ray_pairs: int = 256,
) -> Tuple[List[float], List[int]]:
    """Measure inter-ray and intra-ray voxel locality (Figure 15).

    Returns:
        ``(inter_ray_rates, intra_ray_peaks)`` per level: the average
        fraction of a ray's sample voxels that also appear in the
        neighbouring ray's voxel set, and the maximum number of one ray's
        samples sharing a voxel.
    """
    encoder = HashGridEncoder(grid)
    resolutions = grid.level_resolutions
    width = camera.width
    origins, directions = camera.pixel_rays()
    t_near_hits = sample_along_rays(origins, directions, 1)[2]
    hit_ids = np.nonzero(t_near_hits)[0]
    # Neighbouring-pixel pairs that both hit the scene.
    pairs = [(r, r + 1) for r in hit_ids if (r + 1) % width and t_near_hits[min(r + 1, len(t_near_hits) - 1)]]
    pairs = pairs[:max_ray_pairs]

    inter = [[] for _ in range(grid.num_levels)]
    intra = [0] * grid.num_levels
    for left, right in pairs:
        ids = np.array([left, right])
        points, hit = _points_for_rays(camera, ids, num_samples)
        if not hit.all():
            continue
        for level in range(grid.num_levels):
            res = int(resolutions[level])
            c_l, _ = encoder.voxel_vertices(points[0], level)
            c_r, _ = encoder.voxel_vertices(points[1], level)
            v_l = voxel_ids(c_l, res)
            v_r = voxel_ids(c_r, res)
            shared = np.isin(v_l, v_r).mean()
            inter[level].append(float(shared))
            _, counts = np.unique(v_l, return_counts=True)
            intra[level] = max(intra[level], int(counts.max()))
    rates = [float(np.mean(x)) if x else 0.0 for x in inter]
    return rates, intra


def hash_address_trace(
    camera: Camera,
    grid: HashGridConfig,
    num_samples: int,
    num_points: int = 1500,
    level: int = None,
) -> np.ndarray:
    """Hash-table addresses of consecutive sample points (Figure 4).

    Returns the ``(num_points,)`` table index of each consecutive sample's
    first voxel vertex at the finest (default) level — the scatter the
    paper plots to show poor spatial locality of hashed accesses.
    """
    encoder = HashGridEncoder(grid)
    if level is None:
        level = grid.num_levels - 1
    origins, directions = camera.pixel_rays()
    points, _, hit = sample_along_rays(origins, directions, num_samples)
    flat = points[hit].reshape(-1, 3)[:num_points]
    corners, _ = encoder.voxel_vertices(flat, level)
    return hash_coords(corners[:, 0, :], grid.table_size)
