"""Trace replay and locality profiling.

The simulator replays the exact voxel-vertex streams the renderer touches.
:func:`encoding_corner_stream` yields, for a frame's
:class:`~repro.exec.frame_trace.FrameTrace` (or, compatibly, a
``(camera, budgets)`` pair from which one is synthesised), the per-level
voxel corner coordinates in render order.  :func:`repetition_profile`
measures the inter-ray / intra-ray voxel repetition rates of Figure 15,
and :func:`hash_address_trace` produces the Figure 4 address-scatter data;
both read sample positions from a renderer-emitted trace when one is
supplied instead of re-tracing rays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.exec.frame_trace import FrameTrace
from repro.nerf.hashgrid import HashGridConfig, HashGridEncoder, hash_coords
from repro.nerf.rays import sample_along_rays
from repro.scenes.cameras import Camera


@dataclass
class EncodingBatch:
    """One wavefront of sample points headed into the encoding engine.

    Attributes:
        corners: Per level: ``(P, 8, 3)`` voxel-vertex coordinates of the
            batch's sample points, in render order.
        point_ray: ``(P,)`` ray index of each point (for locality studies).
        num_points: Points in the batch.
        memo: Optional memoisation hook ``(key, compute) -> array`` for
            stream-derived arrays (e.g. register-cache access distances).
            Trace replay binds it to the originating
            :class:`~repro.exec.frame_trace.FrameTrace`, so repeated
            simulations of one frame skip re-deriving identical streams.
    """

    corners: Dict[int, np.ndarray]
    point_ray: np.ndarray
    num_points: int
    memo: Optional[Callable[[Tuple, Callable[[], np.ndarray]], np.ndarray]] = None


def _points_for_rays(
    camera: Camera, ray_ids: np.ndarray, budget: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample positions for rays sharing a budget -> ``(points, hit)``."""
    origins, directions = camera.rays_for_pixels(ray_ids)
    points, _, hit = sample_along_rays(origins, directions, budget)
    return points, hit


def encoding_corner_stream(
    camera: Camera,
    budgets: np.ndarray,
    grid: HashGridConfig,
    wavefront_rays: int = 64,
    encoder: HashGridEncoder = None,
    trace: Optional[FrameTrace] = None,
) -> Iterator[EncodingBatch]:
    """Yield encoding-engine wavefronts for an image render.

    Rays are grouped by sample budget (as the renderer executes them) and
    split into wavefronts of ``wavefront_rays``; rays that miss the scene
    produce no lookups.  When ``trace`` is given, its recorded sample
    points are replayed (``camera``/``budgets`` are ignored and may be
    ``None``); otherwise a trace is synthesised from the budget map.  The
    ``encoder`` argument is kept for API compatibility — corner
    coordinates depend only on ``grid``'s level resolutions.
    """
    del encoder  # corners derive from the grid's resolutions alone
    if trace is None:
        trace = FrameTrace.from_budgets(camera, budgets)
    resolutions = grid.level_resolutions
    for sl in trace.split(wavefront_rays):
        if sl.num_points == 0:
            continue
        yield EncodingBatch(
            corners={
                level: sl.corners(int(resolutions[level]))
                for level in range(grid.num_levels)
            },
            point_ray=sl.point_ray(),
            num_points=sl.num_points,
        )


# ----------------------------------------------------------------------
# Locality profiling (Figures 4, 8, 15)
# ----------------------------------------------------------------------
def voxel_ids(corners: np.ndarray, resolution: int) -> np.ndarray:
    """Scalar voxel id of each point from its corner-0 coordinates."""
    base = corners[:, 0, :]
    stride = resolution + 1
    return (base[:, 2] * stride + base[:, 1]) * stride + base[:, 0]


def _neighbour_pairs(hit: np.ndarray, width: int) -> List[Tuple[int, int]]:
    """Horizontally adjacent pixel pairs ``(r, r+1)`` that both hit the
    scene.  The right neighbour must exist (no wrap past the last pixel)
    and lie in the same raster row — the seed's ``min(r + 1, n - 1)``
    clamp could pair the final hit pixel with itself."""
    hit = np.asarray(hit)
    n = len(hit)
    return [
        (int(r), int(r) + 1)
        for r in np.nonzero(hit)[0]
        if (r + 1) % width != 0 and r + 1 < n and hit[r + 1]
    ]


def repetition_profile(
    camera: Camera,
    grid: HashGridConfig,
    num_samples: int,
    max_ray_pairs: int = 256,
    trace: Optional[FrameTrace] = None,
) -> Tuple[List[float], List[int]]:
    """Measure inter-ray and intra-ray voxel locality (Figure 15).

    When ``trace`` holds a uniform full-budget render at ``num_samples``
    (e.g. a baseline render's trace), ray geometry is read from it instead
    of being re-traced.

    Returns:
        ``(inter_ray_rates, intra_ray_peaks)`` per level: the average
        fraction of a ray's sample voxels that also appear in the
        neighbouring ray's voxel set, and the maximum number of one ray's
        samples sharing a voxel.
    """
    encoder = HashGridEncoder(grid)
    resolutions = grid.level_resolutions
    width = camera.width
    if trace is not None and not (
        trace.full_budget == num_samples
        and trace.num_pixels == camera.width * camera.height
        and trace.is_uniform
    ):
        trace = None  # incompatible trace: fall back to re-tracing rays
    if trace is not None:
        t_near_hits = trace.hit_mask()
    else:
        origins, directions = camera.pixel_rays()
        t_near_hits = sample_along_rays(origins, directions, 1)[2]
    pairs = _neighbour_pairs(t_near_hits, width)[:max_ray_pairs]

    inter = [[] for _ in range(grid.num_levels)]
    intra = [0] * grid.num_levels
    for left, right in pairs:
        ids = np.array([left, right])
        if trace is not None:
            points, hit = trace.gather_points(ids)
        else:
            points, hit = _points_for_rays(camera, ids, num_samples)
        if not hit.all():
            continue
        for level in range(grid.num_levels):
            res = int(resolutions[level])
            c_l, _ = encoder.voxel_vertices(points[0], level)
            c_r, _ = encoder.voxel_vertices(points[1], level)
            v_l = voxel_ids(c_l, res)
            v_r = voxel_ids(c_r, res)
            shared = np.isin(v_l, v_r).mean()
            inter[level].append(float(shared))
            _, counts = np.unique(v_l, return_counts=True)
            intra[level] = max(intra[level], int(counts.max()))
    rates = [float(np.mean(x)) if x else 0.0 for x in inter]
    return rates, intra


def hash_address_trace(
    camera: Camera,
    grid: HashGridConfig,
    num_samples: int,
    num_points: int = 1500,
    level: int = None,
    trace: Optional[FrameTrace] = None,
) -> np.ndarray:
    """Hash-table addresses of consecutive sample points (Figure 4).

    Returns the ``(num_points,)`` table index of each consecutive sample's
    first voxel vertex at the finest (default) level — the scatter the
    paper plots to show poor spatial locality of hashed accesses.  A
    compatible ``trace`` supplies the sample stream without re-tracing.
    """
    if level is None:
        level = grid.num_levels - 1
    res = int(grid.level_resolutions[level])
    if trace is not None and not (
        trace.full_budget == num_samples
        and trace.num_pixels == camera.width * camera.height
        and trace.is_uniform
    ):
        trace = None
    if trace is not None:
        flat = trace.active_points(limit=num_points)
    else:
        origins, directions = camera.pixel_rays()
        points, _, hit = sample_along_rays(origins, directions, num_samples)
        flat = points[hit].reshape(-1, 3)[:num_points]
    base = np.clip(np.floor(flat * res).astype(np.int64), 0, res - 1)
    return hash_coords(base, grid.table_size)
