"""Encoding engine simulation (Section 5.2, Figure 10 left).

Per wavefront the engine (a) generates addresses with the hybrid address
generator, (b) filters them through the per-level register caches, (c)
issues the misses to the memory crossbars where same-crossbar accesses
serialise, and (d) fuses the fetched embeddings by trilinear interpolation.
Stages are pipelined, so a wavefront's cycle cost is the maximum of the
stage costs; levels own independent banks and caches and proceed in
parallel, contending only for address-generation bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.arch.config import ArchConfig
from repro.arch.trace import EncodingBatch
from repro.cim.address import HybridAddressGenerator
from repro.cim.cache import RegisterCache, previous_occurrence_gaps
from repro.cim.memxbar import MemXbarBank
from repro.nerf.hashgrid import HashGridConfig


@dataclass
class EncodingReport:
    """Aggregate outcome of the encoding engine over a render.

    Attributes:
        cycles: Total pipelined cycles.
        read_cycles: Memory-crossbar busy cycles (the read stage alone —
            the quantity the register cache relieves).
        lookups: Vertex lookups issued (before cache filtering).
        cache_hits: Lookups served by the register caches.
        temporal_hits: Lookups served by the cross-frame temporal vertex
            cache (sequence simulation only; 0 for single frames).
        xbar_accesses: Memory-crossbar row reads.
        conflict_cycles: Cycles lost to same-crossbar serialisation.
        xbar_energy_pj: Dynamic read energy of the memory crossbars.
    """

    cycles: int = 0
    read_cycles: int = 0
    lookups: int = 0
    cache_hits: int = 0
    temporal_hits: int = 0
    xbar_accesses: int = 0
    conflict_cycles: int = 0
    xbar_energy_pj: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.lookups if self.lookups else 0.0

    @property
    def temporal_hit_rate(self) -> float:
        return self.temporal_hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "EncodingReport") -> None:
        self.cycles += other.cycles
        self.read_cycles += other.read_cycles
        self.lookups += other.lookups
        self.cache_hits += other.cache_hits
        self.temporal_hits += other.temporal_hits
        self.xbar_accesses += other.xbar_accesses
        self.conflict_cycles += other.conflict_cycles
        self.xbar_energy_pj += other.xbar_energy_pj


class EncodingEngine:
    """Trace-driven model of the encoding engine."""

    def __init__(self, config: ArchConfig, grid: HashGridConfig) -> None:
        self.config = config
        self.grid = grid
        self.generator = HybridAddressGenerator(grid, mode=config.mapping_mode)
        self.caches: Dict[int, RegisterCache] = {
            level: RegisterCache(config.cache_entries)
            for level in range(grid.num_levels)
        }
        self.banks: Dict[int, MemXbarBank] = {
            level: MemXbarBank(
                self.generator.level_storage_entries(level),
                rows=config.crossbar.rows,
                device=config.memory_device,
            )
            for level in range(grid.num_levels)
        }
        self._request_counter = 0
        # Identifies this engine's address mapping in trace memo keys: two
        # engines sharing grid + mode generate identical address streams.
        self._stream_key = (
            grid.num_levels,
            grid.table_size,
            grid.base_resolution,
            grid.max_resolution,
            config.mapping_mode,
        )

    @property
    def stream_key(self) -> tuple:
        """Identity of this engine's address mapping, for trace memo keys."""
        return self._stream_key

    def compact_dtype(self, level: int):
        """Narrowest integer dtype that holds every address of ``level``
        (what memoised address/miss streams are stored as)."""
        return (
            np.int32
            if self.generator.level_storage_entries(level) < 2**31
            else np.int64
        )

    def skip_requests(self, num_points: int) -> None:
        """Advance the request counter past ``num_points`` sample points
        priced outside :meth:`process_batch` (the batched execution plan).

        Request ids only select which replicated table copy a dense-level
        lookup addresses, and they restart at zero per execution, so a
        request's id always equals its global point index within the
        frame.  The batched planner relies on that to derive striped
        addresses without the engine; this keeps the counter in sync so a
        later stepped resume of the same execution stripes identically.
        """
        self._request_counter += num_points

    def process_batch(
        self, batch: EncodingBatch, temporal=None
    ) -> EncodingReport:
        """Simulate one wavefront; returns its cycle/energy report.

        Args:
            batch: The wavefront's corner streams.
            temporal: Optional
                :class:`~repro.cim.cache.TemporalVertexCache` holding the
                previous frame's working set (sequence simulation).  Hits
                bypass the memory crossbars like register-cache hits; the
                frame's own addresses are recorded for the next frame.
        """
        report = EncodingReport()
        p = batch.num_points
        request_ids = self._request_counter + np.arange(p)
        self._request_counter += p

        def memoised(key, compute):
            return batch.memo(key, compute) if batch.memo is not None else compute()

        total_addresses = p * 8 * self.grid.num_levels
        addr_gen_cycles = math.ceil(total_addresses / self.config.address_units)

        level_read_cycles: List[int] = []
        for level, corners in batch.corners.items():
            # The register cache tags *logical* entries; replication only
            # affects which physical crossbar serves a miss.  Address
            # generation is a pure function of the corner stream, so
            # replayed traces memoise it alongside the gap arrays (in the
            # narrowest dtype the level's address space permits).
            compact = self.compact_dtype(level)
            logical = memoised(
                ("addr", level) + self._stream_key,
                lambda: self.generator.addresses(corners, level, None).astype(
                    compact
                ),
            )
            stream = logical.reshape(-1)
            # Access distances are a pure property of the stream; replayed
            # traces memoise them so repeated simulations of one frame
            # (and cache-size sweeps) skip the sort-based recomputation.
            gaps = None
            if batch.memo is not None and self.caches[level].window > 0:
                # uint16-clipped: replay falls back to a full recomputation
                # for windows beyond the clip bound (no swept design is).
                gaps = memoised(
                    ("gaps", level) + self._stream_key,
                    lambda: np.minimum(
                        previous_occurrence_gaps(stream),
                        np.iinfo(np.uint16).max,
                    ).astype(np.uint16),
                )
            hits = self.caches[level].replay(stream, level, gaps=gaps)
            report.lookups += logical.size
            report.cache_hits += int(hits.sum())
            served = hits
            if temporal is not None:
                t_hits = temporal.lookup(
                    stream, level, memo=batch.memo,
                    stream_key=self._stream_key,
                ) & ~hits
                temporal.record(stream, level)
                report.temporal_hits += int(t_hits.sum())
                served = hits | t_hits
            # Physical addresses differ from logical ones only on levels
            # whose replicated copies stripe by request id.  Request ids
            # restart per simulation and slices are visited in trace
            # order, so the striped stream is as replay-stable as the
            # logical one and memoises under the same scope.
            if self.generator.striped(level):
                physical = memoised(
                    ("addr_striped", level) + self._stream_key,
                    lambda: self.generator.addresses(
                        corners, level, request_ids
                    ).astype(compact),
                )
            else:
                physical = logical
            misses = np.where(served, -1, physical.reshape(-1)).reshape(p, 8)
            stats = self.banks[level].read_cycles(misses)
            report.xbar_accesses += stats.accesses
            report.conflict_cycles += stats.conflicts
            report.xbar_energy_pj += stats.energy_pj
            level_read_cycles.append(stats.cycles)

        # Hybrid mapping gives every level a dedicated crossbar bank, so
        # levels read in parallel.  The original hash layout interleaves
        # tables across shared crossbars ("each row containing entries from
        # different tables", Section 3 Challenge 3), forcing the levels'
        # reads to serialise.
        if level_read_cycles:
            if self.config.mapping_mode == "hybrid":
                read_cycles = max(level_read_cycles)
            else:
                read_cycles = sum(level_read_cycles)
        else:
            read_cycles = 0
        # Each fusion lane completes one trilinear interpolation (8 vertex
        # feature vectors -> 1 feature) per cycle.
        interpolations = p * self.grid.num_levels
        fusion_cycles = math.ceil(interpolations / self.config.fusion_lanes)
        report.read_cycles = read_cycles
        report.cycles = max(addr_gen_cycles, read_cycles, fusion_cycles)
        return report
