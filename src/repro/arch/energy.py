"""Area/power bookkeeping from Table 2 of the paper.

The paper synthesises the digital engines in TSMC 28 nm and models CIM
arrays with NeuroSim; we embed the published per-component area and power
figures and charge energy as ``component power x component busy time``
(the same granularity the paper's simulator integrates at).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError

# Table 2: component -> (area_mm2, power_mw) for (server, edge).
COMPONENT_TABLE: Dict[str, Dict[str, Tuple[float, float]]] = {
    "address_generator": {"server": (0.013, 8.04), "edge": (0.003, 2.01)},
    "register_cache": {"server": (0.007, 2.66), "edge": (0.002, 0.67)},
    "mem_xbars": {"server": (5.03, 5.33), "edge": (1.26, 1.33)},
    "fusion_unit": {"server": (0.220, 107.99), "edge": (0.055, 27.00)},
    "density_subengine": {"server": (3.44, 28.44), "edge": (0.86, 7.11)},
    "color_subengine": {"server": (5.76, 47.30), "edge": (1.44, 11.82)},
    "approximation_unit": {"server": (0.118, 52.21), "edge": (0.029, 13.05)},
    "rgb_unit": {"server": (0.013, 5.40), "edge": (0.003, 1.35)},
    "adaptive_sample_unit": {"server": (0.0007, 0.27), "edge": (0.0002, 0.07)},
    "buffers": {"server": (0.27, 79.0), "edge": (0.06, 19.55)},
    # Table 2's per-row power entries are per-instance while the published
    # totals (5.77 W / 1.44 W) cover all replicated instances plus clock,
    # I/O and control; this row closes the gap so component sums reproduce
    # the paper's totals exactly.
    "system_overhead": {"server": (0.2183, 5433.36), "edge": (0.0578, 1356.04)},
}

# Table 2 totals (mm^2, W) — used as a consistency check.
TOTALS = {"server": (15.09, 5.77), "edge": (3.77, 1.44)}

_ENGINE_OF_COMPONENT = {
    "address_generator": "encoding",
    "register_cache": "encoding",
    "mem_xbars": "encoding",
    "fusion_unit": "encoding",
    "density_subengine": "mlp",
    "color_subengine": "mlp",
    "approximation_unit": "render",
    "rgb_unit": "render",
    "adaptive_sample_unit": "render",
    "buffers": "shared",
    "system_overhead": "shared",
}


@dataclass
class AreaPowerModel:
    """Table 2 lookups for one design point (``server`` or ``edge``)."""

    scale: str = "server"

    def __post_init__(self) -> None:
        if self.scale not in ("server", "edge"):
            raise ConfigurationError("scale must be 'server' or 'edge'")

    def area_mm2(self, component: str) -> float:
        return COMPONENT_TABLE[component][self.scale][0]

    def power_w(self, component: str) -> float:
        return COMPONENT_TABLE[component][self.scale][1] / 1e3

    def total_area_mm2(self) -> float:
        return sum(v[self.scale][0] for v in COMPONENT_TABLE.values())

    def total_power_w(self) -> float:
        return sum(v[self.scale][1] for v in COMPONENT_TABLE.values()) / 1e3

    def engine_of(self, component: str) -> str:
        return _ENGINE_OF_COMPONENT[component]

    def energy_j(
        self, busy_seconds: Dict[str, float], total_seconds: float
    ) -> Dict[str, float]:
        """Energy per component: dynamic (busy) plus 10 % static leakage.

        Args:
            busy_seconds: Active time keyed by engine name ("encoding",
                "mlp", "render") or by an individual component name —
                a component key overrides its engine's time (used to
                charge the density/color sub-engines separately).
            total_seconds: Wall-clock of the workload (for leakage).
        """
        out: Dict[str, float] = {}
        for component in COMPONENT_TABLE:
            engine = self.engine_of(component)
            if component in busy_seconds:
                busy = busy_seconds[component]
            elif engine == "shared":
                busy = total_seconds
            else:
                busy = busy_seconds.get(engine, 0.0)
            power = self.power_w(component)
            out[component] = power * busy + 0.1 * power * total_seconds
        return out
