"""System-bus model for off-accelerator traffic (Section 5.5 dataflow).

Phase I receives probe-pixel descriptors from the bus; Phase II streams
per-ray descriptors in and final RGB values out.  The bus is never the
ASDR bottleneck (that is the point of computing in memory), but modelling
it closes the dataflow and lets experiments confirm the claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BusSpec:
    """A simple synchronous bus.

    Attributes:
        bytes_per_cycle: Transfer width (e.g. 32 B/cycle ~ 32 GB/s @1 GHz).
        request_overhead_cycles: Fixed cost per burst.
        burst_bytes: Maximum burst size.
    """

    bytes_per_cycle: int = 32
    request_overhead_cycles: int = 8
    burst_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.bytes_per_cycle < 1 or self.burst_bytes < self.bytes_per_cycle:
            raise ConfigurationError("invalid bus geometry")

    def transfer_cycles(self, num_bytes: int) -> int:
        """Cycles to move ``num_bytes`` including burst overheads."""
        if num_bytes <= 0:
            return 0
        bursts = math.ceil(num_bytes / self.burst_bytes)
        return bursts * self.request_overhead_cycles + math.ceil(
            num_bytes / self.bytes_per_cycle
        )


@dataclass
class BusTraffic:
    """Traffic of one rendered image over the bus.

    Attributes:
        pixels: Image pixels (descriptors in, RGB out).
        probe_pixels: Phase I probe descriptors.
    """

    pixels: int
    probe_pixels: int = 0

    # Per-pixel descriptor: ray id + budget (8 B); output RGB: 3 x 2 B.
    DESCRIPTOR_BYTES = 8
    RGB_BYTES = 6

    @property
    def input_bytes(self) -> int:
        return (self.pixels + self.probe_pixels) * self.DESCRIPTOR_BYTES

    @property
    def output_bytes(self) -> int:
        return self.pixels * self.RGB_BYTES


def bus_cycles(traffic: BusTraffic, spec: BusSpec = BusSpec()) -> int:
    """Total bus cycles for one image's in/out traffic."""
    return spec.transfer_cycles(traffic.input_bytes) + spec.transfer_cycles(
        traffic.output_bytes
    )
