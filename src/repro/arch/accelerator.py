"""Top-level ASDR accelerator simulator (Section 5.5 dataflow).

The three engines form a pipeline over wavefronts of rays: while the
encoding engine fetches wavefront *k*'s embeddings, the MLP engine runs
wavefront *k-1* and the rendering engine composites *k-2*; a wavefront's
contribution to total latency is therefore the maximum of its three engine
costs.  Phase I (probe rendering + adaptive sampling) and Phase II (full
image) are simulated back to back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.arch.buffers import BufferModel, default_buffers
from repro.arch.bus import BusSpec, BusTraffic, bus_cycles
from repro.arch.config import ArchConfig
from repro.arch.encoding_engine import EncodingEngine, EncodingReport
from repro.arch.energy import AreaPowerModel
from repro.arch.mlp_engine import MLPEngine, MLPReport
from repro.arch.render_engine import RenderEngine, RenderEngineReport
from repro.arch.trace import EncodingBatch, _points_for_rays
from repro.core.approximation import anchor_indices
from repro.errors import SimulationError
from repro.nerf.hashgrid import HashGridConfig, HashGridEncoder
from repro.nerf.mlp import MLPConfig
from repro.scenes.cameras import Camera


@dataclass
class SimReport:
    """Cycle/energy outcome of simulating one rendered image.

    Attributes:
        name: Configuration label.
        total_cycles: Pipelined end-to-end cycles.
        encoding: Encoding-engine aggregate report.
        mlp: MLP-engine aggregate report.
        render: Rendering-engine aggregate report.
        energy_by_component: Joules per Table 2 component.
        buffer_stall_cycles: Pipeline cycles lost to on-chip buffer
            overflows (0 with the Table 2 capacities at default wavefronts).
        bus_cycles: System-bus cycles for descriptor/RGB traffic (never
            on the critical path; reported for completeness).
    """

    name: str
    clock_hz: float
    total_cycles: int = 0
    encoding: EncodingReport = field(default_factory=EncodingReport)
    mlp: MLPReport = field(default_factory=MLPReport)
    render: RenderEngineReport = field(default_factory=RenderEngineReport)
    energy_by_component: Dict[str, float] = field(default_factory=dict)
    buffer_stall_cycles: int = 0
    bus_cycles: int = 0

    @property
    def time_seconds(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def energy_joules(self) -> float:
        return sum(self.energy_by_component.values())

    @property
    def dynamic_energy_joules(self) -> float:
        """Energy of the compute engines alone (excludes the shared
        buffers/clock/IO overhead charged for wall time) — the quantity
        the Figure 21b energy-saving ablation varies."""
        shared = ("buffers", "system_overhead")
        return sum(
            v for k, v in self.energy_by_component.items() if k not in shared
        )

    @property
    def encoding_seconds(self) -> float:
        return self.encoding.cycles / self.clock_hz

    @property
    def mlp_seconds(self) -> float:
        return self.mlp.cycles / self.clock_hz

    def merge(self, other: "SimReport") -> None:
        self.total_cycles += other.total_cycles
        self.encoding.merge(other.encoding)
        self.mlp.merge(other.mlp)
        self.render.merge(other.render)
        self.buffer_stall_cycles += other.buffer_stall_cycles
        self.bus_cycles += other.bus_cycles
        for key, value in other.energy_by_component.items():
            self.energy_by_component[key] = (
                self.energy_by_component.get(key, 0.0) + value
            )


class ASDRAccelerator:
    """Trace-driven simulator of one ASDR design point.

    Args:
        config: Hardware configuration (server/edge/strawman/variants).
        grid: Hash-grid configuration of the accelerated model.
        density_mlp / color_mlp: Decoder network shapes.
    """

    def __init__(
        self,
        config: ArchConfig,
        grid: HashGridConfig,
        density_mlp: MLPConfig,
        color_mlp: MLPConfig,
    ) -> None:
        self.config = config
        self.grid = grid
        self.mlp_engine = MLPEngine(config, density_mlp, color_mlp)
        self.render_engine = RenderEngine(config)
        self._encoder = HashGridEncoder(grid)
        scale = "edge" if "edge" in config.name else "server"
        self.power_model = AreaPowerModel(scale)

    # ------------------------------------------------------------------
    def simulate_pass(
        self,
        camera: Camera,
        budgets: np.ndarray,
        color_fraction: float = 1.0,
        difficulty_evals: int = 0,
    ) -> SimReport:
        """Simulate one rendering pass.

        Args:
            camera: View being rendered.
            budgets: ``(H*W,)`` per-ray sample counts for this pass (0 for
                rays not rendered in the pass).
            color_fraction: Fraction of density points whose color MLP runs
                (1.0 without decoupling; ``~1/n`` with group size ``n``).
            difficulty_evals: Eq. (3) candidate comparisons charged to the
                adaptive sampling unit (Phase I).
        """
        budgets = np.asarray(budgets, dtype=np.int64)
        if budgets.shape[0] != camera.width * camera.height:
            raise SimulationError("budgets length must equal the pixel count")
        if not 0.0 <= color_fraction <= 1.0:
            raise SimulationError("color_fraction must lie in [0, 1]")

        encoding_engine = EncodingEngine(self.config, self.grid)
        scale = "edge" if "edge" in self.config.name else "server"
        buffers = BufferModel(default_buffers(scale))
        report = SimReport(name=self.config.name, clock_hz=self.config.clock_hz)

        for budget in np.unique(budgets):
            if budget <= 0:
                continue
            ray_ids = np.nonzero(budgets == budget)[0]
            for start in range(0, len(ray_ids), self.config.wavefront_rays):
                ids = ray_ids[start : start + self.config.wavefront_rays]
                points, hit = _points_for_rays(camera, ids, int(budget))
                if not hit.any():
                    continue
                flat = points[hit].reshape(-1, 3)
                corners = {
                    level: self._encoder.voxel_vertices(flat, level)[0]
                    for level in range(self.grid.num_levels)
                }
                batch = EncodingBatch(
                    corners=corners,
                    point_ray=np.repeat(ids[hit], int(budget)),
                    num_points=flat.shape[0],
                )
                enc = encoding_engine.process_batch(batch)
                color_points = math.ceil(batch.num_points * color_fraction)
                mlp = self.mlp_engine.process(batch.num_points, color_points)
                ren = self.render_engine.process(
                    composited_points=batch.num_points,
                    interpolated_points=batch.num_points - color_points,
                )
                stall = buffers.observe_wavefront(
                    in_flight_points=min(
                        batch.num_points, self.config.wavefront_rays
                    ),
                    levels=self.grid.num_levels,
                    ray_working_points=batch.num_points,
                )
                report.encoding.merge(enc)
                report.mlp.merge(mlp)
                report.render.merge(ren)
                report.buffer_stall_cycles += stall
                report.total_cycles += (
                    max(enc.cycles, mlp.cycles, ren.cycles) + stall
                )

        if difficulty_evals:
            # The adaptive sampling unit compares candidate renders at the
            # tail of Phase I (it cannot overlap the batches that produce
            # its inputs' final samples).
            ren = self.render_engine.process(0, 0, difficulty_evals)
            report.render.merge(ren)
            report.total_cycles += ren.cycles

        rendered = int((budgets > 0).sum())
        report.bus_cycles = bus_cycles(BusTraffic(pixels=rendered))

        self._charge_energy(report)
        return report

    # ------------------------------------------------------------------
    def simulate_render(
        self,
        camera: Camera,
        result,
        group_size: int = 1,
    ) -> SimReport:
        """Simulate a completed render (baseline or ASDR).

        Accepts either a :class:`~repro.nerf.renderer.RenderResult` (fixed
        budget baseline: every point runs both MLPs) or an
        :class:`~repro.core.stats.ASDRRenderResult` (two-phase: probes at
        full budget in Phase I, interpolated budgets with color decoupling
        in Phase II).
        """
        plan = getattr(result, "plan", None)
        if plan is None:  # baseline RenderResult
            return self.simulate_pass(camera, result.sample_counts, 1.0)

        n_pixels = camera.width * camera.height
        total = SimReport(name=self.config.name, clock_hz=self.config.clock_hz)

        if len(plan.probe_indices):
            probe_budgets = np.zeros(n_pixels, dtype=np.int64)
            probe_budgets[plan.probe_indices] = plan.full_budget
            phase1 = self.simulate_pass(
                camera,
                probe_budgets,
                color_fraction=1.0,
                difficulty_evals=len(plan.probe_indices) * plan.num_candidates,
            )
            total.merge(phase1)

        phase2_budgets = result.sample_counts.copy()
        if len(plan.probe_indices):
            phase2_budgets[plan.probe_indices] = 0
        color_fraction = 1.0
        if group_size > 1:
            full = max(plan.full_budget, 1)
            color_fraction = len(anchor_indices(full, group_size)) / full
        phase2 = self.simulate_pass(camera, phase2_budgets, color_fraction)
        total.merge(phase2)
        return total

    # ------------------------------------------------------------------
    def _charge_energy(self, report: SimReport) -> None:
        clock = self.config.clock_hz
        busy = {
            "encoding": report.encoding.cycles / clock,
            "mlp": report.mlp.cycles / clock,
            "render": report.render.cycles / clock,
            # The two MLP sub-engines are busy for their own pipelines —
            # color decoupling idles the color arrays even when the density
            # pipeline sets the engine's latency.
            "density_subengine": report.mlp.density_cycles / clock,
            "color_subengine": report.mlp.color_cycles / clock,
        }
        report.energy_by_component = self.power_model.energy_j(
            busy, report.time_seconds
        )
