"""Top-level ASDR accelerator simulator (Section 5.5 dataflow).

The three engines form a pipeline over wavefronts of rays: while the
encoding engine fetches wavefront *k*'s embeddings, the MLP engine runs
wavefront *k-1* and the rendering engine composites *k-2*; a wavefront's
contribution to total latency is therefore the maximum of its three engine
costs.  Phase I (probe rendering + adaptive sampling) and Phase II (full
image) are simulated back to back.

The simulator is *trace-faithful*: :meth:`ASDRAccelerator.simulate_trace`
replays the :class:`~repro.exec.frame_trace.FrameTrace` the renderer
emitted — the exact sample points each ray marched (post early
termination) and the exact per-ray anchor counts — so simulated cycles
reflect what the algorithm actually executed, and no rays, sample points
or voxel corners are re-derived inside the simulator.  The FrameTrace is
the *only* execution path: trace-less render results are rejected
(:meth:`simulate_render`), and consumers that only have a budget map go
through :meth:`simulate_pass`, which synthesises a trace once via the
shared scheduler.

Every simulation entry point executes through the resumable
:class:`~repro.exec.execution.FrameExecution` engine: a frame is a cursor
over budget-group wavefront steps that can be suspended after any step
and resumed bit-identically — :meth:`simulate_trace` simply runs the
cursor to completion, while the multi-tenant serving layer interleaves
many cursors at wavefront granularity (preemption).

Video workloads replay a whole
:class:`~repro.exec.sequence.SequenceTrace` through
:meth:`ASDRAccelerator.simulate_sequence`: pose-replayed frames are priced
at framebuffer scan-out cost, and a cross-frame
:class:`~repro.cim.cache.TemporalVertexCache` lets vertex fetches that hit
the previous frame's working set bypass the memory crossbars, exactly like
register-cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.bus import BusSpec, BusTraffic, bus_cycles
from repro.arch.config import ArchConfig
from repro.arch.encoding_engine import EncodingReport
from repro.arch.energy import AreaPowerModel
from repro.arch.mlp_engine import MLPEngine, MLPReport
from repro.arch.render_engine import RenderEngine, RenderEngineReport
from repro.cim.cache import TemporalVertexCache
from repro.core.approximation import anchor_indices
from repro.errors import SimulationError
from repro.exec.execution import FrameExecution, sequence_executions
from repro.exec.frame_trace import PHASE_PROBE, FrameTrace
from repro.exec.sequence import SequenceTrace
from repro.nerf.hashgrid import HashGridConfig, HashGridEncoder
from repro.nerf.mlp import MLPConfig
from repro.scenes.cameras import Camera


@dataclass
class SimReport:
    """Cycle/energy outcome of simulating one rendered image.

    Attributes:
        name: Configuration label.
        total_cycles: Pipelined end-to-end cycles.
        encoding: Encoding-engine aggregate report.
        mlp: MLP-engine aggregate report.
        render: Rendering-engine aggregate report.
        energy_by_component: Joules per Table 2 component.
        buffer_stall_cycles: Pipeline cycles lost to on-chip buffer
            overflows (0 with the Table 2 capacities at default wavefronts).
        bus_cycles: System-bus cycles for descriptor/RGB traffic (never
            on the critical path; reported for completeness).
    """

    name: str
    clock_hz: float
    total_cycles: int = 0
    encoding: EncodingReport = field(default_factory=EncodingReport)
    mlp: MLPReport = field(default_factory=MLPReport)
    render: RenderEngineReport = field(default_factory=RenderEngineReport)
    energy_by_component: Dict[str, float] = field(default_factory=dict)
    buffer_stall_cycles: int = 0
    bus_cycles: int = 0

    @property
    def time_seconds(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def energy_joules(self) -> float:
        return sum(self.energy_by_component.values())

    @property
    def dynamic_energy_joules(self) -> float:
        """Energy of the compute engines alone (excludes the shared
        buffers/clock/IO overhead charged for wall time) — the quantity
        the Figure 21b energy-saving ablation varies."""
        shared = ("buffers", "system_overhead")
        return sum(
            v for k, v in self.energy_by_component.items() if k not in shared
        )

    @property
    def encoding_seconds(self) -> float:
        return self.encoding.cycles / self.clock_hz

    @property
    def mlp_seconds(self) -> float:
        return self.mlp.cycles / self.clock_hz

    def merge(self, other: "SimReport") -> None:
        self.total_cycles += other.total_cycles
        self.encoding.merge(other.encoding)
        self.mlp.merge(other.mlp)
        self.render.merge(other.render)
        self.buffer_stall_cycles += other.buffer_stall_cycles
        self.bus_cycles += other.bus_cycles
        for key, value in other.energy_by_component.items():
            self.energy_by_component[key] = (
                self.energy_by_component.get(key, 0.0) + value
            )


class _SequenceMemoScope:
    """Frame-scoped memo adapter: routes a frame's stream memoisation into
    its :class:`~repro.exec.sequence.SequenceTrace` so derived arrays
    (address gaps, temporal hit masks) live with the sequence that defines
    them — the same FrameTrace simulated inside two different sequences
    never shares temporal state."""

    def __init__(self, sequence: SequenceTrace, frame: int) -> None:
        self._sequence = sequence
        self._frame = frame

    def memo_hook(self, prefix: Tuple):
        return self._sequence.memo_hook((self._frame,) + prefix)

    def memo_contains(self, key: Tuple) -> bool:
        return self._sequence.memo_contains((self._frame,) + key)


@dataclass
class SequenceSimReport:
    """Cycle/energy outcome of simulating a rendered sequence.

    Attributes:
        name: Configuration label.
        frames: Per-frame :class:`SimReport` in path order (replayed
            frames carry bus-only reports).
        replayed: Per-frame pose-replay flags.
    """

    name: str
    clock_hz: float
    frames: List[SimReport] = field(default_factory=list)
    replayed: List[bool] = field(default_factory=list)

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def total_cycles(self) -> int:
        return sum(f.total_cycles for f in self.frames)

    @property
    def amortised_cycles(self) -> float:
        """Mean cycles per delivered frame — the video headline metric."""
        return self.total_cycles / self.num_frames if self.frames else 0.0

    @property
    def time_seconds(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def energy_joules(self) -> float:
        return sum(f.energy_joules for f in self.frames)

    @property
    def temporal_hits(self) -> int:
        return sum(f.encoding.temporal_hits for f in self.frames)

    @property
    def temporal_hit_rate(self) -> float:
        lookups = sum(f.encoding.lookups for f in self.frames)
        return self.temporal_hits / lookups if lookups else 0.0

    def merged(self) -> SimReport:
        """Aggregate the per-frame reports into one :class:`SimReport`."""
        total = SimReport(name=self.name, clock_hz=self.clock_hz)
        for frame in self.frames:
            total.merge(frame)
        return total


class ASDRAccelerator:
    """Trace-driven simulator of one ASDR design point.

    Args:
        config: Hardware configuration (server/edge/strawman/variants).
        grid: Hash-grid configuration of the accelerated model.
        density_mlp / color_mlp: Decoder network shapes.
    """

    def __init__(
        self,
        config: ArchConfig,
        grid: HashGridConfig,
        density_mlp: MLPConfig,
        color_mlp: MLPConfig,
    ) -> None:
        self.config = config
        self.grid = grid
        self.mlp_engine = MLPEngine(config, density_mlp, color_mlp)
        self.render_engine = RenderEngine(config)
        self._encoder = HashGridEncoder(grid)
        scale = "edge" if "edge" in config.name else "server"
        self.power_model = AreaPowerModel(scale)

    # ------------------------------------------------------------------
    def simulate_trace(
        self,
        trace: FrameTrace,
        group_size: Optional[int] = None,
        color_fraction: Optional[float] = None,
        difficulty_evals: Optional[int] = None,
        rendered_pixels: Optional[int] = None,
        temporal: Optional[TemporalVertexCache] = None,
        memo_scope=None,
        wavefront_log: Optional[List[Tuple[Tuple, int]]] = None,
    ) -> SimReport:
        """Replay a :class:`FrameTrace` through the pipeline.

        This is the single execution path behind :meth:`simulate_pass`,
        :meth:`simulate_render` and :meth:`simulate_sequence`: the trace's
        wavefronts are re-chunked to this design's ``wavefront_rays`` and
        each chunk is charged exactly the density/color/interpolated
        points the renderer recorded — early-terminated samples are never
        billed.

        Args:
            trace: The frame's execution trace.
            group_size: Color-decoupling group size to price.  ``None``
                uses the per-ray anchor counts recorded in the trace; an
                explicit value re-derives anchor counts from the recorded
                ``used`` counts (no geometry is recomputed), matching the
                renderer's ``budget > group_size`` gating.  Ignored for
                baseline traces (the fixed-budget pipeline has no
                decoupling hardware path).
            color_fraction: Legacy override — charge
                ``ceil(points * fraction)`` color points per wavefront
                instead of per-ray counts (used by :meth:`simulate_pass`).
            difficulty_evals: Override for the Phase I adaptive-sampling
                unit work; defaults to the trace's recorded count.
            rendered_pixels: Override for the RGB bus traffic; defaults to
                the trace's rays with at least one marched sample.
            temporal: Cross-frame vertex cache (sequence simulation);
                vertex fetches hitting the previous frame's working set
                bypass the memory crossbars.
            memo_scope: Object providing ``memo_hook(prefix)`` for
                stream-derived memoisation; defaults to ``trace``.  The
                sequence simulator passes a frame-scoped hook on its
                :class:`~repro.exec.sequence.SequenceTrace` so temporal
                hit masks stay tied to the sequence that defines them.
            wavefront_log: When given, every cycle charge is appended as
                ``(key, cycles)`` — one entry per wavefront slice plus the
                Phase I adaptive-sampling tail — and ``total_cycles`` is
                exactly their sum (the invariant the property tests pin).
        """
        return self.trace_execution(
            trace,
            group_size=group_size,
            color_fraction=color_fraction,
            difficulty_evals=difficulty_evals,
            rendered_pixels=rendered_pixels,
            temporal=temporal,
            memo_scope=memo_scope,
            wavefront_log=wavefront_log,
        ).finish()

    # ------------------------------------------------------------------
    def trace_execution(self, trace: FrameTrace, **kwargs) -> FrameExecution:
        """A resumable :class:`~repro.exec.execution.FrameExecution` over
        ``trace``, accepting the same keyword overrides as
        :meth:`simulate_trace`.  Running it to completion is exactly
        ``simulate_trace``; stepping it lets a scheduler suspend the frame
        after any wavefront."""
        return FrameExecution(self, trace, **kwargs)

    def _new_report(self) -> SimReport:
        """An empty report for this design point (execution-engine hook)."""
        return SimReport(name=self.config.name, clock_hz=self.config.clock_hz)

    def _effective_color_used(
        self, trace: FrameTrace, group_size: Optional[int]
    ) -> List[np.ndarray]:
        """Per-wavefront color-MLP point counts for a given group size.

        Probe wavefronts always run the full color MLP (Phase I has no
        decoupling); main wavefronts use the recorded anchor counts unless
        an explicit ``group_size`` asks to re-price the trace, in which
        case anchor counts are re-derived from the recorded ``used``
        counts — still no ray/corner recomputation.
        """
        reprice = (
            trace.kind == "asdr"
            and group_size is not None
            and group_size != trace.group_size
        )
        out: List[np.ndarray] = []
        for wf in trace.wavefronts:
            if wf.phase == PHASE_PROBE or not reprice:
                out.append(np.minimum(wf.color_used, wf.used))
            elif group_size > 1 and wf.budget > group_size:
                anchors = anchor_indices(wf.budget, group_size)
                out.append(
                    np.searchsorted(anchors, wf.used, side="left").astype(np.int64)
                )
            else:
                out.append(wf.used)
        return out

    # ------------------------------------------------------------------
    def simulate_pass(
        self,
        camera: Camera,
        budgets: np.ndarray,
        color_fraction: float = 1.0,
        difficulty_evals: int = 0,
    ) -> SimReport:
        """Simulate one rendering pass from a per-ray budget map.

        Args:
            camera: View being rendered.
            budgets: ``(H*W,)`` per-ray sample counts for this pass (0 for
                rays not rendered in the pass).
            color_fraction: Fraction of density points whose color MLP runs
                (1.0 without decoupling; ``~1/n`` with group size ``n``).
            difficulty_evals: Eq. (3) candidate comparisons charged to the
                adaptive sampling unit (Phase I).
        """
        budgets = np.asarray(budgets, dtype=np.int64)
        if budgets.shape[0] != camera.width * camera.height:
            raise SimulationError("budgets length must equal the pixel count")
        if not 0.0 <= color_fraction <= 1.0:
            raise SimulationError("color_fraction must lie in [0, 1]")
        trace = FrameTrace.from_budgets(camera, budgets)
        return self.simulate_trace(
            trace,
            color_fraction=color_fraction,
            difficulty_evals=difficulty_evals,
            rendered_pixels=int((budgets > 0).sum()),
        )

    # ------------------------------------------------------------------
    def simulate_render(
        self,
        camera: Optional[Camera],
        result,
        group_size: int = 1,
    ) -> SimReport:
        """Simulate a completed render (baseline or ASDR).

        Accepts a :class:`~repro.exec.frame_trace.FrameTrace` directly, or
        a :class:`~repro.nerf.renderer.RenderResult` /
        :class:`~repro.core.stats.ASDRRenderResult` — results produced by
        the current renderers carry their trace, which is replayed without
        re-sampling any rays or corners.  ``camera`` is unused and kept
        only for call-site compatibility.

        Raises:
            SimulationError: For trace-less results.  The legacy
                ``(camera, budgets)`` re-derivation path is gone; callers
                holding only a budget map should use :meth:`simulate_pass`
                (which synthesises a trace once through the shared
                scheduler) or re-render with a current renderer.
        """
        del camera  # the trace carries everything the pipeline replays
        if isinstance(result, FrameTrace):
            return self.simulate_trace(result, group_size=group_size)
        trace = getattr(result, "trace", None)
        if trace is None:
            raise SimulationError(
                "simulate_render requires a FrameTrace-carrying result; the "
                "legacy (camera, budgets) re-derivation path was retired. "
                "Re-render with a current renderer, or synthesise a trace "
                "explicitly via FrameTrace.from_budgets / simulate_pass."
            )
        return self.simulate_trace(trace, group_size=group_size)

    # ------------------------------------------------------------------
    def simulate_sequence(
        self,
        sequence: SequenceTrace,
        group_size: Optional[int] = None,
        temporal: bool = True,
        temporal_capacity: Optional[int] = None,
    ) -> "SequenceSimReport":
        """Replay a :class:`~repro.exec.sequence.SequenceTrace`.

        Frames are simulated in path order with two inter-frame levers the
        per-frame path does not have:

        * frames recorded as pose replays never touch the engines — the
          framebuffer already holds their pixels, so they are priced at
          RGB scan-out (bus) cost only;
        * a :class:`~repro.cim.cache.TemporalVertexCache` carries each
          frame's vertex working set to the next: fetches that hit it skip
          the memory crossbars (reduced encoding cycles and crossbar
          energy, modelled like the register cache).

        Args:
            sequence: The rendered sequence's trace.
            group_size: As for :meth:`simulate_trace`, applied per frame.
            temporal: Disable to price frames fully independently (the
                comparison baseline the video experiment reports).
            temporal_capacity: Per-level entry bound of the temporal
                cache (``None`` = unbounded).
        """
        if not isinstance(sequence, SequenceTrace):
            raise SimulationError(
                "simulate_sequence expects a SequenceTrace, got "
                f"{type(sequence).__name__}"
            )
        cache = TemporalVertexCache(temporal_capacity) if temporal else None
        # A thin loop over the resumable execution engine: one cursor per
        # frame, each run to completion before the next frame's lookups
        # (the temporal cache commits at every finish()).
        frames: List[SimReport] = [
            ex.finish()
            for ex in sequence_executions(
                self, sequence, group_size=group_size, temporal=cache
            )
        ]
        return SequenceSimReport(
            name=self.config.name,
            clock_hz=self.config.clock_hz,
            frames=frames,
            replayed=[j is not None for j in sequence.replays],
        )

    # ------------------------------------------------------------------
    def simulate_sequence_frame(
        self,
        sequence: SequenceTrace,
        frame: int,
        group_size: Optional[int] = None,
        temporal: Optional[TemporalVertexCache] = None,
    ) -> SimReport:
        """Simulate one frame of a sequence — the interleaving unit.

        :meth:`simulate_sequence` calls this in path order with one shared
        temporal cache; the multi-tenant serving layer
        (:class:`~repro.serving.server.SequenceServer`) calls it in
        *scheduler* order, passing each client's own cache partition, so
        per-client cycle and energy attribution falls out of the returned
        per-frame :class:`SimReport` directly.

        Frames recorded as pose replays never touch the engines (they are
        priced via :meth:`simulate_scanout`); fresh frames are replayed
        through :meth:`simulate_trace` with the frame-scoped sequence memo,
        and the temporal cache — when given — is committed at the frame
        boundary so the client's next frame compares against this frame's
        working set.
        """
        return self.frame_execution(
            sequence, frame, group_size=group_size, temporal=temporal
        ).finish()

    # ------------------------------------------------------------------
    def frame_execution(
        self,
        sequence: SequenceTrace,
        frame: int,
        group_size: Optional[int] = None,
        temporal: Optional[TemporalVertexCache] = None,
        wavefront_log: Optional[List[Tuple[Tuple, int]]] = None,
        recorder=None,
    ) -> FrameExecution:
        """A resumable execution cursor over one sequence frame.

        Frames recorded as pose replays come back in scan-out mode (a
        single step pricing the framebuffer read-out); fresh frames carry
        the frame-scoped sequence memo and — when ``temporal`` is given —
        commit the cache at :meth:`~repro.exec.execution.FrameExecution.
        finish`, tagged with the frame index so memoised temporal hit
        masks stay keyed to the resident set they were computed against.
        ``recorder`` (a :class:`~repro.obs.recorder.Recorder`) attaches
        observer-only telemetry; it never affects the cycles priced.
        """
        if not 0 <= frame < sequence.num_frames:
            raise SimulationError(
                f"frame {frame} out of range for a "
                f"{sequence.num_frames}-frame sequence"
            )
        trace = sequence.frames[frame]
        if sequence.replays[frame] is not None:
            return FrameExecution(self, trace, scanout=True, recorder=recorder)
        return FrameExecution(
            self,
            trace,
            group_size=group_size,
            temporal=temporal,
            memo_scope=_SequenceMemoScope(sequence, frame),
            wavefront_log=wavefront_log,
            commit_tag=frame,
            recorder=recorder,
        )

    def simulate_scanout(self, trace: FrameTrace) -> SimReport:
        """Price a frame whose pixels already exist: no engine work, only
        the RGB scan-out of the (already rendered) frame over the system
        bus.  Used for pose-replayed frames within a sequence and for
        cross-client content hits in the serving layer."""
        report = SimReport(name=self.config.name, clock_hz=self.config.clock_hz)
        report.bus_cycles = bus_cycles(BusTraffic(pixels=trace.rendered_pixels))
        report.total_cycles = report.bus_cycles
        self._charge_energy(report)
        return report

    # ------------------------------------------------------------------
    def _charge_energy(self, report: SimReport) -> None:
        clock = self.config.clock_hz
        busy = {
            "encoding": report.encoding.cycles / clock,
            "mlp": report.mlp.cycles / clock,
            "render": report.render.cycles / clock,
            # The two MLP sub-engines are busy for their own pipelines —
            # color decoupling idles the color arrays even when the density
            # pipeline sets the engine's latency.
            "density_subengine": report.mlp.density_cycles / clock,
            "color_subengine": report.mlp.color_cycles / clock,
        }
        report.energy_by_component = self.power_model.energy_j(
            busy, report.time_seconds
        )
