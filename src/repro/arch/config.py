"""Hardware configuration of the ASDR accelerator (Table 2).

Two design points ship with the paper: ASDR-Server (64 address units,
64 MB of memory crossbars, 4 MLP sub-engines of each kind) and ASDR-Edge
(a quarter-to-sixteenth scale variant for <1.5 W operation).  All counts
are per Table 2's "Config" column.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cim.crossbar import CrossbarConfig
from repro.cim.reram import RERAM, SRAM, DeviceParams
from repro.errors import ConfigurationError


@dataclass
class ArchConfig:
    """Full accelerator configuration.

    Attributes:
        name: Design point label.
        clock_hz: Core clock (paper: 1 GHz, TSMC 28 nm).
        address_units: Addresses generated per cycle (hash + low-res units).
        cache_entries: Register-cache entries per resolution level
            (Figure 22's design point is 8).
        mem_xbar_mb: Memory-crossbar capacity for embedding tables.
        fusion_lanes: Trilinear-interpolation MACs per cycle.
        density_engines / color_engines: MLP sub-engine counts.
        pes_per_engine: CIM PEs (crossbar tiles) usable in parallel by one
            sub-engine.
        approx_lanes: Linear interpolations per cycle (approximation unit).
        rgb_lanes: Compositing accumulations per cycle (RGB unit).
        adaptive_lanes: Eq. (3) comparisons per cycle (adaptive sample unit).
        mapping_mode: ``"hybrid"``, ``"hash"`` or ``"naive"`` addressing.
        crossbar: CIM PE geometry/precision.
        memory_device: Technology of the embedding-table storage.
        mlp_device: Technology of the MLP CIM arrays.
        wavefront_rays: Rays processed per pipeline batch.
    """

    name: str = "server"
    clock_hz: float = 1e9
    address_units: int = 64
    cache_entries: int = 8
    mem_xbar_mb: int = 64
    fusion_lanes: int = 32
    density_engines: int = 4
    color_engines: int = 4
    pes_per_engine: int = 16
    approx_lanes: int = 16
    rgb_lanes: int = 8
    adaptive_lanes: int = 8
    mapping_mode: str = "hybrid"
    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)
    memory_device: DeviceParams = RERAM
    mlp_device: DeviceParams = RERAM
    wavefront_rays: int = 64

    def __post_init__(self) -> None:
        positive = (
            "clock_hz",
            "address_units",
            "fusion_lanes",
            "density_engines",
            "color_engines",
            "pes_per_engine",
            "approx_lanes",
            "rgb_lanes",
            "adaptive_lanes",
            "wavefront_rays",
        )
        for attr in positive:
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")
        if self.cache_entries < 0:
            raise ConfigurationError("cache_entries must be >= 0")

    # ------------------------------------------------------------------
    @classmethod
    def server(cls, **overrides) -> "ArchConfig":
        """The ASDR-Server design point of Table 2."""
        return cls(**overrides) if overrides else cls()

    @classmethod
    def edge(cls, **overrides) -> "ArchConfig":
        """The ASDR-Edge design point of Table 2."""
        base = cls(
            name="edge",
            address_units=16,
            cache_entries=8,
            mem_xbar_mb=2,
            fusion_lanes=8,
            density_engines=1,
            color_engines=1,
            pes_per_engine=8,
            approx_lanes=4,
            rgb_lanes=2,
            adaptive_lanes=2,
        )
        return replace(base, **overrides) if overrides else base

    @classmethod
    def strawman(cls, scale: str = "server") -> "ArchConfig":
        """Basic CIM design: hash mapping everywhere, no register cache.

        This is the ablation baseline of Figure 20 — it keeps the CIM MVM
        capability but none of ASDR's data-reuse machinery.
        """
        base = cls.server() if scale == "server" else cls.edge()
        return replace(
            base, name=f"strawman-{scale}", mapping_mode="hash", cache_entries=0
        )

    def with_sram_memory(self) -> "ArchConfig":
        """SRAM-based encoding storage (the SA / SRAM variants of Fig. 26)."""
        return replace(self, memory_device=SRAM, name=self.name + "-sram-mem")
