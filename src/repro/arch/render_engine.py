"""Volume rendering engine simulation (Section 5.4).

Three digital units: the approximation unit (linear color interpolation of
non-anchor points), the RGB computation unit (Eq. 1 accumulation), and the
adaptive sampling unit (Eq. 3 subtract/compare trees).  All are simple
throughput pipelines sized by Table 2's Config column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import ArchConfig


@dataclass
class RenderEngineReport:
    """Aggregate volume-rendering-engine outcome.

    Attributes:
        cycles: Total pipelined cycles (units overlap).
        approx_cycles / rgb_cycles / adaptive_cycles: Per-unit busy cycles.
        interpolated_points: Colors produced by the approximation unit.
        composited_points: Samples accumulated by the RGB unit.
        difficulty_evals: Eq. (3) candidate evaluations.
    """

    cycles: int = 0
    approx_cycles: int = 0
    rgb_cycles: int = 0
    adaptive_cycles: int = 0
    interpolated_points: int = 0
    composited_points: int = 0
    difficulty_evals: int = 0

    def merge(self, other: "RenderEngineReport") -> None:
        self.cycles += other.cycles
        self.approx_cycles += other.approx_cycles
        self.rgb_cycles += other.rgb_cycles
        self.adaptive_cycles += other.adaptive_cycles
        self.interpolated_points += other.interpolated_points
        self.composited_points += other.composited_points
        self.difficulty_evals += other.difficulty_evals


class RenderEngine:
    """Analytic throughput model of the three rendering units."""

    def __init__(self, config: ArchConfig) -> None:
        self.config = config

    def process(
        self,
        composited_points: int,
        interpolated_points: int = 0,
        difficulty_evals: int = 0,
    ) -> RenderEngineReport:
        """Cost of compositing a batch.

        Args:
            composited_points: Samples entering Eq. (1) accumulation.
            interpolated_points: Non-anchor samples needing approximation.
            difficulty_evals: Probe-pixel candidate renders compared by the
                adaptive sampling unit (Phase I only).
        """
        approx = math.ceil(interpolated_points / self.config.approx_lanes)
        rgb = math.ceil(composited_points / self.config.rgb_lanes)
        adaptive = math.ceil(difficulty_evals / self.config.adaptive_lanes)
        return RenderEngineReport(
            cycles=max(approx, rgb, adaptive),
            approx_cycles=approx,
            rgb_cycles=rgb,
            adaptive_cycles=adaptive,
            interpolated_points=interpolated_points,
            composited_points=composited_points,
            difficulty_evals=difficulty_evals,
        )
