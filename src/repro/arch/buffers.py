"""On-chip buffer modelling (the "Buffers" row of Table 2, Figure 10).

Three buffers decouple the pipeline stages:

* **address buffer** — generated addresses awaiting crossbar issue;
* **embed buffer** — fetched embeddings awaiting fusion (absorbing the
  cache-hit/miss latency variance the paper's dataflow section describes);
* **density & color buffer** — MLP outputs awaiting volume rendering.

The model tracks per-wavefront occupancy against the configured capacity
and reports stalls: a wavefront whose working set exceeds a buffer must
drain in ``ceil(need / capacity)`` passes, each adding a refill latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BufferSpec:
    """Capacity of one on-chip buffer.

    Attributes:
        name: Buffer label.
        capacity_bytes: Usable capacity.
        entry_bytes: Bytes per buffered element.
        refill_cycles: Latency added per extra drain pass.
    """

    name: str
    capacity_bytes: int
    entry_bytes: int
    refill_cycles: int = 4

    def __post_init__(self) -> None:
        if self.capacity_bytes < self.entry_bytes:
            raise ConfigurationError(
                f"{self.name}: capacity must hold at least one entry"
            )

    @property
    def capacity_entries(self) -> int:
        return self.capacity_bytes // self.entry_bytes


def default_buffers(scale: str = "server") -> Dict[str, BufferSpec]:
    """Table 2's buffer budget (256 KB server / 64 KB edge) split across
    the three Figure 10 buffers in traffic proportion."""
    total = 256 * 1024 if scale == "server" else 64 * 1024
    return {
        "address": BufferSpec("address", total // 8, entry_bytes=4),
        # An embedding entry: 8 vertices x feature_dim(2) x 2 bytes.
        "embed": BufferSpec("embed", total // 2, entry_bytes=32),
        # Density (2B) + color (3 x 2B) per sample point.
        "density_color": BufferSpec("density_color", total // 4, entry_bytes=8),
    }


@dataclass
class BufferReport:
    """Occupancy/stall outcome of one buffer over a render.

    Attributes:
        peak_entries: Largest single-wavefront working set observed.
        stall_cycles: Total refill penalty from capacity overflows.
        overflow_wavefronts: Wavefronts that exceeded capacity.
    """

    peak_entries: int = 0
    stall_cycles: int = 0
    overflow_wavefronts: int = 0

    def merge(self, other: "BufferReport") -> None:
        self.peak_entries = max(self.peak_entries, other.peak_entries)
        self.stall_cycles += other.stall_cycles
        self.overflow_wavefronts += other.overflow_wavefronts


class BufferModel:
    """Tracks wavefront working sets against buffer capacities."""

    def __init__(self, specs: Dict[str, BufferSpec]) -> None:
        self.specs = specs
        self.reports: Dict[str, BufferReport] = {
            name: BufferReport() for name in specs
        }

    def observe(self, name: str, entries: int) -> int:
        """Record a wavefront needing ``entries`` slots of buffer ``name``.

        Returns the stall cycles this wavefront incurs (0 when it fits).
        """
        spec = self.specs[name]
        report = self.reports[name]
        report.peak_entries = max(report.peak_entries, entries)
        passes = math.ceil(entries / spec.capacity_entries)
        if passes <= 1:
            return 0
        stall = (passes - 1) * spec.refill_cycles
        report.stall_cycles += stall
        report.overflow_wavefronts += 1
        return stall

    def observe_wavefront(
        self,
        in_flight_points: int,
        levels: int,
        ray_working_points: int,
        lookups_per_point: int = 8,
    ) -> int:
        """Charge one pipeline wavefront against all three buffers.

        Args:
            in_flight_points: Points simultaneously between address
                generation and fusion (the pipeline's look-ahead window —
                one point per ray of the wavefront).
            levels: Resolution levels (each holds its slice in flight).
            ray_working_points: MLP outputs that must be retained until
                their rays composite (rays x budget of the wavefront) —
                the density & color buffer's working set.

        Returns the total stall cycles.
        """
        stall = self.observe(
            "address", in_flight_points * lookups_per_point * levels
        )
        stall += self.observe("embed", in_flight_points * levels)
        stall += self.observe("density_color", ray_working_points)
        return stall

    def total_stalls(self) -> int:
        return sum(r.stall_cycles for r in self.reports.values())
