"""Cycle-level simulator of the ASDR accelerator (Section 5).

The simulator is trace-driven: it replays the
:class:`~repro.exec.frame_trace.FrameTrace` the renderer emitted — the
exact per-wavefront ray/sample streams, post-early-termination — through
the three engines (encoding, MLP, volume rendering) and reports cycles,
energy and utilisation.  Server and edge configurations follow Table 2.
"""

from repro.arch.buffers import BufferModel, BufferSpec, default_buffers
from repro.arch.bus import BusSpec, BusTraffic, bus_cycles
from repro.arch.config import ArchConfig
from repro.arch.energy import AreaPowerModel, COMPONENT_TABLE
from repro.arch.encoding_engine import EncodingEngine, EncodingReport
from repro.arch.mlp_engine import MLPEngine, MLPReport
from repro.arch.render_engine import RenderEngine, RenderEngineReport
from repro.arch.accelerator import (
    ASDRAccelerator,
    SequenceSimReport,
    SimReport,
)
from repro.arch.trace import (
    EncodingBatch,
    encoding_corner_stream,
    hash_address_trace,
    repetition_profile,
)

__all__ = [
    "BufferModel",
    "BufferSpec",
    "default_buffers",
    "BusSpec",
    "BusTraffic",
    "bus_cycles",
    "ArchConfig",
    "AreaPowerModel",
    "COMPONENT_TABLE",
    "EncodingEngine",
    "EncodingReport",
    "MLPEngine",
    "MLPReport",
    "RenderEngine",
    "RenderEngineReport",
    "ASDRAccelerator",
    "SequenceSimReport",
    "SimReport",
    "EncodingBatch",
    "encoding_corner_stream",
    "hash_address_trace",
    "repetition_profile",
]
