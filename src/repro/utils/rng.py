"""Deterministic random-number helpers.

Every stochastic component in the library accepts an integer seed and
derives its generators through :func:`derive_seed`, so full experiment runs
are reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_rng(seed: int) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded with ``seed``."""
    return np.random.default_rng(seed)


def derive_seed(base: int, *labels: object) -> int:
    """Derive a stable child seed from ``base`` and a sequence of labels.

    The derivation hashes the labels, so adding a new consumer never
    perturbs the streams of existing ones (unlike ``base + i`` schemes).
    """
    payload = repr((int(base),) + tuple(str(l) for l in labels)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)
