"""Minimal dependency-free image I/O (binary PPM / PGM).

The CLI and examples write renders to disk without requiring PIL or
matplotlib; PPM is viewable by most image tools and easy to diff.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ReproError


def write_ppm(image: np.ndarray, path: Union[str, Path]) -> None:
    """Write a float RGB image in [0, 1] as a binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ReproError("write_ppm expects an (H, W, 3) array")
    data = (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    height, width = data.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{width} {height}\n255\n".encode())
        fh.write(data.tobytes())


def write_pgm(image: np.ndarray, path: Union[str, Path]) -> None:
    """Write a float grayscale image in [0, 1] as a binary PGM (P5)."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ReproError("write_pgm expects an (H, W) array")
    data = (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    height, width = data.shape
    with open(path, "wb") as fh:
        fh.write(f"P5\n{width} {height}\n255\n".encode())
        fh.write(data.tobytes())


def read_ppm(path: Union[str, Path]) -> np.ndarray:
    """Read a binary PPM (P6) back into a float RGB array in [0, 1]."""
    with open(path, "rb") as fh:
        magic = fh.readline().strip()
        if magic != b"P6":
            raise ReproError(f"{path} is not a binary PPM (P6)")
        dims = fh.readline().split()
        width, height = int(dims[0]), int(dims[1])
        maxval = int(fh.readline())
        raw = fh.read(width * height * 3)
    data = np.frombuffer(raw, dtype=np.uint8).reshape(height, width, 3)
    return data.astype(np.float64) / maxval
