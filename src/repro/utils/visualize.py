"""ASCII visualisation helpers for terminal inspection.

The paper's Figure 7 colors pixels by sample budget; these helpers render
the same maps as character ramps so examples and debugging sessions can
inspect plans without an image viewer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_RAMP = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, width: int = 64) -> str:
    """Render a 2D array as an ASCII heat map (dark = low, dense = high)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError("ascii_heatmap expects a 2D array")
    if values.shape[1] > width:
        step = values.shape[1] / width
        cols = (np.arange(width) * step).astype(int)
        rows = (np.arange(int(values.shape[0] / step)) * step).astype(int)
        values = values[np.ix_(np.clip(rows, 0, values.shape[0] - 1), cols)]
    lo, hi = float(values.min()), float(values.max())
    span = (hi - lo) or 1.0
    normalised = (values - lo) / span
    indices = np.clip((normalised * (len(_RAMP) - 1)).astype(int), 0, len(_RAMP) - 1)
    lines = ["".join(_RAMP[i] for i in row) for row in indices]
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str], values: Sequence[float], width: int = 40
) -> str:
    """Horizontal bar chart, one row per label."""
    values = [float(v) for v in values]
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    label_w = max((len(l) for l in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"{label.ljust(label_w)} |{bar} {value:g}")
    return "\n".join(lines)


def budget_map_ascii(plan, height: int, width: int, max_width: int = 64) -> str:
    """The Figure 7 budget visualisation as ASCII (dense = more samples)."""
    return ascii_heatmap(plan.budget_image(height, width), max_width)
