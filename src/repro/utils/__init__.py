"""Small shared utilities: math helpers and deterministic RNG handling."""

from repro.utils.math import (
    relu,
    relu_grad,
    sigmoid,
    sigmoid_grad,
    softplus,
    trunc_exp,
    normalize_rows,
)
from repro.utils.rng import seeded_rng, derive_seed

__all__ = [
    "relu",
    "relu_grad",
    "sigmoid",
    "sigmoid_grad",
    "softplus",
    "trunc_exp",
    "normalize_rows",
    "seeded_rng",
    "derive_seed",
]
