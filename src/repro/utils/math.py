"""Vectorised math primitives shared by the NeRF substrate.

All functions operate element-wise on NumPy arrays and are safe for the
float32 ranges produced by the renderer (no overflow in ``exp``).
"""

from __future__ import annotations

import numpy as np

_EXP_CLIP = 15.0


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`relu` with respect to its input."""
    return (x > 0.0).astype(x.dtype)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out.astype(x.dtype, copy=False)


def sigmoid_grad(y: np.ndarray) -> np.ndarray:
    """Derivative of the sigmoid expressed in terms of its *output* ``y``."""
    return y * (1.0 - y)


def softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))``."""
    return np.logaddexp(0.0, x)


def trunc_exp(x: np.ndarray) -> np.ndarray:
    """``exp`` with the input clipped, as used by Instant-NGP for density."""
    return np.exp(np.clip(x, -_EXP_CLIP, _EXP_CLIP))


def normalize_rows(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Return ``x`` with each trailing-axis vector scaled to unit L2 norm."""
    norm = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norm, eps)
