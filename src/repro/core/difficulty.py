"""Pixel rendering difficulty (Eq. 3) and per-probe budget selection.

A probe ray is rendered once at the full budget ``ns``; volume rendering is
then *re-composited* with each candidate prefix ``ns_i`` (cheap — the MLP
outputs are reused, Section 4.2).  The difficulty of candidate ``ns_i`` is

    rd_i = max(|r_ns - r_nsi|, |g_ns - g_nsi|, |b_ns - b_nsi|)

and the pixel's budget is the smallest candidate with ``rd_i <= delta``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.nerf.volume import composite, composite_subsample


def rendering_difficulty(full_rgb: np.ndarray, candidate_rgb: np.ndarray) -> np.ndarray:
    """Eq. (3): max channel deviation from the full-budget render.

    Args:
        full_rgb: ``(R, 3)`` colors at the full budget.
        candidate_rgb: ``(R, 3)`` colors at a candidate budget.

    Returns:
        ``(R,)`` difficulties.
    """
    return np.max(np.abs(full_rgb - candidate_rgb), axis=-1)


def select_sample_budgets(
    sigmas: np.ndarray,
    colors: np.ndarray,
    deltas: np.ndarray,
    candidates: Sequence[int],
    threshold: float,
    background: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Choose each probe ray's budget from candidate prefix renders.

    Args:
        sigmas / colors / deltas: Full-budget predictions, ``(R, N[,3])``.
        candidates: Ascending candidate budgets; the last entry must be the
            full budget ``N``.
        threshold: Difficulty threshold ``delta``.

    Returns:
        ``(budgets, full_rgb)``: the ``(R,)`` selected budgets and the
        ``(R, 3)`` full-budget colors (Phase I's render of the probes).
    """
    n = sigmas.shape[-1]
    candidates = list(candidates)
    if candidates[-1] != n:
        raise ValueError(
            f"last candidate must equal the full budget ({n}), got {candidates[-1]}"
        )
    full_rgb, _ = composite(sigmas, colors, deltas, background)
    num_rays = sigmas.shape[0]
    budgets = np.full(num_rays, n, dtype=np.int64)
    undecided = np.ones(num_rays, dtype=bool)
    for ns_i in candidates[:-1]:
        if not undecided.any():
            break
        rgb_i = composite_subsample(sigmas, colors, deltas, ns_i, background)
        rd = rendering_difficulty(full_rgb, rgb_i)
        accept = undecided & (rd <= threshold)
        budgets[accept] = ns_i
        undecided &= ~accept
    return budgets, full_rgb
