"""Forward temporal reprojection: warp geometry and keyframe scheduling.

The video pipeline's profile-guided idiom turned on the time axis: the
previous frame already computed most of this frame's pixels, so measure
where they land under the camera delta and reuse them instead of
re-marching rays through the MLP.

Three pure-geometry primitives live here (no model evaluation — every
quantity is derived from camera intrinsics/poses and the keyframe's
budget map, which is exactly why the serving layer can afford to run
them per frame):

* :func:`warp_sources` — for every pixel of the new frame, the source
  pixel of the previous frame whose content lands there when the world
  is approximated by a proxy depth along each ray, plus a *parallax
  sensitivity* bound (how far the source moves when the unknown true
  depth varies around the proxy).  Depth-insensitive pixels warp
  reliably no matter what the scene actually contains.
* :func:`classify_rays` — the converged / refinable / fresh split that
  drives per-ray skipping: converged rays reuse the warped pixel at
  scan-out cost, refinable rays re-render at a reduced budget, fresh
  rays (disocclusions, out-of-view) pay the full trace.
* :func:`plan_overlap` — the adaptive keyframe scheduler's online
  estimate of ``temporal_deltas`` ray-budget overlap: the fraction of
  pixels whose warped keyframe budget still matches the budget the
  reused plan assigns them.  When the camera drifts far enough that the
  measured overlap drops below a calibrated threshold, the difficulty
  structure has moved and Phase I must re-probe.

Everything downstream (renderer, serving degrade, experiments) consumes
these through :class:`ReprojectionConfig`, the one knob bundle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Scene centre of the unit-cube scenes every workbench path orbits —
#: the default proxy-depth anchor (see :attr:`ReprojectionConfig.depth`).
SCENE_CENTER = np.array([0.5, 0.5, 0.5])

#: Relative spread of the proxy depth used to bound parallax sensitivity:
#: the source coordinate is projected at ``depth * (1 ± spread)`` and the
#: distance between the two projections bounds the warp error any true
#: depth inside that band can cause.
DEPTH_SPREAD = 0.25

#: Ray classes of the reprojection pass.
RAY_CONVERGED = "converged"
RAY_REFINABLE = "refinable"
RAY_FRESH = "fresh"


@dataclass(frozen=True)
class ReprojectionConfig:
    """Knobs of the temporal-reprojection pass.

    Attributes:
        converged_px: Parallax-sensitivity ceiling (pixels) below which a
            ray is *converged* — its warped pixel is reused outright.
            The renderer thresholds the sensitivity a ray has
            *accumulated* since it last rendered, so this also bounds
            total drift across chained warped frames.
        refine_px: Sensitivity ceiling for *refinable* rays, which
            re-render at ``refine_fraction`` of their plan budget;
            anything above is *fresh* (full budget).
        refine_fraction: Budget multiplier of refinable rays, in (0, 1].
        validation_stride: Every ``stride``-th converged ray is rendered
            anyway and compared against its warped value — the measured
            PSNR feeds the guard.  ``0`` disables validation (the guard
            then never trips).
        min_psnr: PSNR guard (dB): when the validation rays' warp error
            exceeds this floor the whole frame falls back to ordinary
            plan reuse, so quality never silently regresses.
        depth: Proxy depth (distance along each ray) used by the warp;
            ``None`` measures the camera's distance to the scene centre.
    """

    converged_px: float = 1.0
    refine_px: float = 3.0
    refine_fraction: float = 0.5
    validation_stride: int = 16
    min_psnr: float = 24.0
    depth: Optional[float] = None

    def __post_init__(self) -> None:
        if self.converged_px < 0 or self.refine_px < self.converged_px:
            raise ConfigurationError(
                "need 0 <= converged_px <= refine_px, got "
                f"{self.converged_px} / {self.refine_px}"
            )
        if not 0.0 < self.refine_fraction <= 1.0:
            raise ConfigurationError(
                f"refine_fraction must be in (0, 1], got {self.refine_fraction}"
            )
        if self.validation_stride < 0:
            raise ConfigurationError("validation_stride must be >= 0")

    def cache_key(self) -> Tuple:
        """Hashable identity for workbench memoisation."""
        return (
            "reproject",
            self.converged_px,
            self.refine_px,
            self.refine_fraction,
            self.validation_stride,
            self.min_psnr,
            self.depth,
        )


def _proxy_depth(camera, depth: Optional[float]) -> float:
    if depth is not None:
        return float(depth)
    return float(np.linalg.norm(camera.position - SCENE_CENTER))


def _project_into(prev_camera, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project world ``points`` into ``prev_camera``'s pixel grid.

    Returns float ``(rows, cols, in_front)`` under the repo's OpenGL
    convention (camera looks down ``-z``; see ``Camera.pixel_rays``).
    """
    pose = prev_camera.camera_to_world
    rot = pose[:3, :3]
    cam = (points - pose[:3, 3]) @ rot  # == rot.T @ (p - t), row-wise
    z = cam[:, 2]
    in_front = z < -1e-9
    safe = np.where(in_front, -z, 1.0)
    x = cam[:, 0] / safe
    y = cam[:, 1] / safe
    cols = x * prev_camera.focal + prev_camera.width / 2.0 - 0.5
    rows = -y * prev_camera.focal + prev_camera.height / 2.0 - 0.5
    return rows, cols, in_front


def warp_sources(
    camera,
    prev_camera,
    depth: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Forward-warp correspondence from ``prev_camera`` to ``camera``.

    For every pixel of the new frame, walk its ray to the proxy depth and
    project that world point back into the previous frame.

    Returns:
        ``(src_ids, valid, sensitivity_px)`` — flat source pixel index in
        the previous frame (nearest neighbour), a validity mask (source
        in front of and inside the previous frame at every probed depth),
        and the parallax-sensitivity bound in pixels: the screen-space
        distance between the projections at ``depth * (1 ± DEPTH_SPREAD)``.
        Invalid pixels carry ``src_ids`` clamped in range and infinite
        sensitivity, so any threshold classifies them fresh.
    """
    origins, directions = camera.pixel_rays()
    t0 = _proxy_depth(camera, depth)
    h, w = prev_camera.height, prev_camera.width

    rows0, cols0, front0 = _project_into(prev_camera, origins + directions * t0)
    rows_n, cols_n, front_n = _project_into(
        prev_camera, origins + directions * (t0 * (1.0 - DEPTH_SPREAD))
    )
    rows_f, cols_f, front_f = _project_into(
        prev_camera, origins + directions * (t0 * (1.0 + DEPTH_SPREAD))
    )

    src_rows = np.rint(rows0).astype(np.int64)
    src_cols = np.rint(cols0).astype(np.int64)
    inside = (
        (src_rows >= 0) & (src_rows < h) & (src_cols >= 0) & (src_cols < w)
    )
    valid = front0 & front_n & front_f & inside
    sensitivity = np.where(
        valid, np.hypot(rows_n - rows_f, cols_n - cols_f), np.inf
    )
    src_ids = (
        np.clip(src_rows, 0, h - 1) * w + np.clip(src_cols, 0, w - 1)
    )
    return src_ids, valid, sensitivity


def classify_rays(
    sensitivity: np.ndarray,
    valid: np.ndarray,
    config: ReprojectionConfig,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The converged / refinable / fresh split as boolean masks.

    Every pixel lands in exactly one class: converged pixels warp at
    scan-out cost, refinable pixels re-render at a reduced budget, fresh
    pixels pay the full trace (disocclusions and anything the parallax
    bound cannot vouch for).
    """
    converged = valid & (sensitivity <= config.converged_px)
    refinable = valid & ~converged & (sensitivity <= config.refine_px)
    fresh = ~(converged | refinable)
    return converged, refinable, fresh


def plan_overlap(
    camera,
    keyframe_camera,
    budgets: np.ndarray,
    depth: Optional[float] = None,
) -> float:
    """Measured ray-budget overlap between a reused plan and its keyframe.

    The online form of
    :meth:`~repro.exec.sequence.SequenceTrace.temporal_deltas` ray-budget
    overlap: the reused plan assigns pixel ``i`` the budget
    ``budgets[i]``, while the keyframe actually measured difficulty where
    pixel ``i``'s content used to be — ``budgets[warp(i)]``.  The
    returned fraction of pixels where the two agree (out-of-view pixels
    count as disagreement) is the staleness signal adaptive keyframe
    scheduling thresholds: identical poses score 1.0 and the score decays
    as the camera drifts off the keyframe.
    """
    budgets = np.asarray(budgets)
    if budgets.size != camera.height * camera.width:
        raise ConfigurationError(
            f"plan covers {budgets.size} pixels, camera has "
            f"{camera.height * camera.width}"
        )
    src_ids, valid, _ = warp_sources(camera, keyframe_camera, depth=depth)
    match = valid & (budgets[src_ids] == budgets)
    return float(np.mean(match)) if budgets.size else 1.0
