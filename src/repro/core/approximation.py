"""Color/density decoupled approximation (Section 4.3).

Along each ray the samples are split into groups of ``n``; the color MLP
runs only on each group's first point (the *anchor*), and the colors of the
remaining points are linearly interpolated between the surrounding anchors
using the distances between sample points.  Densities are always computed
exactly — only the (dominant) color MLP cost shrinks, by roughly ``1/n``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def anchor_indices(num_points: int, group_size: int) -> np.ndarray:
    """Indices of the anchor points: ``0, n, 2n, ...`` (always non-empty)."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    return np.arange(0, num_points, group_size, dtype=np.int64)


def interpolate_group_colors(
    anchor_colors: np.ndarray,
    anchors: np.ndarray,
    t_vals: np.ndarray,
) -> np.ndarray:
    """Reconstruct all sample colors from anchor colors.

    Args:
        anchor_colors: ``(R, A, 3)`` colors computed by the color MLP at the
            anchor points.
        anchors: ``(A,)`` ascending anchor indices (from
            :func:`anchor_indices`).
        t_vals: ``(R, N)`` ray parameters (distances along the ray) of all
            sample points; interpolation weights use these actual distances
            as the paper specifies.

    Returns:
        ``(R, N, 3)`` colors; anchor positions carry their exact colors.
    """
    num_points = t_vals.shape[-1]
    positions = np.arange(num_points)
    # Index of the anchor at or before each position.
    seg = np.searchsorted(anchors, positions, side="right") - 1
    seg = np.clip(seg, 0, len(anchors) - 1)
    nxt = np.minimum(seg + 1, len(anchors) - 1)

    t_left = t_vals[:, anchors[seg]]
    t_right = t_vals[:, anchors[nxt]]
    span = t_right - t_left
    with np.errstate(invalid="ignore", divide="ignore"):
        frac = np.where(span > 1e-12, (t_vals - t_left) / np.maximum(span, 1e-12), 0.0)
    frac = np.clip(frac, 0.0, 1.0)

    left_c = anchor_colors[:, seg, :]
    right_c = anchor_colors[:, nxt, :]
    return left_c + frac[..., None] * (right_c - left_c)


def color_mlp_savings(num_points: int, group_size: int) -> float:
    """Fraction of color-MLP evaluations avoided for an ``num_points`` ray."""
    if num_points == 0:
        return 0.0
    anchors = len(anchor_indices(num_points, group_size))
    return 1.0 - anchors / num_points
