"""Result/statistics containers for the ASDR renderer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.sampling_plan import SamplingPlan
from repro.exec.frame_trace import FrameTrace
from repro.nerf.renderer import PhaseCounts


@dataclass
class ASDRRenderResult:
    """Output of a two-phase ASDR render.

    Attributes:
        image: ``(H, W, 3)`` rendered image.
        plan: The sampling plan chosen in Phase I (``None``-like plan with
            uniform budgets when adaptive sampling is disabled).
        num_rays: Total rays (pixels).
        density_points: Sample points whose density MLP ran (both phases).
        color_points: Sample points whose color MLP ran (both phases).
        interpolated_points: Points whose color came from the approximation
            unit instead of the color MLP.
        probe_points: Phase I sample points (subset of ``density_points``).
        phase_counts: FLOPs/bytes per pipeline phase.
        sample_counts: ``(H*W,)`` per-ray points actually marched in
            Phase II (after early termination, if enabled).
        trace: The :class:`~repro.exec.frame_trace.FrameTrace` this render
            executed — the simulator and profilers replay it instead of
            re-deriving rays/samples from ``(camera, budgets)``.
        reprojection: Temporal-reprojection record for frames rendered by
            :meth:`~repro.core.pipeline.ASDRRenderer.render_reprojected`
            (ray classification counts, guard PSNR, fallback flag);
            ``None`` for ordinary renders.
    """

    image: np.ndarray
    plan: SamplingPlan
    num_rays: int
    density_points: int
    color_points: int
    interpolated_points: int
    probe_points: int
    phase_counts: Dict[str, PhaseCounts]
    sample_counts: np.ndarray
    trace: Optional[FrameTrace] = None
    reprojection: Optional[Dict[str, object]] = None

    @property
    def total_flops(self) -> int:
        return sum(pc.flops for pc in self.phase_counts.values())

    @property
    def average_samples_per_ray(self) -> float:
        return self.density_points / self.num_rays if self.num_rays else 0.0

    @property
    def color_eval_fraction(self) -> float:
        """Fraction of density-evaluated points that also ran the color MLP."""
        return self.color_points / self.density_points if self.density_points else 0.0

    def summary(self) -> Dict[str, float]:
        """Compact dictionary for experiment tables."""
        return {
            "rays": self.num_rays,
            "density_points": self.density_points,
            "color_points": self.color_points,
            "interpolated_points": self.interpolated_points,
            "probe_points": self.probe_points,
            "avg_samples_per_ray": round(self.average_samples_per_ray, 2),
            "total_flops": self.total_flops,
        }
