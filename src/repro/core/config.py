"""Configuration objects for the ASDR algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


def _canonical(value):
    """Canonical, hashable form of a config value.

    Dataclasses become name-sorted ``(field, value)`` tuples and sequences
    become tuples, so two configurations holding the same values always
    produce the same key — unlike ``repr``, which is sensitive to field
    order, sequence type (list vs tuple) and subclass names.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _canonical(getattr(value, f.name)))
            for f in sorted(fields(value), key=lambda f: f.name)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, float):
        return float(value)
    return value


@dataclass
class AdaptiveSamplingConfig:
    """Adaptive sampling parameters (Section 4.2).

    Attributes:
        probe_stride: Distance ``d`` between probe pixels in both image
            directions (paper default 5).
        threshold: Difficulty threshold ``delta``; a candidate budget is
            accepted once its Eq. (3) difficulty is <= threshold.  The
            paper sweeps 0, 1/2048 and 1/256 (Figure 21a).
        candidate_fractions: Candidate budgets ``ns_i`` expressed as
            fractions of the full budget ``ns`` (ascending).  The paper's
            example uses budgets down to 12/192 = 1/16.
        min_samples: Lower bound on any pixel's budget.
    """

    probe_stride: int = 5
    threshold: float = 1.0 / 2048.0
    candidate_fractions: Sequence[float] = (1 / 16, 1 / 8, 1 / 4, 1 / 2, 3 / 4)
    min_samples: int = 4

    def __post_init__(self) -> None:
        if self.probe_stride < 1:
            raise ConfigurationError("probe_stride must be >= 1")
        if self.threshold < 0:
            raise ConfigurationError("threshold must be >= 0")
        fracs = list(self.candidate_fractions)
        if not fracs or any(not 0 < f < 1 for f in fracs):
            raise ConfigurationError(
                "candidate_fractions must be non-empty fractions in (0, 1)"
            )
        if sorted(fracs) != fracs:
            raise ConfigurationError("candidate_fractions must be ascending")

    def candidate_counts(self, full_samples: int) -> List[int]:
        """Concrete candidate budgets for a given full budget (ascending,
        ending with the full budget itself)."""
        counts = []
        for f in self.candidate_fractions:
            counts.append(max(self.min_samples, int(round(f * full_samples))))
        counts.append(full_samples)
        # Deduplicate while keeping order (tiny budgets may collide).
        seen = set()
        unique = []
        for c in counts:
            if c not in seen:
                seen.add(c)
                unique.append(c)
        return unique


@dataclass
class ApproximationConfig:
    """Color/density decoupling parameters (Section 4.3).

    Attributes:
        group_size: ``n``; the color MLP runs on one anchor point per group
            of ``n`` consecutive samples, remaining colors are linearly
            interpolated.  ``n = 1`` disables the approximation.
    """

    group_size: int = 2

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ConfigurationError("group_size must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.group_size > 1


@dataclass
class ASDRConfig:
    """Full algorithm configuration.

    Attributes:
        adaptive: Adaptive sampling settings; ``None`` disables Phase I and
            every ray uses the full budget.
        approximation: Color decoupling settings; ``None`` disables it.
        early_termination: Opacity threshold for classic early termination
            (Section 6.6); ``None`` disables it.
    """

    adaptive: Optional[AdaptiveSamplingConfig] = field(
        default_factory=AdaptiveSamplingConfig
    )
    approximation: Optional[ApproximationConfig] = field(
        default_factory=ApproximationConfig
    )
    early_termination: Optional[float] = None

    def __post_init__(self) -> None:
        if self.early_termination is not None and not 0 < self.early_termination <= 1:
            raise ConfigurationError("early_termination must lie in (0, 1]")

    def cache_key(self) -> Tuple:
        """Stable canonical key for memoising renders/traces per config."""
        return _canonical(self)
