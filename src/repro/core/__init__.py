"""ASDR's algorithmic contribution (Section 4 of the paper).

* :mod:`repro.core.difficulty` — pixel rendering difficulty, Eq. (3).
* :mod:`repro.core.sampling_plan` — probe-grid budgets and bilinear
  interpolation to all pixels (adaptive sampling, Section 4.2).
* :mod:`repro.core.approximation` — color/density decoupling via grouped
  color interpolation (Section 4.3).
* :mod:`repro.core.pipeline` — the two-phase ASDR renderer (Section 5.5).
"""

from repro.core.config import (
    AdaptiveSamplingConfig,
    ApproximationConfig,
    ASDRConfig,
)
from repro.core.difficulty import rendering_difficulty, select_sample_budgets
from repro.core.sampling_plan import SamplingPlan, probe_pixel_indices, interpolate_budgets
from repro.core.approximation import anchor_indices, interpolate_group_colors
from repro.core.pipeline import ASDRRenderer
from repro.core.stats import ASDRRenderResult

__all__ = [
    "AdaptiveSamplingConfig",
    "ApproximationConfig",
    "ASDRConfig",
    "rendering_difficulty",
    "select_sample_budgets",
    "SamplingPlan",
    "probe_pixel_indices",
    "interpolate_budgets",
    "anchor_indices",
    "interpolate_group_colors",
    "ASDRRenderer",
    "ASDRRenderResult",
]
