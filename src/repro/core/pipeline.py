"""The two-phase ASDR renderer (Sections 4 and 5.5).

Phase I — *initial computation for adaptive sampling*: a sparse probe grid
of pixels is rendered at the full budget; re-compositing the cached MLP
outputs at each candidate prefix yields the Eq. (3) difficulty, from which
each probe's budget is selected; budgets for the remaining pixels come from
bilinear interpolation.

Phase II — *full image rendering*: every non-probe ray is rendered with its
assigned budget; the color MLP runs only on group anchors and the
approximation unit interpolates the rest (Section 4.3); optional early
termination truncates rays whose accumulated opacity saturates.

Both phases dispatch rays through the shared wavefront scheduler
(:mod:`repro.exec.scheduler`) and record what they execute into a
:class:`~repro.exec.frame_trace.FrameTrace` — per wavefront: ray ids,
sample points, hit masks, post-early-termination used counts and the
anchor/interpolation structure.  The trace rides on the returned
:class:`~repro.core.stats.ASDRRenderResult` so the accelerator simulator
and the profilers replay this render instead of re-deriving it.

Video sequences are rendered by :meth:`ASDRRenderer.render_sequence`,
which adds two temporal-reuse levers on top of the per-frame path:
bit-identical camera poses replay the earlier frame outright, and
non-keyframes skip Phase I entirely, rendering with the previous
keyframe's sampling plan (:meth:`ASDRRenderer.render_with_plan`) — the
profile-guided shortcut temporal coherence buys.

The renderer works with any model exposing the Instant-NGP query interface
(InstantNGP or TensoRF), mirroring Section 6.8.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.approximation import anchor_indices, interpolate_group_colors
from repro.core.config import ASDRConfig
from repro.core.difficulty import select_sample_budgets
from repro.core.reprojection import (
    ReprojectionConfig,
    classify_rays,
    plan_overlap,
    warp_sources,
)
from repro.core.sampling_plan import (
    SamplingPlan,
    interpolate_budgets,
    probe_pixel_indices,
)
from repro.core.stats import ASDRRenderResult
from repro.errors import ConfigurationError
from repro.exec.frame_trace import (
    PHASE_MAIN,
    PHASE_PROBE,
    FrameTrace,
    TraceWavefront,
)
from repro.exec.scheduler import iter_budget_wavefronts, iter_wavefronts
from repro.exec.sequence import SequenceRender, render_camera_path
from repro.metrics.image import psnr
from repro.nerf.rays import sample_along_rays
from repro.nerf.renderer import PhaseCounts
from repro.nerf.volume import composite, composite_prefix, early_termination_counts
from repro.scenes.cameras import Camera


def _new_phase_counts() -> Dict[str, PhaseCounts]:
    return {name: PhaseCounts() for name in ("embedding", "density", "color", "volume")}


class ASDRRenderer:
    """Adaptive-sampling, color-decoupled renderer.

    Args:
        model: Radiance field with ``query_density`` / ``query_color``.
        config: Algorithm configuration (see :class:`ASDRConfig`).
        num_samples: Full per-ray budget ``ns`` (paper: 192).
        background: Background intensity.
        batch_rays: Ray batch size bounding peak memory.
    """

    def __init__(
        self,
        model,
        config: Optional[ASDRConfig] = None,
        num_samples: int = 64,
        background: float = 1.0,
        batch_rays: int = 4096,
    ) -> None:
        self.model = model
        self.config = config or ASDRConfig()
        self.num_samples = num_samples
        self.background = background
        self.batch_rays = batch_rays

    # ------------------------------------------------------------------
    # Phase I
    # ------------------------------------------------------------------
    def plan_sampling(self, camera: Camera) -> Tuple[SamplingPlan, np.ndarray, Dict[str, PhaseCounts], int]:
        """Run Phase I and return the sampling plan.

        Returns:
            ``(plan, probe_rgb, phase_counts, probe_points)`` where
            ``probe_rgb`` holds the probes' full-budget colors (reused for
            their pixels so Phase II never re-renders them).
        """
        plan, probe_rgb, counts, probe_points, _ = self._phase1(camera)
        return plan, probe_rgb, counts, probe_points

    def _phase1(
        self, camera: Camera
    ) -> Tuple[SamplingPlan, np.ndarray, Dict[str, PhaseCounts], int, List[TraceWavefront]]:
        """Phase I plus the probe wavefronts it executed (for the trace)."""
        counts = _new_phase_counts()
        n_pixels = camera.height * camera.width
        adaptive = self.config.adaptive
        if adaptive is None:
            budgets = np.full(n_pixels, self.num_samples, dtype=np.int64)
            plan = SamplingPlan(
                budgets=budgets,
                probe_indices=np.empty(0, dtype=np.int64),
                probe_budgets=np.empty(0, dtype=np.int64),
                full_budget=self.num_samples,
            )
            return plan, np.empty((0, 3)), counts, 0, []

        probe_idx, rows, cols = probe_pixel_indices(
            camera.height, camera.width, adaptive.probe_stride
        )
        origins, directions = camera.rays_for_pixels(probe_idx)
        candidates = adaptive.candidate_counts(self.num_samples)

        probe_budgets = np.empty(len(probe_idx), dtype=np.int64)
        probe_rgb = np.empty((len(probe_idx), 3))
        probe_points = 0
        wavefronts: List[TraceWavefront] = []
        for ids in iter_wavefronts(np.arange(len(probe_idx)), self.batch_rays):
            sl = slice(int(ids[0]), int(ids[-1]) + 1)
            sigmas, colors, deltas, hit, points = self._predict(
                origins[sl], directions[sl], self.num_samples, counts
            )
            probe_points += int(hit.sum()) * self.num_samples
            budgets_b, rgb_b = select_sample_budgets(
                sigmas, colors, deltas, candidates, adaptive.threshold, self.background
            )
            # Rays that miss the scene need only the minimum budget.
            budgets_b = np.where(hit, budgets_b, candidates[0])
            probe_budgets[sl] = budgets_b
            probe_rgb[sl] = rgb_b
            # Adaptive-sampling unit work: one subtract/compare per
            # candidate per channel (Eq. 3 hardware of Section 5.4).
            counts["volume"].add(len(budgets_b) * len(candidates) * 6)
            used = np.where(hit, self.num_samples, 0).astype(np.int64)
            wavefronts.append(
                TraceWavefront.from_samples(
                    phase=PHASE_PROBE,
                    budget=self.num_samples,
                    ray_ids=probe_idx[sl],
                    hit=hit,
                    points=points,
                    used=used,
                    color_used=used,
                )
            )

        budgets = interpolate_budgets(
            probe_budgets, rows, cols, camera.height, camera.width
        )
        budgets[probe_idx] = probe_budgets
        plan = SamplingPlan(
            budgets=budgets,
            probe_indices=probe_idx,
            probe_budgets=probe_budgets,
            full_budget=self.num_samples,
            num_candidates=len(candidates),
        )
        return plan, probe_rgb, counts, probe_points, wavefronts

    # ------------------------------------------------------------------
    # Phase II
    # ------------------------------------------------------------------
    def render_image(self, camera: Camera) -> ASDRRenderResult:
        """Render a full image through both ASDR phases."""
        plan, probe_rgb, counts, probe_points, wavefronts = self._phase1(camera)
        n_pixels = camera.height * camera.width
        image = np.zeros((n_pixels, 3))
        sample_counts = np.zeros(n_pixels, dtype=np.int64)

        # Probe pixels were fully rendered in Phase I; reuse their colors.
        rendered = np.zeros(n_pixels, dtype=bool)
        if len(plan.probe_indices):
            image[plan.probe_indices] = probe_rgb
            sample_counts[plan.probe_indices] = self.num_samples
            rendered[plan.probe_indices] = True

        remaining = np.nonzero(~rendered)[0]
        totals = self._render_main(
            camera, plan.budgets, remaining, image, sample_counts, counts, wavefronts
        )
        return self._build_result(
            camera,
            plan,
            image,
            sample_counts,
            counts,
            wavefronts,
            density_points=probe_points + totals[0],
            color_points=probe_points + totals[1],
            interpolated_points=totals[2],
            probe_points=probe_points,
            difficulty_evals=len(plan.probe_indices) * plan.num_candidates,
        )

    def render_with_plan(self, camera: Camera, plan: SamplingPlan) -> ASDRRenderResult:
        """Render a frame steered by a *reused* sampling plan (no Phase I).

        The profile-guided path of sequence rendering: temporal coherence
        makes the previous keyframe's per-pixel budget map a good proxy
        for this frame's difficulty, so probe rendering, difficulty
        evaluation and budget interpolation are all skipped — every pixel
        renders through Phase II at the budget the plan assigns it.  The
        emitted trace records no probe wavefronts and zero difficulty
        evaluations, so the simulator automatically prices the skipped
        Phase I work.
        """
        n_pixels = camera.height * camera.width
        if len(plan.budgets) != n_pixels:
            raise ConfigurationError(
                f"reused plan covers {len(plan.budgets)} pixels, camera has "
                f"{n_pixels}"
            )
        counts = _new_phase_counts()
        image = np.zeros((n_pixels, 3))
        sample_counts = np.zeros(n_pixels, dtype=np.int64)
        wavefronts: List[TraceWavefront] = []
        totals = self._render_main(
            camera,
            plan.budgets,
            np.arange(n_pixels, dtype=np.int64),
            image,
            sample_counts,
            counts,
            wavefronts,
        )
        reused = SamplingPlan(
            budgets=plan.budgets,
            probe_indices=np.empty(0, dtype=np.int64),
            probe_budgets=np.empty(0, dtype=np.int64),
            full_budget=plan.full_budget,
            num_candidates=0,
        )
        return self._build_result(
            camera,
            reused,
            image,
            sample_counts,
            counts,
            wavefronts,
            density_points=totals[0],
            color_points=totals[1],
            interpolated_points=totals[2],
            probe_points=0,
            difficulty_evals=0,
        )

    def render_reprojected(
        self,
        camera: Camera,
        plan: SamplingPlan,
        prev_camera: Camera,
        prev_image: np.ndarray,
        config: ReprojectionConfig,
        accum_sens: Optional[np.ndarray] = None,
    ) -> ASDRRenderResult:
        """Render a plan-reuse frame with forward temporal reprojection.

        The previous rendered frame's delivered pixels are warped along
        the camera delta (:func:`~repro.core.reprojection.warp_sources`)
        and every ray is classified:

        * **converged** — parallax-insensitive warp: the warped pixel is
          reused outright, so the ray appears in *no* wavefront and the
          engines charge it nothing; it is counted in the trace's
          ``reprojected_pixels`` so scan-out still prices its delivery;
        * **refinable** — the warp is plausible but not trusted: the ray
          re-renders at ``refine_fraction`` of its plan budget;
        * **fresh** — disoccluded or out-of-view: full plan budget.

        Classification uses each ray's *accumulated* sensitivity: its
        per-step parallax bound plus ``accum_sens``, the sensitivity the
        ray has carried since it last actually rendered (sub-pixel warps
        reuse the same source pixel, so warp error compounds invisibly
        across chained frames — the accumulator makes the total drift
        the thresholded quantity, bounding chain error by
        ``converged_px``).  The updated accumulator (warped rays carry
        their total, rendered rays reset to zero) is returned under
        ``result.reprojection["accum"]``.

        A sparse validation subset of the converged rays renders anyway;
        the PSNR between their warped and rendered colors is the guard —
        below ``config.min_psnr`` the frame falls back to ordinary plan
        reuse (the validation work already executed stays in the trace),
        so quality never silently regresses.
        """
        n_pixels = camera.height * camera.width
        if len(plan.budgets) != n_pixels:
            raise ConfigurationError(
                f"reused plan covers {len(plan.budgets)} pixels, camera has "
                f"{n_pixels}"
            )
        prev_flat = np.asarray(prev_image, dtype=np.float64).reshape(-1, 3)
        if prev_flat.shape[0] != prev_camera.height * prev_camera.width:
            raise ConfigurationError(
                f"previous image holds {prev_flat.shape[0]} pixels, previous "
                f"camera has {prev_camera.height * prev_camera.width}"
            )
        src_ids, valid, sensitivity = warp_sources(
            camera, prev_camera, depth=config.depth
        )
        if accum_sens is not None:
            if accum_sens.shape != (n_pixels,):
                raise ConfigurationError(
                    f"accum_sens covers {accum_sens.shape} pixels, camera "
                    f"has {n_pixels}"
                )
            sensitivity = sensitivity + accum_sens
        converged_m, refinable_m, _fresh_m = classify_rays(
            sensitivity, valid, config
        )
        converged = np.nonzero(converged_m)[0]
        if config.validation_stride > 0 and len(converged):
            validation = converged[:: config.validation_stride]
        else:
            validation = np.empty(0, dtype=np.int64)
        skipped = np.setdiff1d(converged, validation, assume_unique=True)

        counts = _new_phase_counts()
        image = np.zeros((n_pixels, 3))
        sample_counts = np.zeros(n_pixels, dtype=np.int64)
        wavefronts: List[TraceWavefront] = []
        full_budgets = np.asarray(plan.budgets, dtype=np.int64)
        totals = [0, 0, 0]

        def run(budgets: np.ndarray, ray_ids: np.ndarray) -> None:
            got = self._render_main(
                camera, budgets, ray_ids, image, sample_counts, counts,
                wavefronts,
            )
            for i in range(3):
                totals[i] += got[i]

        # The validation subset renders first, at full plan budget — the
        # guard must measure warp error before any pixel is committed.
        if len(validation):
            run(full_budgets, validation)
        warped = prev_flat[src_ids]
        guard_psnr = float("inf")
        if len(validation):
            guard_psnr = float(psnr(warped[validation], image[validation]))
        fallback = bool(len(converged)) and guard_psnr < config.min_psnr
        if fallback:
            # Guard tripped: warp is untrustworthy this frame.  Everything
            # not yet rendered runs at its plan budget — the frame
            # degenerates to ordinary plan reuse, with the validation
            # wavefronts kept in the trace (their work really ran).
            rest = np.setdiff1d(
                np.arange(n_pixels, dtype=np.int64), validation,
                assume_unique=True,
            )
            run(full_budgets, rest)
            skipped = np.empty(0, dtype=np.int64)
        else:
            refined = full_budgets.copy()
            refinable = np.nonzero(refinable_m)[0]
            refined[refinable] = np.maximum(
                1,
                (refined[refinable] * config.refine_fraction).astype(np.int64),
            )
            remaining = np.nonzero(~converged_m)[0]
            if len(remaining):
                run(refined, remaining)
            image[skipped] = warped[skipped]
            sample_counts[skipped] = 0

        new_accum = np.zeros(n_pixels)
        if len(skipped):
            new_accum[skipped] = sensitivity[skipped]

        reused = SamplingPlan(
            budgets=plan.budgets,
            probe_indices=np.empty(0, dtype=np.int64),
            probe_budgets=np.empty(0, dtype=np.int64),
            full_budget=plan.full_budget,
            num_candidates=0,
        )
        return self._build_result(
            camera,
            reused,
            image,
            sample_counts,
            counts,
            wavefronts,
            density_points=totals[0],
            color_points=totals[1],
            interpolated_points=totals[2],
            probe_points=0,
            difficulty_evals=0,
            reprojected_pixels=int(len(skipped)),
            reprojection={
                "converged": int(converged_m.sum()),
                "refinable": int(refinable_m.sum()),
                "fresh": int(_fresh_m.sum()),
                "validated": int(len(validation)),
                "reprojected": int(len(skipped)),
                "psnr": guard_psnr,
                "fallback": fallback,
                "accum": new_accum,
            },
        )

    def render_sequence(
        self,
        cameras: Sequence[Camera],
        probe_interval: int = 1,
        reuse_poses: bool = True,
        path_key: Tuple = (),
        reproject: Optional[ReprojectionConfig] = None,
        adaptive_overlap: Optional[float] = None,
    ) -> SequenceRender:
        """Render a camera path with cross-frame temporal reuse.

        Four reuse levers run on top of the per-frame pipeline:

        * **pose replay** — a camera whose pose/intrinsics are
          bit-identical to an earlier frame's replays that frame's result
          (images and counts match exactly by construction);
        * **plan reuse** — Phase I runs only on keyframes (every
          ``probe_interval``-th rendered frame; ``0`` means the first
          frame only); the frames between render with the last keyframe's
          budget map via :meth:`render_with_plan`;
        * **temporal reprojection** (``reproject``) — non-keyframes warp
          the previous rendered frame's pixels along the camera delta and
          skip converged rays entirely (:meth:`render_reprojected`),
          PSNR-guarded;
        * **adaptive keyframing** (``adaptive_overlap``) — the fixed
          ``probe_interval`` cadence is replaced by an online staleness
          measurement: Phase I re-probes only when the measured
          plan/keyframe ray-budget overlap
          (:func:`~repro.core.reprojection.plan_overlap`) drops below the
          threshold.

        Args:
            cameras: The path's cameras (e.g.
                :meth:`repro.scenes.cameras.CameraPath.cameras`).
            probe_interval: Phase I cadence; ``1`` re-probes every frame
                (plan reuse off), ``0`` probes the first frame only.
            reuse_poses: Disable to force every frame to render fresh.
            path_key: Identity recorded on the
                :class:`~repro.exec.sequence.SequenceTrace`.
            reproject: Arm temporal reprojection for non-keyframes.
            adaptive_overlap: Overlap threshold in ``(0, 1]``; when set,
                the fixed cadence is ignored and re-probing is driven by
                the measured overlap (recorded per frame on
                ``result.reprojection["overlap"]``).
        """
        if probe_interval < 0:
            raise ConfigurationError("probe_interval must be >= 0")
        if adaptive_overlap is not None and not 0.0 < adaptive_overlap <= 1.0:
            raise ConfigurationError(
                f"adaptive_overlap must be in (0, 1], got {adaptive_overlap}"
            )
        # Pose replay lives in the shared driver; this closure only
        # decides, per freshly rendered frame, whether Phase I runs and
        # whether Phase II reprojects.
        state: Dict[str, object] = {
            "plan": None,
            "since": 0,
            "keyframe_camera": None,
            "prev_camera": None,
            "prev_image": None,
            "accum": None,
        }
        planned_fresh: List[bool] = []

        def render_fn(camera: Camera) -> ASDRRenderResult:
            plan: Optional[SamplingPlan] = state["plan"]
            overlap: Optional[float] = None
            if plan is None or len(plan.budgets) != camera.height * camera.width:
                fresh = True
            elif adaptive_overlap is not None:
                overlap = plan_overlap(
                    camera,
                    state["keyframe_camera"],
                    plan.budgets,
                    depth=reproject.depth if reproject is not None else None,
                )
                fresh = overlap < adaptive_overlap
            else:
                fresh = probe_interval > 0 and state["since"] >= probe_interval
            if fresh:
                result = self.render_image(camera)
                state["plan"] = result.plan
                state["keyframe_camera"] = camera
                state["since"] = 1
                state["accum"] = None
            else:
                if reproject is not None and state["prev_image"] is not None:
                    result = self.render_reprojected(
                        camera,
                        plan,
                        state["prev_camera"],
                        state["prev_image"],
                        reproject,
                        accum_sens=state["accum"],
                    )
                    info = dict(result.reprojection)
                    state["accum"] = info.pop("accum")
                    result.reprojection = info
                else:
                    result = self.render_with_plan(camera, plan)
                    state["accum"] = None
                state["since"] += 1
            if overlap is not None:
                info = dict(result.reprojection or {})
                info["overlap"] = overlap
                result.reprojection = info
            state["prev_camera"] = camera
            state["prev_image"] = result.image
            planned_fresh.append(fresh)
            return result

        outcome = render_camera_path(
            render_fn,
            cameras,
            path_key=path_key,
            kind="asdr",
            reuse_poses=reuse_poses,
        )
        fresh_flags = iter(planned_fresh)
        outcome.trace.planned = [
            False if source is not None else next(fresh_flags)
            for source in outcome.trace.replays
        ]
        return outcome

    # ------------------------------------------------------------------
    def _render_main(
        self,
        camera: Camera,
        budgets: np.ndarray,
        ray_ids: np.ndarray,
        image: np.ndarray,
        sample_counts: np.ndarray,
        counts: Dict[str, PhaseCounts],
        wavefronts: List[TraceWavefront],
    ) -> Tuple[int, int, int]:
        """Run Phase II over ``ray_ids`` at their budgets, accumulating
        into the frame buffers; returns
        ``(density, color, interpolated)`` point totals."""
        density_points = color_points = interpolated_points = 0
        for budget, ids in iter_budget_wavefronts(
            budgets[ray_ids], self.batch_rays, ray_ids=ray_ids
        ):
            rgb, used, color_used, points, hit, evals = self._render_group(
                camera, ids, budget, counts
            )
            image[ids] = rgb
            sample_counts[ids] = used
            density_points += evals[0]
            color_points += evals[1]
            interpolated_points += evals[2]
            wavefronts.append(
                TraceWavefront.from_samples(
                    phase=PHASE_MAIN,
                    budget=budget,
                    ray_ids=ids,
                    hit=hit,
                    points=points,
                    used=used,
                    color_used=color_used,
                )
            )
        return density_points, color_points, interpolated_points

    def _build_result(
        self,
        camera: Camera,
        plan: SamplingPlan,
        image: np.ndarray,
        sample_counts: np.ndarray,
        counts: Dict[str, PhaseCounts],
        wavefronts: List[TraceWavefront],
        density_points: int,
        color_points: int,
        interpolated_points: int,
        probe_points: int,
        difficulty_evals: int,
        reprojected_pixels: int = 0,
        reprojection: Optional[Dict[str, object]] = None,
    ) -> ASDRRenderResult:
        n_pixels = camera.height * camera.width
        approx = self.config.approximation
        trace = FrameTrace(
            num_pixels=n_pixels,
            full_budget=self.num_samples,
            kind="asdr",
            group_size=approx.group_size if approx is not None and approx.enabled else 1,
            difficulty_evals=difficulty_evals,
            wavefronts=wavefronts,
            reprojected_pixels=reprojected_pixels,
        )
        return ASDRRenderResult(
            image=image.reshape(camera.height, camera.width, 3),
            plan=plan,
            num_rays=n_pixels,
            density_points=density_points,
            color_points=color_points,
            interpolated_points=interpolated_points,
            probe_points=probe_points,
            phase_counts=counts,
            sample_counts=sample_counts,
            trace=trace,
            reprojection=reprojection,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _predict(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        num_samples: int,
        counts: Dict[str, PhaseCounts],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Full (density + color) prediction used by Phase I probes."""
        points, deltas, hit = sample_along_rays(origins, directions, num_samples)
        flat = points.reshape(-1, 3)
        dirs_rep = np.repeat(directions, num_samples, axis=0)
        sigma, geo = self.model.query_density(flat)
        rgb = self.model.query_color(geo, dirs_rep)
        r = origins.shape[0]
        sigmas = sigma.reshape(r, num_samples) * hit[:, None]
        colors = rgb.reshape(r, num_samples, 3)
        n_points = int(hit.sum()) * num_samples
        self._charge(counts, n_points, n_points)
        counts["volume"].add(n_points * 10)
        return sigmas, colors, deltas, hit, points

    def _render_group(
        self,
        camera: Camera,
        ray_ids: np.ndarray,
        budget: int,
        counts: Dict[str, PhaseCounts],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, Tuple[int, int, int]]:
        """Render one wavefront of rays sharing a sample budget.

        Returns:
            ``(rgb, used, color_used, points, hit,
            (density_evals, color_evals, interpolated))``.
        """
        origins, directions = camera.rays_for_pixels(ray_ids)
        points, deltas, hit = sample_along_rays(origins, directions, budget)
        r = len(ray_ids)
        t_vals = np.cumsum(deltas, axis=-1)

        flat = points.reshape(-1, 3)
        sigma, geo = self.model.query_density(flat)
        sigmas = sigma.reshape(r, budget) * hit[:, None]
        geo = geo.reshape(r, budget, -1)

        used = np.full(r, budget, dtype=np.int64)
        if self.config.early_termination is not None:
            used = early_termination_counts(sigmas, deltas, self.config.early_termination)
            mask = np.arange(budget)[None, :] < used[:, None]
            sigmas = sigmas * mask
        used = used * hit

        # Hardware marches rays incrementally, so early termination saves
        # MLP work even though this vectorised implementation evaluates the
        # full budget; operation accounting therefore uses ``used``.
        approx = self.config.approximation
        if approx is not None and approx.enabled and budget > approx.group_size:
            anchors = anchor_indices(budget, approx.group_size)
            anchor_geo = geo[:, anchors, :].reshape(-1, geo.shape[-1])
            anchor_dirs = np.repeat(directions, len(anchors), axis=0)
            anchor_rgb = self.model.query_color(anchor_geo, anchor_dirs)
            anchor_rgb = anchor_rgb.reshape(r, len(anchors), 3)
            colors = interpolate_group_colors(anchor_rgb, anchors, t_vals)
            # Anchors at or beyond a ray's termination point never run.
            color_used = np.searchsorted(anchors, used, side="left").astype(np.int64)
            color_evals = int(color_used.sum())
            interpolated = int(used.sum()) - color_evals
            # Approximation unit: one lerp (4 FLOPs x 3 channels) per
            # interpolated point.
            counts["volume"].add(interpolated * 12)
        else:
            dirs_rep = np.repeat(directions, budget, axis=0)
            colors = self.model.query_color(
                geo.reshape(-1, geo.shape[-1]), dirs_rep
            ).reshape(r, budget, 3)
            color_used = used.copy()
            color_evals = int(used.sum())
            interpolated = 0

        density_evals = int(used.sum())
        self._charge(counts, density_evals, color_evals)
        counts["volume"].add(density_evals * 10)
        rgb, _ = composite(sigmas, colors, deltas, self.background)
        return rgb, used, color_used, points, hit, (density_evals, color_evals, interpolated)

    def _charge(
        self, counts: Dict[str, PhaseCounts], density_points: int, color_points: int
    ) -> None:
        m = self.model
        counts["embedding"].add(
            density_points * m.flops_embedding_per_point(),
            density_points * m.bytes_embedding_per_point(),
        )
        counts["density"].add(density_points * m.flops_density_per_point())
        counts["color"].add(color_points * m.flops_color_per_point())
