"""Probe-pixel grids and budget interpolation (adaptive sampling).

For a ``H x W`` image, probe pixels form a grid with stride ``d`` in both
directions.  Budgets measured at the probes are propagated to the remaining
pixels by bilinear interpolation over the probe grid (Figure 6a shows the
resulting weights, e.g. ``2/3 ns3 + 1/3 ns4``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


def probe_pixel_indices(height: int, width: int, stride: int) -> np.ndarray:
    """Flat (row-major) indices of the probe pixels.

    The grid covers rows/cols ``0, d, 2d, ...`` and always includes the last
    row and column so interpolation never extrapolates.
    """
    if stride < 1:
        raise ConfigurationError("stride must be >= 1")
    rows = np.unique(np.append(np.arange(0, height, stride), height - 1))
    cols = np.unique(np.append(np.arange(0, width, stride), width - 1))
    rr, cc = np.meshgrid(rows, cols, indexing="ij")
    return (rr * width + cc).reshape(-1), rows, cols


def interpolate_budgets(
    probe_budgets: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    height: int,
    width: int,
) -> np.ndarray:
    """Bilinearly interpolate probe budgets to every pixel.

    Args:
        probe_budgets: ``(len(rows) * len(cols),)`` budgets in probe-grid
            row-major order.
        rows / cols: The probe grid coordinates from
            :func:`probe_pixel_indices`.

    Returns:
        ``(height * width,)`` integer budgets (rounded up, so interpolation
        never under-samples relative to the local probes' intent).
    """
    grid = np.asarray(probe_budgets, dtype=np.float64).reshape(len(rows), len(cols))

    def axis_weights(coords: np.ndarray, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """For each pixel coordinate: left probe index and right weight."""
        positions = np.arange(size)
        left = np.searchsorted(coords, positions, side="right") - 1
        left = np.clip(left, 0, len(coords) - 2)
        span = (coords[left + 1] - coords[left]).astype(np.float64)
        frac = (positions - coords[left]) / np.maximum(span, 1.0)
        return left, np.clip(frac, 0.0, 1.0)

    row_left, row_frac = axis_weights(rows, height)
    col_left, col_frac = axis_weights(cols, width)
    rl = row_left[:, None]
    cl = col_left[None, :]
    rf = row_frac[:, None]
    cf = col_frac[None, :]
    interp = (
        grid[rl, cl] * (1 - rf) * (1 - cf)
        + grid[rl + 1, cl] * rf * (1 - cf)
        + grid[rl, cl + 1] * (1 - rf) * cf
        + grid[rl + 1, cl + 1] * rf * cf
    )
    return np.ceil(interp - 1e-9).astype(np.int64).reshape(-1)


@dataclass
class SamplingPlan:
    """Per-pixel sample budgets for one view.

    Attributes:
        budgets: ``(H*W,)`` per-pixel budgets.
        probe_indices: Flat indices of the probe pixels.
        probe_budgets: Budgets selected at the probes.
        full_budget: The un-optimised fixed budget ``ns``.
    """

    budgets: np.ndarray
    probe_indices: np.ndarray
    probe_budgets: np.ndarray
    full_budget: int
    num_candidates: int = 0

    @property
    def average_budget(self) -> float:
        """Mean samples per pixel (the paper's 192 -> ~120 headline)."""
        return float(np.mean(self.budgets))

    @property
    def savings(self) -> float:
        """Fraction of sample points avoided versus the fixed budget."""
        return 1.0 - self.average_budget / self.full_budget

    def budget_image(self, height: int, width: int) -> np.ndarray:
        """Budgets as an ``(H, W)`` map (the Figure 7 visualisation)."""
        return self.budgets.reshape(height, width)
