"""Procedural scene substrate.

The paper evaluates on Synthetic-NeRF / NSVF / BlendedMVS / Tanks&Temples
scenes; offline we substitute analytic radiance fields built from signed
distance functions.  Each named scene exposes a continuous density and
view-dependent color field, ground-truth camera poses, and reference
renders (see DESIGN.md, "Substitutions").
"""

from repro.scenes.sdf import (
    SDF,
    Sphere,
    Box,
    Cylinder,
    Torus,
    Plane,
    RoundedBox,
    Union,
    Intersection,
    Difference,
    Translate,
    Scale,
    Repeat,
)
from repro.scenes.analytic import AnalyticScene, scene_names, make_scene
from repro.scenes.cameras import (
    Camera,
    CameraPath,
    camera_path,
    look_at_pose,
    orbit_cameras,
)
from repro.scenes.dataset import SceneDataset, load_dataset

__all__ = [
    "SDF",
    "Sphere",
    "Box",
    "Cylinder",
    "Torus",
    "Plane",
    "RoundedBox",
    "Union",
    "Intersection",
    "Difference",
    "Translate",
    "Scale",
    "Repeat",
    "AnalyticScene",
    "scene_names",
    "make_scene",
    "Camera",
    "CameraPath",
    "camera_path",
    "look_at_pose",
    "orbit_cameras",
    "SceneDataset",
    "load_dataset",
]
