"""Signed-distance-function primitives and CSG combinators.

These build the analytic geometry that stands in for the paper's datasets.
All ``distance`` implementations are vectorised: they take an ``(N, 3)``
array of points and return an ``(N,)`` array of signed distances (negative
inside the surface).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


class SDF:
    """Base class for signed distance fields."""

    def distance(self, points: np.ndarray) -> np.ndarray:
        """Return signed distance from each point to the surface."""
        raise NotImplementedError

    def __or__(self, other: "SDF") -> "Union":
        return Union([self, other])

    def __and__(self, other: "SDF") -> "Intersection":
        return Intersection([self, other])

    def __sub__(self, other: "SDF") -> "Difference":
        return Difference(self, other)


@dataclass
class Sphere(SDF):
    """Sphere of ``radius`` centred at ``center``."""

    center: Sequence[float] = (0.0, 0.0, 0.0)
    radius: float = 1.0

    def distance(self, points: np.ndarray) -> np.ndarray:
        return np.linalg.norm(points - np.asarray(self.center), axis=-1) - self.radius


@dataclass
class Box(SDF):
    """Axis-aligned box with half-extents ``half_size`` centred at ``center``."""

    center: Sequence[float] = (0.0, 0.0, 0.0)
    half_size: Sequence[float] = (0.5, 0.5, 0.5)

    def distance(self, points: np.ndarray) -> np.ndarray:
        q = np.abs(points - np.asarray(self.center)) - np.asarray(self.half_size)
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=-1)
        inside = np.minimum(np.max(q, axis=-1), 0.0)
        return outside + inside


@dataclass
class RoundedBox(SDF):
    """Box with edges rounded by ``rounding``."""

    center: Sequence[float] = (0.0, 0.0, 0.0)
    half_size: Sequence[float] = (0.5, 0.5, 0.5)
    rounding: float = 0.1

    def distance(self, points: np.ndarray) -> np.ndarray:
        box = Box(self.center, self.half_size)
        return box.distance(points) - self.rounding


@dataclass
class Cylinder(SDF):
    """Vertical (y-axis) capped cylinder."""

    center: Sequence[float] = (0.0, 0.0, 0.0)
    radius: float = 0.5
    half_height: float = 0.5

    def distance(self, points: np.ndarray) -> np.ndarray:
        p = points - np.asarray(self.center)
        radial = np.linalg.norm(p[..., [0, 2]], axis=-1) - self.radius
        vertical = np.abs(p[..., 1]) - self.half_height
        outside = np.linalg.norm(
            np.stack([np.maximum(radial, 0.0), np.maximum(vertical, 0.0)], axis=-1),
            axis=-1,
        )
        inside = np.minimum(np.maximum(radial, vertical), 0.0)
        return outside + inside


@dataclass
class Torus(SDF):
    """Torus in the xz-plane with major radius ``major`` and tube ``minor``."""

    center: Sequence[float] = (0.0, 0.0, 0.0)
    major: float = 0.6
    minor: float = 0.15

    def distance(self, points: np.ndarray) -> np.ndarray:
        p = points - np.asarray(self.center)
        ring = np.linalg.norm(p[..., [0, 2]], axis=-1) - self.major
        return np.sqrt(ring**2 + p[..., 1] ** 2) - self.minor


@dataclass
class Plane(SDF):
    """Half-space below the plane ``dot(normal, p) = offset``."""

    normal: Sequence[float] = (0.0, 1.0, 0.0)
    offset: float = 0.0

    def distance(self, points: np.ndarray) -> np.ndarray:
        n = np.asarray(self.normal, dtype=np.float64)
        n = n / np.linalg.norm(n)
        return points @ n - self.offset


@dataclass
class Union(SDF):
    """CSG union (minimum of distances)."""

    parts: Sequence[SDF] = field(default_factory=list)

    def distance(self, points: np.ndarray) -> np.ndarray:
        dists = [part.distance(points) for part in self.parts]
        return np.minimum.reduce(dists)


@dataclass
class Intersection(SDF):
    """CSG intersection (maximum of distances)."""

    parts: Sequence[SDF] = field(default_factory=list)

    def distance(self, points: np.ndarray) -> np.ndarray:
        dists = [part.distance(points) for part in self.parts]
        return np.maximum.reduce(dists)


@dataclass
class Difference(SDF):
    """CSG difference ``base - cut``."""

    base: SDF = None
    cut: SDF = None

    def distance(self, points: np.ndarray) -> np.ndarray:
        return np.maximum(self.base.distance(points), -self.cut.distance(points))


@dataclass
class Translate(SDF):
    """Rigid translation of ``child`` by ``offset``."""

    child: SDF = None
    offset: Sequence[float] = (0.0, 0.0, 0.0)

    def distance(self, points: np.ndarray) -> np.ndarray:
        return self.child.distance(points - np.asarray(self.offset))


@dataclass
class Scale(SDF):
    """Uniform scale of ``child`` by ``factor``."""

    child: SDF = None
    factor: float = 1.0

    def distance(self, points: np.ndarray) -> np.ndarray:
        return self.child.distance(points / self.factor) * self.factor


@dataclass
class Repeat(SDF):
    """Tile ``child`` on an infinite grid with ``period`` spacing in xz."""

    child: SDF = None
    period: float = 1.0

    def distance(self, points: np.ndarray) -> np.ndarray:
        p = points.copy()
        half = self.period / 2.0
        p[..., 0] = (p[..., 0] + half) % self.period - half
        p[..., 2] = (p[..., 2] + half) % self.period - half
        return self.child.distance(p)


def estimate_normals(sdf: SDF, points: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference surface normals of ``sdf`` at ``points``."""
    offsets = np.eye(3) * eps
    grads = np.stack(
        [
            sdf.distance(points + offsets[i]) - sdf.distance(points - offsets[i])
            for i in range(3)
        ],
        axis=-1,
    )
    norm = np.linalg.norm(grads, axis=-1, keepdims=True)
    return grads / np.maximum(norm, 1e-12)
