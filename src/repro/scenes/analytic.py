"""Analytic radiance fields standing in for the paper's datasets.

Each :class:`AnalyticScene` defines a continuous volume density ``sigma(x)``
and a view-dependent color ``c(x, d)`` over the unit cube ``[0, 1]^3`` (the
same domain Instant-NGP's hash grid indexes).  Geometry comes from signed
distance functions; color combines a procedural albedo with Lambertian and
specular shading from a fixed light, so the field is smooth enough for the
hash-grid model to distill yet textured enough that pixel rendering
difficulty varies across the image — the property ASDR's adaptive sampling
exploits.

The ten scene names match Table 1 of the paper: palace, fountain, family,
fox, mic, lego, hotdog, ficus, chair, ship.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.errors import SceneError
from repro.scenes import sdf as S
from repro.utils.math import sigmoid


@dataclass
class AnalyticScene:
    """A procedurally defined radiance field.

    Attributes:
        name: Scene identifier.
        geometry: Signed distance field describing the solid geometry.
        albedo_fn: Maps ``(N, 3)`` points to ``(N, 3)`` base colors in [0, 1].
        sigma_max: Peak volume density inside the surface.
        softness: Width of the density falloff around the surface (scene
            units); smaller values give harder edges and harder pixels.
        light_dir: Direction *towards* the light (unit vector).
    """

    name: str
    geometry: S.SDF
    albedo_fn: Callable[[np.ndarray], np.ndarray]
    sigma_max: float = 40.0
    softness: float = 0.015
    light_dir: np.ndarray = None

    def __post_init__(self) -> None:
        if self.light_dir is None:
            self.light_dir = np.array([0.5, 0.7, 0.4])
        self.light_dir = np.asarray(self.light_dir, dtype=np.float64)
        self.light_dir = self.light_dir / np.linalg.norm(self.light_dir)

    # The hash grid and ray sampler both work in the unit cube; the SDFs
    # are authored in [-1, 1]^3, so scene queries remap.
    @staticmethod
    def _to_world(points01: np.ndarray) -> np.ndarray:
        return points01 * 2.0 - 1.0

    def density(self, points01: np.ndarray) -> np.ndarray:
        """Volume density at unit-cube points ``(N, 3)`` -> ``(N,)``."""
        pts = self._to_world(np.atleast_2d(points01))
        dist = self.geometry.distance(pts)
        return self.sigma_max * sigmoid(-dist / self.softness)

    def color(self, points01: np.ndarray, dirs: np.ndarray) -> np.ndarray:
        """View-dependent RGB at unit-cube points, ``(N, 3)`` each -> ``(N, 3)``."""
        pts01 = np.atleast_2d(points01)
        pts = self._to_world(pts01)
        dirs = np.atleast_2d(dirs)
        normals = S.estimate_normals(self.geometry, pts, eps=2e-3)
        albedo = np.clip(self.albedo_fn(pts), 0.0, 1.0)
        diffuse = np.clip(normals @ self.light_dir, 0.0, 1.0)[:, None]
        half = self.light_dir - dirs
        half_norm = np.linalg.norm(half, axis=-1, keepdims=True)
        half = half / np.maximum(half_norm, 1e-12)
        spec = np.clip(np.sum(normals * half, axis=-1), 0.0, 1.0) ** 16
        shaded = albedo * (0.35 + 0.65 * diffuse) + 0.25 * spec[:, None]
        return np.clip(shaded, 0.0, 1.0)


def _checker(p: np.ndarray, scale: float, c0, c1) -> np.ndarray:
    mask = (
        np.floor(p[:, 0] * scale) + np.floor(p[:, 1] * scale) + np.floor(p[:, 2] * scale)
    ) % 2
    return np.where(mask[:, None] > 0, np.asarray(c1), np.asarray(c0))


def _stripes(p: np.ndarray, axis: int, freq: float, c0, c1) -> np.ndarray:
    t = 0.5 + 0.5 * np.sin(p[:, axis] * freq * np.pi)
    return t[:, None] * np.asarray(c1) + (1.0 - t[:, None]) * np.asarray(c0)


def _gradient(p: np.ndarray, axis: int, c0, c1) -> np.ndarray:
    t = np.clip((p[:, axis] + 1.0) / 2.0, 0.0, 1.0)
    return t[:, None] * np.asarray(c1) + (1.0 - t[:, None]) * np.asarray(c0)


def _lego_scene() -> AnalyticScene:
    """Blocky excavator-like arrangement of bricks (stand-in for LEGO)."""
    base = S.Box((0.0, -0.55, 0.0), (0.55, 0.08, 0.4))
    body = S.Box((0.0, -0.3, 0.0), (0.3, 0.18, 0.25))
    arm = S.Translate(S.Box((0.0, 0.0, 0.0), (0.08, 0.35, 0.08)), (0.3, 0.05, 0.0))
    bucket = S.Translate(S.Box((0.0, 0.0, 0.0), (0.14, 0.1, 0.12)), (0.42, 0.38, 0.0))
    cab = S.Box((-0.12, 0.0, 0.0), (0.14, 0.14, 0.16))
    studs = S.Repeat(S.Cylinder((0.0, -0.44, 0.0), 0.05, 0.03), 0.22)
    studs = S.Intersection([studs, S.Box((0.0, -0.44, 0.0), (0.55, 0.05, 0.4))])
    geometry = S.Union([base, body, arm, bucket, cab, studs])

    def albedo(p: np.ndarray) -> np.ndarray:
        yellow = _stripes(p, 0, 6.0, (0.9, 0.75, 0.1), (0.85, 0.6, 0.05))
        grey = np.asarray((0.45, 0.45, 0.5))
        return np.where(p[:, 1:2] < -0.45, grey, yellow)

    return AnalyticScene("lego", geometry, albedo, softness=0.012)


def _mic_scene() -> AnalyticScene:
    """Microphone on a stand: sphere head, thin neck, round base."""
    head = S.Sphere((0.0, 0.35, 0.0), 0.22)
    neck = S.Cylinder((0.0, -0.05, 0.0), 0.05, 0.35)
    base = S.Cylinder((0.0, -0.5, 0.0), 0.3, 0.06)
    geometry = S.Union([head, neck, base])

    def albedo(p: np.ndarray) -> np.ndarray:
        mesh = _checker(p, 14.0, (0.2, 0.2, 0.22), (0.65, 0.65, 0.7))
        chrome = np.asarray((0.75, 0.75, 0.8))
        return np.where(p[:, 1:2] > 0.1, mesh, chrome)

    return AnalyticScene("mic", geometry, albedo, softness=0.01)


def _ship_scene() -> AnalyticScene:
    """Hull floating on a rippled water plane."""
    hull = S.Intersection(
        [
            S.Sphere((0.0, 0.15, 0.0), 0.62),
            S.Box((0.0, -0.25, 0.0), (0.6, 0.22, 0.3)),
        ]
    )
    mast = S.Cylinder((0.0, 0.25, 0.0), 0.035, 0.45)
    sail = S.Box((0.12, 0.3, 0.0), (0.02, 0.3, 0.22))
    water = S.Box((0.0, -0.78, 0.0), (0.95, 0.3, 0.95))
    geometry = S.Union([hull, mast, sail, water])

    def albedo(p: np.ndarray) -> np.ndarray:
        wood = _stripes(p, 1, 10.0, (0.45, 0.28, 0.12), (0.3, 0.18, 0.08))
        ripple = 0.5 + 0.25 * np.sin(8.0 * p[:, 0]) * np.sin(8.0 * p[:, 2])
        water_c = np.stack(
            [0.1 * np.ones_like(ripple), 0.3 * ripple, 0.5 * ripple], axis=-1
        )
        cloth = np.asarray((0.9, 0.88, 0.8))
        out = np.where(p[:, 1:2] < -0.45, water_c, wood)
        return np.where(np.abs(p[:, 0:1] - 0.12) < 0.05, cloth, out)

    return AnalyticScene("ship", geometry, albedo, softness=0.02)


def _chair_scene() -> AnalyticScene:
    """Four legs, a seat, and a back rest."""
    seat = S.Box((0.0, -0.1, 0.0), (0.35, 0.05, 0.35))
    back = S.Box((0.0, 0.3, -0.32), (0.35, 0.35, 0.04))
    legs = S.Union(
        [
            S.Cylinder((sx * 0.3, -0.42, sz * 0.3), 0.05, 0.3)
            for sx in (-1, 1)
            for sz in (-1, 1)
        ]
    )
    geometry = S.Union([seat, back, legs])

    def albedo(p: np.ndarray) -> np.ndarray:
        return _stripes(p, 2, 8.0, (0.55, 0.32, 0.15), (0.4, 0.22, 0.1))

    return AnalyticScene("chair", geometry, albedo, softness=0.012)


def _ficus_scene() -> AnalyticScene:
    """Pot with a trunk and a cloud of leaf spheres (high-frequency)."""
    pot = S.Cylinder((0.0, -0.5, 0.0), 0.22, 0.14)
    trunk = S.Cylinder((0.0, -0.15, 0.0), 0.05, 0.3)
    rng = np.random.default_rng(7)
    leaves = []
    for _ in range(24):
        offset = rng.normal(0.0, 0.22, size=3)
        offset[1] = abs(offset[1]) * 0.8 + 0.18
        leaves.append(S.Sphere(tuple(offset), 0.1 + 0.06 * rng.random()))
    geometry = S.Union([pot, trunk, S.Union(leaves)])

    def albedo(p: np.ndarray) -> np.ndarray:
        leaf = _stripes(p, 0, 18.0, (0.1, 0.45, 0.12), (0.2, 0.6, 0.2))
        terracotta = np.asarray((0.7, 0.35, 0.2))
        return np.where(p[:, 1:2] < -0.32, terracotta, leaf)

    return AnalyticScene("ficus", geometry, albedo, softness=0.014)


def _hotdog_scene() -> AnalyticScene:
    """Two buns and a sausage on a plate."""
    plate = S.Cylinder((0.0, -0.5, 0.0), 0.7, 0.04)
    sausage = S.Union(
        [
            S.Sphere((x, -0.3, 0.0), 0.12)
            for x in np.linspace(-0.4, 0.4, 9)
        ]
    )
    bun_l = S.Scale(S.Sphere((0.0, 0.0, 0.0), 1.0), 0.16)
    bun = S.Union(
        [
            S.Translate(bun_l, (x, -0.34, z))
            for x in np.linspace(-0.38, 0.38, 7)
            for z in (-0.16, 0.16)
        ]
    )
    geometry = S.Union([plate, sausage, bun])

    def albedo(p: np.ndarray) -> np.ndarray:
        bun_c = _gradient(p, 1, (0.75, 0.5, 0.25), (0.9, 0.7, 0.4))
        meat = np.asarray((0.65, 0.2, 0.1))
        china = np.asarray((0.92, 0.92, 0.95))
        out = np.where(np.abs(p[:, 2:3]) < 0.1, meat, bun_c)
        return np.where(p[:, 1:2] < -0.44, china, out)

    return AnalyticScene("hotdog", geometry, albedo, softness=0.018)


def _palace_scene() -> AnalyticScene:
    """Stepped towers with a colonnade (NSVF Palace stand-in)."""
    tiers = S.Union(
        [
            S.Box((0.0, -0.6 + 0.22 * i, 0.0), (0.62 - 0.14 * i, 0.1, 0.62 - 0.14 * i))
            for i in range(4)
        ]
    )
    dome = S.Sphere((0.0, 0.35, 0.0), 0.2)
    columns = S.Union(
        [
            S.Cylinder((x, -0.35, z), 0.04, 0.22)
            for x in (-0.5, 0.5)
            for z in np.linspace(-0.5, 0.5, 5)
        ]
    )
    geometry = S.Union([tiers, dome, columns])

    def albedo(p: np.ndarray) -> np.ndarray:
        stone = _checker(p, 9.0, (0.75, 0.7, 0.6), (0.65, 0.6, 0.52))
        gold = np.asarray((0.85, 0.7, 0.25))
        return np.where(p[:, 1:2] > 0.22, gold, stone)

    return AnalyticScene("palace", geometry, albedo, softness=0.016)


def _fountain_scene() -> AnalyticScene:
    """Tiered basins with a central jet (BlendedMVS Fountain stand-in)."""
    basins = S.Union(
        [
            S.Difference(
                S.Cylinder((0.0, -0.55 + 0.3 * i, 0.0), 0.62 - 0.2 * i, 0.07),
                S.Cylinder((0.0, -0.49 + 0.3 * i, 0.0), 0.54 - 0.2 * i, 0.07),
            )
            for i in range(3)
        ]
    )
    column = S.Cylinder((0.0, -0.1, 0.0), 0.07, 0.5)
    jet = S.Sphere((0.0, 0.48, 0.0), 0.12)
    geometry = S.Union([basins, column, jet])

    def albedo(p: np.ndarray) -> np.ndarray:
        stone = _gradient(p, 1, (0.5, 0.5, 0.48), (0.72, 0.72, 0.7))
        ripple = 0.5 + 0.3 * np.sin(12.0 * np.linalg.norm(p[:, [0, 2]], axis=-1))
        water = np.stack(
            [0.2 * ripple, 0.45 * ripple, 0.65 * np.ones_like(ripple)], axis=-1
        )
        radial = np.linalg.norm(p[:, [0, 2]], axis=-1, keepdims=True)
        return np.where((radial < 0.5) & (p[:, 1:2] > -0.4), water, stone)

    return AnalyticScene("fountain", geometry, albedo, softness=0.02)


def _family_scene() -> AnalyticScene:
    """Group of rounded figures (Tanks&Temples Family stand-in)."""
    figures = []
    for i, (x, h) in enumerate([(-0.45, 0.5), (-0.15, 0.62), (0.18, 0.42), (0.46, 0.56)]):
        body = S.Scale(S.Sphere((0.0, 0.0, 0.0), 1.0), 0.16)
        body = S.Translate(body, (x, -0.6 + h * 0.5, 0.05 * i - 0.1))
        head = S.Sphere((x, -0.6 + h + 0.12, 0.05 * i - 0.1), 0.1)
        figures.extend([body, head])
    ground = S.Box((0.0, -0.75, 0.0), (0.9, 0.12, 0.9))
    geometry = S.Union(figures + [ground])

    def albedo(p: np.ndarray) -> np.ndarray:
        cloth = _stripes(p, 0, 7.0, (0.6, 0.3, 0.3), (0.3, 0.35, 0.6))
        grass = _checker(p, 6.0, (0.25, 0.45, 0.2), (0.2, 0.38, 0.16))
        return np.where(p[:, 1:2] < -0.6, grass, cloth)

    return AnalyticScene("family", geometry, albedo, softness=0.022)


def _fox_scene() -> AnalyticScene:
    """Fox-like head: snout, ears, neck (Instant-NGP Fox stand-in)."""
    skull = S.Scale(S.Sphere((0.0, 0.0, 0.0), 1.0), 0.3)
    skull = S.Translate(skull, (0.0, 0.05, 0.0))
    snout = S.Translate(S.Scale(S.Sphere((0.0, 0.0, 0.0), 1.0), 0.16), (0.28, -0.05, 0.0))
    ears = S.Union(
        [
            S.Translate(S.Scale(S.Box((0, 0, 0), (0.3, 0.8, 0.12)), 0.18), (-0.08, 0.38, z))
            for z in (-0.18, 0.18)
        ]
    )
    neck = S.Cylinder((-0.15, -0.4, 0.0), 0.18, 0.3)
    geometry = S.Union([skull, snout, ears, neck])

    def albedo(p: np.ndarray) -> np.ndarray:
        fur = _gradient(p, 1, (0.8, 0.4, 0.15), (0.95, 0.6, 0.3))
        white = np.asarray((0.95, 0.92, 0.88))
        return np.where(p[:, 1:2] < -0.15, white, fur)

    return AnalyticScene("fox", geometry, albedo, softness=0.018)


_SCENE_BUILDERS: Dict[str, Callable[[], AnalyticScene]] = {
    "lego": _lego_scene,
    "mic": _mic_scene,
    "ship": _ship_scene,
    "chair": _chair_scene,
    "ficus": _ficus_scene,
    "hotdog": _hotdog_scene,
    "palace": _palace_scene,
    "fountain": _fountain_scene,
    "family": _family_scene,
    "fox": _fox_scene,
}


def scene_names() -> List[str]:
    """Names of all available scenes, in the paper's Table 1 order."""
    return [
        "palace",
        "fountain",
        "family",
        "fox",
        "mic",
        "lego",
        "hotdog",
        "ficus",
        "chair",
        "ship",
    ]


def make_scene(name: str) -> AnalyticScene:
    """Build the named analytic scene.

    Raises:
        SceneError: if ``name`` is not one of :func:`scene_names`.
    """
    try:
        builder = _SCENE_BUILDERS[name]
    except KeyError:
        raise SceneError(
            f"unknown scene {name!r}; available: {', '.join(scene_names())}"
        ) from None
    return builder()
