"""Scene datasets: analytic scene + cameras + ground-truth renders.

The ground-truth reference image of a view is obtained by volume-rendering
the *analytic* field with a dense sample budget — the stand-in for the
datasets' photographs (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.nerf.rays import sample_along_rays
from repro.nerf.volume import composite
from repro.scenes.analytic import AnalyticScene, make_scene
from repro.scenes.cameras import Camera, orbit_cameras


@dataclass
class SceneDataset:
    """A scene with its evaluation cameras and reference images."""

    scene: AnalyticScene
    cameras: List[Camera]
    _references: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.scene.name

    def reference_image(
        self, view: int = 0, num_samples: int = 256, background: float = 1.0
    ) -> np.ndarray:
        """Ground-truth render of ``view`` from the analytic field (cached)."""
        if view not in self._references:
            self._references[view] = render_analytic(
                self.scene,
                self.cameras[view],
                num_samples=num_samples,
                background=background,
            )
        return self._references[view]


def render_analytic(
    scene: AnalyticScene,
    camera: Camera,
    num_samples: int = 256,
    background: float = 1.0,
    batch_rays: int = 2048,
) -> np.ndarray:
    """Volume-render the analytic field directly (no learned model)."""
    origins, directions = camera.pixel_rays()
    n_rays = origins.shape[0]
    image = np.zeros((n_rays, 3))
    for start in range(0, n_rays, batch_rays):
        sl = slice(start, min(start + batch_rays, n_rays))
        points, deltas, hit = sample_along_rays(origins[sl], directions[sl], num_samples)
        flat = points.reshape(-1, 3)
        dirs_rep = np.repeat(directions[sl], num_samples, axis=0)
        sigma = scene.density(flat).reshape(-1, num_samples)
        rgb = scene.color(flat, dirs_rep).reshape(-1, num_samples, 3)
        sigma = sigma * hit[:, None]
        image[sl], _ = composite(sigma, rgb, deltas, background)
    return image.reshape(camera.height, camera.width, 3)


def load_dataset(
    name: str,
    width: int = 72,
    height: int = 72,
    num_views: int = 4,
    radius: float = 1.4,
) -> SceneDataset:
    """Build the named dataset with an orbit of evaluation cameras.

    The default 72x72 resolution keeps the NumPy pipeline fast; the paper's
    800x800 is reachable by passing larger dimensions (slow-marked tests
    exercise this path).
    """
    scene = make_scene(name)
    cameras = orbit_cameras(num_views, width, height, radius=radius)
    return SceneDataset(scene=scene, cameras=cameras)
