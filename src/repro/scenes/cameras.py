"""Pinhole cameras, pose generation and camera paths.

Poses follow the OpenGL/NeRF convention: the camera looks down its local
``-z`` axis and ``camera_to_world`` is a 4x4 matrix whose columns are the
camera's right / up / backward axes and position.

Multi-frame (video) workloads describe their camera trajectory with a
:class:`CameraPath` — a declarative recipe (preset + parameters) that
expands to a list of :class:`Camera` frames and hashes to a stable
:meth:`~CameraPath.cache_key` so whole sequences can be memoised.  Three
presets ship: ``orbit`` (sweep an arc around the scene, generalising
:func:`orbit_cameras`), ``dolly`` (travel along the view axis) and
``shake`` (periodic hand-held jitter around a base pose — its poses repeat
exactly every period, which the sequence layer exploits for whole-frame
replay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Valid :class:`CameraPath` presets.
PATH_PRESETS = ("orbit", "dolly", "shake")


@dataclass
class Camera:
    """A pinhole camera.

    Attributes:
        width: Image width in pixels.
        height: Image height in pixels.
        focal: Focal length in pixels (shared by x and y).
        camera_to_world: 4x4 pose matrix (OpenGL convention).
    """

    width: int
    height: int
    focal: float
    camera_to_world: np.ndarray

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("camera resolution must be positive")
        if self.focal <= 0:
            raise ConfigurationError("camera focal length must be positive")
        self.camera_to_world = np.asarray(self.camera_to_world, dtype=np.float64)
        if self.camera_to_world.shape != (4, 4):
            raise ConfigurationError("camera_to_world must be a 4x4 matrix")

    @property
    def position(self) -> np.ndarray:
        """Camera origin in world space."""
        return self.camera_to_world[:3, 3]

    def pixel_rays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Generate one ray per pixel.

        Returns:
            ``(origins, directions)`` arrays of shape ``(H*W, 3)``; rays are
            ordered row-major (pixel ``(row, col)`` is index ``row*W + col``)
            and directions are unit length.
        """
        cols, rows = np.meshgrid(
            np.arange(self.width), np.arange(self.height), indexing="xy"
        )
        x = (cols - self.width / 2.0 + 0.5) / self.focal
        y = -(rows - self.height / 2.0 + 0.5) / self.focal
        dirs_cam = np.stack([x, y, -np.ones_like(x)], axis=-1).reshape(-1, 3)
        rot = self.camera_to_world[:3, :3]
        dirs = dirs_cam @ rot.T
        dirs = dirs / np.linalg.norm(dirs, axis=-1, keepdims=True)
        origins = np.broadcast_to(self.position, dirs.shape).copy()
        return origins, dirs

    def rays_for_pixels(self, pixel_indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Rays for a subset of flat (row-major) pixel indices."""
        pixel_indices = np.asarray(pixel_indices)
        rows = pixel_indices // self.width
        cols = pixel_indices % self.width
        x = (cols - self.width / 2.0 + 0.5) / self.focal
        y = -(rows - self.height / 2.0 + 0.5) / self.focal
        dirs_cam = np.stack([x, y, -np.ones_like(x, dtype=np.float64)], axis=-1)
        rot = self.camera_to_world[:3, :3]
        dirs = dirs_cam @ rot.T
        dirs = dirs / np.linalg.norm(dirs, axis=-1, keepdims=True)
        origins = np.broadcast_to(self.position, dirs.shape).copy()
        return origins, dirs


def look_at_pose(eye, target=(0.5, 0.5, 0.5), up=(0.0, 1.0, 0.0)) -> np.ndarray:
    """Build a camera-to-world matrix looking from ``eye`` toward ``target``."""
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    up = np.asarray(up, dtype=np.float64)
    backward = eye - target
    backward = backward / np.linalg.norm(backward)
    right = np.cross(up, backward)
    right = right / np.linalg.norm(right)
    true_up = np.cross(backward, right)
    pose = np.eye(4)
    pose[:3, 0] = right
    pose[:3, 1] = true_up
    pose[:3, 2] = backward
    pose[:3, 3] = eye
    return pose


def orbit_cameras(
    count: int,
    width: int,
    height: int,
    radius: float = 1.4,
    elevation: float = 0.35,
    focal_ratio: float = 1.2,
    center=(0.5, 0.5, 0.5),
) -> List[Camera]:
    """Cameras evenly spaced on a circle orbiting ``center``.

    ``focal_ratio`` is focal length divided by image width (1.2 roughly
    matches the Synthetic-NeRF field of view).
    """
    return camera_path(
        "orbit",
        count,
        width,
        height,
        radius=radius,
        elevation=elevation,
        focal_ratio=focal_ratio,
        center=center,
        arc=1.0,
    ).cameras()


@dataclass(frozen=True)
class CameraPath:
    """A declarative multi-frame camera trajectory.

    Attributes:
        preset: One of :data:`PATH_PRESETS`.
        frames: Number of cameras the path expands to.
        width / height / focal_ratio: Shared intrinsics of every frame.
        radius / elevation / center: Scene-orbit geometry (all presets
            position the camera relative to ``center``).
        arc: ``orbit`` — fraction of the full circle swept across the
            path (``1.0`` reproduces :func:`orbit_cameras` spacing; small
            arcs yield the high inter-frame coherence video workloads
            exhibit).
        travel: ``dolly`` — fraction of ``radius`` travelled toward
            ``center`` over the path.
        amplitude: ``shake`` — hand-held jitter amplitude in world units.
        period: ``shake`` — poses repeat exactly every ``period`` frames.
        hold: Each generated pose is held for ``hold`` consecutive frames
            (a 24->30 fps pulldown stand-in); held frames are bit-identical
            and the sequence layer replays them outright.
    """

    preset: str
    frames: int
    width: int
    height: int
    radius: float = 1.4
    elevation: float = 0.35
    focal_ratio: float = 1.2
    center: Tuple[float, float, float] = (0.5, 0.5, 0.5)
    arc: float = 0.25
    travel: float = 0.5
    amplitude: float = 0.05
    period: int = 4
    hold: int = 1

    def __post_init__(self) -> None:
        if self.preset not in PATH_PRESETS:
            raise ConfigurationError(
                f"unknown camera-path preset {self.preset!r}; "
                f"choose from {PATH_PRESETS}"
            )
        if self.frames <= 0:
            raise ConfigurationError("camera count must be positive")
        if self.hold < 1:
            raise ConfigurationError("hold must be >= 1")
        if self.period < 1:
            raise ConfigurationError("period must be >= 1")
        if not 0.0 <= self.travel < 1.0:
            raise ConfigurationError("travel must lie in [0, 1)")

    # ------------------------------------------------------------------
    def cache_key(self) -> Tuple:
        """Stable hashable identity for sequence-level memoisation."""
        return (
            "camera_path",
            self.preset,
            self.frames,
            self.width,
            self.height,
            float(self.radius),
            float(self.elevation),
            float(self.focal_ratio),
            tuple(float(c) for c in self.center),
            float(self.arc),
            float(self.travel),
            float(self.amplitude),
            self.period,
            self.hold,
        )

    # ------------------------------------------------------------------
    def _eye(self, pose_index: int, num_poses: int) -> np.ndarray:
        center = np.asarray(self.center, dtype=np.float64)
        if self.preset == "orbit":
            angle = 2.0 * np.pi * self.arc * pose_index / num_poses
            return center + np.array(
                [self.radius * np.cos(angle), self.elevation,
                 self.radius * np.sin(angle)]
            )
        if self.preset == "dolly":
            steps = max(num_poses - 1, 1)
            scale = 1.0 - self.travel * pose_index / steps
            return center + scale * np.array([self.radius, self.elevation, 0.0])
        # shake: deterministic periodic jitter around the angle-0 orbit pose.
        base = center + np.array([self.radius, self.elevation, 0.0])
        phase = 2.0 * np.pi * (pose_index % self.period) / self.period
        jitter = self.amplitude * np.array(
            [0.0, np.sin(phase), np.sin(2.0 * phase)]
        )
        return base + jitter

    def cameras(self) -> List[Camera]:
        """Expand the path to its ``frames`` cameras (held poses are
        bit-identical repeats of their generating pose)."""
        center = np.asarray(self.center, dtype=np.float64)
        num_poses = max(-(-self.frames // self.hold), 1)
        poses = [
            look_at_pose(self._eye(p, num_poses), center)
            for p in range(num_poses)
        ]
        return [
            Camera(
                self.width,
                self.height,
                self.focal_ratio * self.width,
                poses[k // self.hold],
            )
            for k in range(self.frames)
        ]


def camera_path(preset: str, frames: int, width: int, height: int, **params) -> CameraPath:
    """Build a :class:`CameraPath` for one of the presets in
    :data:`PATH_PRESETS` (keyword parameters as on the dataclass)."""
    return CameraPath(preset=preset, frames=frames, width=width, height=height, **params)
