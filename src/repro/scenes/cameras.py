"""Pinhole cameras and pose generation.

Poses follow the OpenGL/NeRF convention: the camera looks down its local
``-z`` axis and ``camera_to_world`` is a 4x4 matrix whose columns are the
camera's right / up / backward axes and position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class Camera:
    """A pinhole camera.

    Attributes:
        width: Image width in pixels.
        height: Image height in pixels.
        focal: Focal length in pixels (shared by x and y).
        camera_to_world: 4x4 pose matrix (OpenGL convention).
    """

    width: int
    height: int
    focal: float
    camera_to_world: np.ndarray

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("camera resolution must be positive")
        if self.focal <= 0:
            raise ConfigurationError("camera focal length must be positive")
        self.camera_to_world = np.asarray(self.camera_to_world, dtype=np.float64)
        if self.camera_to_world.shape != (4, 4):
            raise ConfigurationError("camera_to_world must be a 4x4 matrix")

    @property
    def position(self) -> np.ndarray:
        """Camera origin in world space."""
        return self.camera_to_world[:3, 3]

    def pixel_rays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Generate one ray per pixel.

        Returns:
            ``(origins, directions)`` arrays of shape ``(H*W, 3)``; rays are
            ordered row-major (pixel ``(row, col)`` is index ``row*W + col``)
            and directions are unit length.
        """
        cols, rows = np.meshgrid(
            np.arange(self.width), np.arange(self.height), indexing="xy"
        )
        x = (cols - self.width / 2.0 + 0.5) / self.focal
        y = -(rows - self.height / 2.0 + 0.5) / self.focal
        dirs_cam = np.stack([x, y, -np.ones_like(x)], axis=-1).reshape(-1, 3)
        rot = self.camera_to_world[:3, :3]
        dirs = dirs_cam @ rot.T
        dirs = dirs / np.linalg.norm(dirs, axis=-1, keepdims=True)
        origins = np.broadcast_to(self.position, dirs.shape).copy()
        return origins, dirs

    def rays_for_pixels(self, pixel_indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Rays for a subset of flat (row-major) pixel indices."""
        pixel_indices = np.asarray(pixel_indices)
        rows = pixel_indices // self.width
        cols = pixel_indices % self.width
        x = (cols - self.width / 2.0 + 0.5) / self.focal
        y = -(rows - self.height / 2.0 + 0.5) / self.focal
        dirs_cam = np.stack([x, y, -np.ones_like(x, dtype=np.float64)], axis=-1)
        rot = self.camera_to_world[:3, :3]
        dirs = dirs_cam @ rot.T
        dirs = dirs / np.linalg.norm(dirs, axis=-1, keepdims=True)
        origins = np.broadcast_to(self.position, dirs.shape).copy()
        return origins, dirs


def look_at_pose(eye, target=(0.5, 0.5, 0.5), up=(0.0, 1.0, 0.0)) -> np.ndarray:
    """Build a camera-to-world matrix looking from ``eye`` toward ``target``."""
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    up = np.asarray(up, dtype=np.float64)
    backward = eye - target
    backward = backward / np.linalg.norm(backward)
    right = np.cross(up, backward)
    right = right / np.linalg.norm(right)
    true_up = np.cross(backward, right)
    pose = np.eye(4)
    pose[:3, 0] = right
    pose[:3, 1] = true_up
    pose[:3, 2] = backward
    pose[:3, 3] = eye
    return pose


def orbit_cameras(
    count: int,
    width: int,
    height: int,
    radius: float = 1.4,
    elevation: float = 0.35,
    focal_ratio: float = 1.2,
    center=(0.5, 0.5, 0.5),
) -> List[Camera]:
    """Cameras evenly spaced on a circle orbiting ``center``.

    ``focal_ratio`` is focal length divided by image width (1.2 roughly
    matches the Synthetic-NeRF field of view).
    """
    if count <= 0:
        raise ConfigurationError("camera count must be positive")
    cameras = []
    center = np.asarray(center, dtype=np.float64)
    for i in range(count):
        angle = 2.0 * np.pi * i / count
        eye = center + np.array(
            [radius * np.cos(angle), elevation, radius * np.sin(angle)]
        )
        pose = look_at_pose(eye, center)
        cameras.append(Camera(width, height, focal_ratio * width, pose))
    return cameras
