"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiment <id> [...]`` — run registered paper experiments and print
  their tables (``all`` runs everything; ``--list`` prints the registered
  experiment ids and titles without running anything).
* ``render <scene> --out img.ppm`` — distill (or load a cached model for)
  a scene and write baseline + ASDR renders side by side.
* ``report [--out EXPERIMENTS.md]`` — regenerate the paper-vs-measured
  report.
* ``scenes`` — list available scenes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.experiments.harness import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
)
from repro.experiments.report import generate_report
from repro.experiments.workbench import Workbench
from repro.metrics.image import psnr
from repro.scenes.analytic import scene_names
from repro.utils.imageio import write_ppm


def _cmd_scenes(_args) -> int:
    for name in scene_names():
        print(name)
    return 0


def _cmd_experiment(args) -> int:
    if args.list:
        width = max(len(exp_id) for exp_id, _ in list_experiments())
        for exp_id, title in list_experiments():
            print(f"{exp_id.ljust(width)}  {title}")
        return 0
    if not args.ids:
        print("no experiment ids given (use --list to see available ids)",
              file=sys.stderr)
        return 2
    wb = Workbench()
    ids = sorted(EXPERIMENTS) if "all" in args.ids else args.ids
    for exp_id in ids:
        run_experiment(exp_id, wb)
        print()
    return 0


def _cmd_render(args) -> int:
    wb = Workbench()
    if args.scene not in scene_names():
        print(f"unknown scene {args.scene!r}; see `python -m repro scenes`",
              file=sys.stderr)
        return 2
    baseline = wb.baseline_render(args.scene)
    asdr = wb.asdr_render(args.scene)
    reference = wb.reference(args.scene)
    side_by_side = np.concatenate([baseline.image, asdr.image], axis=1)
    write_ppm(side_by_side, args.out)
    print(f"wrote {args.out} (left: fixed budget, right: ASDR)")
    print(f"PSNR vs ground truth: baseline {psnr(baseline.image, reference):.2f}"
          f" | ASDR {psnr(asdr.image, reference):.2f}")
    print(f"avg points/pixel: {baseline.points_total / baseline.num_rays:.1f}"
          f" -> {asdr.average_samples_per_ray:.1f}")
    return 0


def _cmd_report(args) -> int:
    generate_report(args.out)
    print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ASDR reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenes", help="list available scenes").set_defaults(
        fn=_cmd_scenes
    )

    p_exp = sub.add_parser("experiment", help="run paper experiments")
    p_exp.add_argument("ids", nargs="*",
                       help="experiment ids (e.g. fig17a) or 'all'")
    p_exp.add_argument("--list", action="store_true",
                       help="print registered experiment ids and exit")
    p_exp.set_defaults(fn=_cmd_experiment)

    p_render = sub.add_parser("render", help="render a scene to a PPM image")
    p_render.add_argument("scene")
    p_render.add_argument("--out", default="render.ppm")
    p_render.set_defaults(fn=_cmd_render)

    p_report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_report.add_argument("--out", default="EXPERIMENTS.md")
    p_report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    unknown = [i for i in getattr(args, "ids", []) if i != "all"
               and i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
