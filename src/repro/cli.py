"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiment <id> [...]`` — run registered paper experiments and print
  their tables (``all`` runs everything; ``--list`` prints the registered
  experiment ids and titles without running anything).
* ``render <scene> --out img.ppm`` — distill (or load a cached model for)
  a scene and write baseline + ASDR renders side by side.
* ``video <scene>`` — render a camera-path sequence and report per-frame
  and amortised cycles/energy with temporal reuse (see
  ``repro video --help`` for path presets and examples).
* ``serve [scene]`` — serve N concurrent clients' sequences on one
  simulated accelerator and report per-client latency, throughput and
  fairness for each scheduling policy (see ``repro serve --help``).
  ``--dashboard`` renders the run's telemetry timeline; ``--events`` /
  ``--trace`` export it as JSONL / Perfetto-loadable Chrome trace JSON.
* ``timeline <events.jsonl>`` — re-render an exported telemetry log as
  the terminal timeline dashboard, post hoc.
* ``bench run-all [--smoke]`` — the AE harness: every benchmark suite in
  one invocation, all ``BENCH_*.json`` snapshots plus a ``results/``
  folder, schema-validated.
* ``report [--out EXPERIMENTS.md]`` — regenerate the paper-vs-measured
  report.
* ``scenes`` — list available scenes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.experiments.harness import (
    EXPERIMENTS,
    list_experiments,
    load_experiments,
    run_experiment,
)
from repro.experiments.report import generate_report
from repro.experiments.workbench import Workbench
from repro.metrics.image import psnr
from repro.scenes.analytic import scene_names
from repro.utils.imageio import write_ppm


def _cmd_scenes(_args) -> int:
    for name in scene_names():
        print(name)
    return 0


def _cmd_experiment(args) -> int:
    if args.list:
        width = max(len(exp_id) for exp_id, _ in list_experiments())
        for exp_id, title in list_experiments():
            print(f"{exp_id.ljust(width)}  {title}")
        return 0
    if not args.ids:
        print("no experiment ids given (use --list to see available ids)",
              file=sys.stderr)
        return 2
    wb = Workbench()
    ids = sorted(EXPERIMENTS) if "all" in args.ids else args.ids
    for exp_id in ids:
        run_experiment(exp_id, wb)
        print()
    return 0


def _cmd_render(args) -> int:
    wb = Workbench()
    if args.scene not in scene_names():
        print(f"unknown scene {args.scene!r}; see `python -m repro scenes`",
              file=sys.stderr)
        return 2
    baseline = wb.baseline_render(args.scene)
    asdr = wb.asdr_render(args.scene)
    reference = wb.reference(args.scene)
    side_by_side = np.concatenate([baseline.image, asdr.image], axis=1)
    write_ppm(side_by_side, args.out)
    print(f"wrote {args.out} (left: fixed budget, right: ASDR)")
    print(f"PSNR vs ground truth: baseline {psnr(baseline.image, reference):.2f}"
          f" | ASDR {psnr(asdr.image, reference):.2f}")
    print(f"avg points/pixel: {baseline.points_total / baseline.num_rays:.1f}"
          f" -> {asdr.average_samples_per_ray:.1f}")
    return 0


def _cmd_video(args) -> int:
    from repro.core.reprojection import ReprojectionConfig
    from repro.experiments.harness import format_table
    from repro.experiments.video import video_rows
    from repro.scenes.cameras import camera_path

    if args.scene not in scene_names():
        print(f"unknown scene {args.scene!r}; see `python -m repro scenes`",
              file=sys.stderr)
        return 2
    path = camera_path(
        args.preset,
        args.frames,
        args.size,
        args.size,
        arc=args.arc,
        travel=args.travel,
        amplitude=args.amplitude,
        period=args.period,
        hold=args.hold,
    )
    reproject = None
    if args.reproject:
        reproject = ReprojectionConfig(min_psnr=args.reproject_min_psnr)
    rows = video_rows(
        Workbench(),
        scene=args.scene,
        path=path,
        scale=args.scale,
        probe_interval=args.probe_interval,
        temporal=not args.no_temporal,
        reproject=reproject,
        adaptive_overlap=args.adaptive_overlap,
    )
    print(f"== video: {args.scene}, {args.frames}x{args.size}x{args.size} "
          f"{args.preset} ({args.scale}) ==")
    print(format_table(rows))
    amortised = rows[-1]
    print(
        f"\namortised: {amortised['video_kcycles']:.1f} kcycles/frame vs "
        f"{amortised['asdr_kcycles']:.1f} independent "
        f"({amortised['video_speedup']:.3f}x from temporal reuse; "
        f"temporal cache hit rate {amortised['temporal_hit_pct']:.1f}%)"
    )
    return 0


def _serve_policy_set(args) -> Optional[tuple]:
    """Resolve the ``--policy`` / ``--preemptive`` combination into the
    policy names to run (``None`` = invalid combination, reported)."""
    from repro.serving.policies import POLICY_NAMES

    if args.policy == "all":
        # --preemptive compares each preemptible policy with its
        # wavefront-granularity variant side by side.
        if args.preemptive:
            return (
                "round_robin",
                "round_robin_preemptive",
                "deadline",
                "deadline_preemptive",
            )
        return POLICY_NAMES
    name = args.policy
    if args.preemptive and name in ("round_robin", "deadline"):
        name += "_preemptive"
    if args.preemptive and name == "fifo":
        print("fifo serves requests to completion; it has no preemptive "
              "variant (try --policy round_robin or deadline)",
              file=sys.stderr)
        return None
    return (name,)


def _serve_recorder(args):
    """A MemoryRecorder when any telemetry output was requested, else
    ``None`` (the serving layers fall back to the no-op recorder)."""
    if args.dashboard or args.events or args.trace:
        from repro.obs import MemoryRecorder

        return MemoryRecorder()
    return None


def _emit_telemetry(args, recorder, clock_hz) -> None:
    """Render/export a recorded serving run per the telemetry flags."""
    if recorder is None:
        return
    if args.dashboard:
        from repro.obs import render_dashboard

        print()
        print(render_dashboard(recorder.events, clock_hz=clock_hz))
    if args.events:
        from repro.obs import write_events_jsonl

        write_events_jsonl(args.events, recorder.events, clock_hz=clock_hz)
        print(f"\nwrote {args.events} ({len(recorder.events)} events)")
    if args.trace:
        from repro.obs import write_chrome_trace

        write_chrome_trace(args.trace, recorder.events, clock_hz=clock_hz)
        print(f"wrote {args.trace} (load in Perfetto / chrome://tracing)")


def _serve_cluster(args, requests, policies, wb, slo=None) -> int:
    """Fleet-mode ``repro serve``: route the client mix across
    ``--shards`` accelerators with the ``--router`` placement policy and
    serve each scheduling policy on the resulting placement."""
    import json

    from repro.experiments.harness import format_table
    from repro.experiments.workbench import experiment_accelerator
    from repro.serving.cluster import ClusterServer, cluster_bench_summary
    from repro.serving.policies import (
        DEADLINE_POLICY_NAMES,
        PREEMPTIVE_POLICY_NAMES,
        make_policy,
    )

    recorder = _serve_recorder(args)
    cluster = ClusterServer(
        [experiment_accelerator(args.scale) for _ in range(args.shards)],
        router=args.router,
        group_size=wb.group_size(),
        temporal_capacity=args.temporal_capacity,
        shared_content=not args.no_shared_content,
        slo=slo,
        recorder=recorder,
    )
    for request in requests:
        cluster.submit(request, wb.client_sequence(request))
    reports = {
        policy: cluster.serve(
            make_policy(
                policy,
                quantum=(
                    args.quantum
                    if policy in PREEMPTIVE_POLICY_NAMES
                    else None
                ),
                best_effort_slack=(
                    args.best_effort_slack
                    if policy in DEADLINE_POLICY_NAMES
                    else None
                ),
            )
        )
        for policy in policies
    }
    print(f"== serve: {args.clients} clients on {args.scene}, "
          f"{args.frames}x{args.size}x{args.size} "
          f"({args.shards}x {args.scale} fleet, router {args.router}) ==")
    rows = []
    for policy in policies:
        for row in reports[policy].to_rows():
            rows.append({"policy": policy, **row})
    print(format_table(rows))
    for policy in policies:
        rep = reports[policy]
        print(
            f"\n{policy}: {rep.total_busy_cycles / 1e3:.1f} kcycles fleet "
            f"aggregate over {len(rep.shard_names)} shards "
            f"({rep.total_frames} frames); fairness {rep.fairness:.3f}, "
            f"p50/p95 latency {rep.latency_percentile_ms(50):.3f}/"
            f"{rep.latency_percentile_ms(95):.3f} ms"
        )
    _emit_telemetry(
        args,
        recorder,
        cluster.shard(cluster.shard_names[0]).accelerator.config.clock_hz,
    )
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(cluster_bench_summary(reports), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


def _cmd_serve(args) -> int:
    import json

    from repro.experiments.harness import format_table
    from repro.experiments.serving import (
        default_client_mix,
        serve_reports,
    )
    from repro.serving.report import bench_summary

    if args.scene not in scene_names():
        print(f"unknown scene {args.scene!r}; see `python -m repro scenes`",
              file=sys.stderr)
        return 2
    if args.clients < 1:
        print("--clients must be >= 1", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    from repro.serving.slo import AUTO_QUANTUM

    if args.quantum is not None and args.quantum != AUTO_QUANTUM:
        try:
            args.quantum = int(args.quantum)
        except ValueError:
            print(f"--quantum must be an integer or '{AUTO_QUANTUM}'",
                  file=sys.stderr)
            return 2
        if args.quantum < 1:
            print("--quantum must be >= 1 wavefront step", file=sys.stderr)
            return 2
    policies = _serve_policy_set(args)
    if policies is None:
        return 2
    if args.quantum is not None and not any(
        p.endswith("_preemptive") for p in policies
    ):
        print("--quantum only applies to preemptive policies; add "
              "--preemptive or pick a *_preemptive --policy",
              file=sys.stderr)
        return 2
    from repro.serving.policies import DEADLINE_POLICY_NAMES

    if args.best_effort_slack is not None and not any(
        p in DEADLINE_POLICY_NAMES for p in policies
    ):
        print("--best-effort-slack only applies to the deadline policies; "
              "pick a deadline* --policy", file=sys.stderr)
        return 2
    wb = Workbench()
    slo_config = None
    if args.slo_mix is not None:
        from repro.experiments.slo import slo_mix

        requests, slo_config = slo_mix(
            wb,
            preset=args.slo_mix,
            scene=args.scene,
            frames=args.frames,
            size=args.size,
            scale=args.scale,
        )
    else:
        requests = default_client_mix(
            scene=args.scene,
            clients=args.clients,
            frames=args.frames,
            size=args.size,
        )
    profiling = args.profile or args.profile_json is not None
    if args.shards > 1:
        if profiling:
            print("--profile is per-shard work; run it without --shards",
                  file=sys.stderr)
            return 2
        return _serve_cluster(args, requests, policies, wb, slo=slo_config)
    recorder = _serve_recorder(args)
    run = lambda: serve_reports(  # noqa: E731
        wb,
        requests,
        scale=args.scale,
        policies=policies,
        temporal_capacity=args.temporal_capacity,
        shared_content=not args.no_shared_content,
        quantum=args.quantum,
        best_effort_slack=args.best_effort_slack,
        slo=slo_config,
        recorder=recorder,
    )
    profile = None
    if profiling:
        from repro.serving.profiler import profile_serve

        # Render every client sequence first so the profile attributes
        # serving work (scheduling + pricing), not scene rendering.
        for request in requests:
            wb.client_sequence(request)
        reports, profile = profile_serve(run)
    else:
        reports = run()
    print(f"== serve: {args.clients} clients on {args.scene}, "
          f"{args.frames}x{args.size}x{args.size} ({args.scale}) ==")
    rows = [row for policy in policies for row in reports[policy].to_rows()]
    print(format_table(rows))
    for policy in policies:
        rep = reports[policy]
        preempt = (
            f"; {rep.context_switches} context switches (quantum "
            f"{rep.quantum} wavefronts)"
            if rep.quantum is not None
            else ""
        )
        print(
            f"\n{policy}: {rep.busy_cycles / 1e3:.1f} kcycles aggregate vs "
            f"{rep.back_to_back_cycles / 1e3:.1f} back-to-back "
            f"({100.0 * rep.sharing_saving:.1f}% saved by sharing); "
            f"fairness {rep.fairness:.3f}, "
            f"throughput {rep.throughput_fps:.1f} fps{preempt}"
        )
        if slo_config is not None:
            attain = ", ".join(
                f"{cls} {val:.2f}"
                for cls, val in sorted(rep.slo_attainment.items())
            )
            shed = sum(c.shed_frames for c in rep.clients)
            degraded = sum(len(c.degraded) for c in rep.clients)
            print(f"  SLO attainment: {attain}; "
                  f"shed {shed}, degraded {degraded}")
    if profile is not None:
        print()
        print(profile.format_report())
        if args.profile_json is not None:
            with open(args.profile_json, "w") as fh:
                json.dump(profile.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"\nwrote {args.profile_json}")
    _emit_telemetry(
        args, recorder, next(iter(reports.values())).clock_hz
    )
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(bench_summary(reports), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


def _cmd_timeline(args) -> int:
    from repro.errors import ConfigurationError
    from repro.obs import read_events_jsonl, render_dashboard

    try:
        header, events = read_events_jsonl(args.events)
    except (OSError, ConfigurationError, ValueError) as exc:
        print(f"cannot read {args.events}: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(f"{args.events}: no events after the header", file=sys.stderr)
        return 2
    print(
        render_dashboard(
            events, width=args.width, clock_hz=header.get("clock_hz")
        )
    )
    return 0


def _cmd_bench(args) -> int:
    from repro.obs.bench import run_all

    if args.action != "run-all":
        print(f"unknown bench action {args.action!r} (try: run-all)",
              file=sys.stderr)
        return 2
    manifest = run_all(out_dir=args.out_dir, smoke=args.smoke)
    from repro.experiments.harness import format_table

    print()
    print(format_table(manifest["summary_rows"]))
    print()
    for name, path in sorted(manifest["artifacts"].items()):
        print(f"wrote {path}")
    if manifest["problems"]:
        for path, errs in manifest["problems"].items():
            for err in errs:
                print(f"SCHEMA {path}: {err}", file=sys.stderr)
        return 1
    print("\nall artifacts schema-valid")
    return 0


def _cmd_report(args) -> int:
    generate_report(args.out)
    print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ASDR reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("scenes", help="list available scenes").set_defaults(
        fn=_cmd_scenes
    )

    p_exp = sub.add_parser("experiment", help="run paper experiments")
    p_exp.add_argument("ids", nargs="*",
                       help="experiment ids (e.g. fig17a) or 'all'")
    p_exp.add_argument("--list", action="store_true",
                       help="print registered experiment ids and exit")
    p_exp.set_defaults(fn=_cmd_experiment)

    p_render = sub.add_parser("render", help="render a scene to a PPM image")
    p_render.add_argument("scene")
    p_render.add_argument("--out", default="render.ppm")
    p_render.set_defaults(fn=_cmd_render)

    p_video = sub.add_parser(
        "video",
        help="render & simulate a camera-path sequence with temporal reuse",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
examples:
  repro video palace                        # 4-frame 56x56 orbit (default)
  repro video lego --frames 2 --size 16     # CI smoke configuration
  repro video fox --preset shake --hold 2 --frames 6   # pose-replay demo
  repro video family --preset dolly --frames 8 --probe-interval 4
  repro video palace --no-temporal          # price frames independently
  repro video palace --reproject --size 16 --arc 0.05  # warp converged rays
  repro video palace --reproject --size 16 --arc 0.05 --adaptive-overlap 0.8
""",
    )
    p_video.add_argument("scene")
    p_video.add_argument("--frames", type=int, default=4,
                         help="frames in the sequence (default 4)")
    p_video.add_argument("--size", type=int, default=56,
                         help="square frame resolution (default 56)")
    p_video.add_argument("--preset", choices=("orbit", "dolly", "shake"),
                         default="orbit", help="camera path preset")
    p_video.add_argument("--arc", type=float, default=0.1,
                         help="orbit: fraction of the circle swept")
    p_video.add_argument("--travel", type=float, default=0.5,
                         help="dolly: fraction of the radius travelled")
    p_video.add_argument("--amplitude", type=float, default=0.05,
                         help="shake: jitter amplitude (world units)")
    p_video.add_argument("--period", type=int, default=4,
                         help="shake: poses repeat every PERIOD frames")
    p_video.add_argument("--hold", type=int, default=1,
                         help="repeat each pose HOLD consecutive frames")
    p_video.add_argument("--probe-interval", type=int, default=0,
                         help="Phase I cadence; 0 = first frame only, "
                              "1 = every frame (plan reuse off)")
    p_video.add_argument("--no-temporal", action="store_true",
                         help="disable the cross-frame temporal vertex cache")
    p_video.add_argument("--reproject", action="store_true",
                         help="warp the previous frame's pixels forward and "
                              "skip converged rays (PSNR-guarded)")
    p_video.add_argument("--reproject-min-psnr", type=float, default=24.0,
                         help="warp-guard floor in dB; frames whose measured "
                              "warp error exceeds it fall back to plan reuse")
    p_video.add_argument("--adaptive-overlap", type=float, default=None,
                         metavar="FRACTION",
                         help="re-probe Phase I when the measured plan/"
                              "keyframe ray-budget overlap drops below "
                              "FRACTION (replaces --probe-interval cadence)")
    p_video.add_argument("--scale", choices=("server", "edge"),
                         default="server", help="accelerator design point")
    p_video.set_defaults(fn=_cmd_video)

    p_serve = sub.add_parser(
        "serve",
        help="serve N clients' sequences on one simulated accelerator",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
examples:
  repro serve                               # 3 clients on palace (default)
  repro serve lego --clients 5 --frames 6
  repro serve palace --policy round_robin   # one policy only
  repro serve palace --preemptive --quantum 4   # wavefront preemption
  repro serve palace --preemptive --quantum auto    # p95-sized quanta
  repro serve palace --slo-mix overload --preemptive    # armed overload demo
  repro serve palace --policy deadline --best-effort-slack 5000
  repro serve palace --no-shared-content    # price every client as unique
  repro serve palace --profile              # hot functions + phase breakdown
  repro serve lego --json BENCH_serving.json    # machine-readable report
  repro serve palace --shards 2             # shard tenants across a fleet
  repro serve palace --shards 2 --router random   # placement-blind baseline
  repro serve palace --dashboard            # telemetry timeline in the terminal
  repro serve palace --events run.jsonl --trace run.trace.json
""",
    )
    p_serve.add_argument("scene", nargs="?", default="palace")
    p_serve.add_argument("--clients", type=int, default=3,
                         help="concurrent clients (default 3)")
    p_serve.add_argument("--frames", type=int, default=4,
                         help="frames per client sequence (default 4)")
    p_serve.add_argument("--size", type=int, default=16,
                         help="square frame resolution (default 16)")
    from repro.serving.policies import ALL_POLICY_NAMES

    p_serve.add_argument("--policy", choices=("all", *ALL_POLICY_NAMES),
                         default="all", help="scheduling policy to run")
    p_serve.add_argument("--preemptive", action="store_true",
                         help="wavefront-granularity preemption: run the "
                              "preemptive policy variants (with --policy "
                              "all, each next to its frame-atomic twin)")
    p_serve.add_argument("--quantum", default=None,
                         help="preemption quantum in wavefront steps, or "
                              "'auto' to size each quantum from the "
                              "measured cycles-per-step p95 (default 4; "
                              "preemptive policies only)")
    p_serve.add_argument("--best-effort-slack", type=float, default=None,
                         help="slack assigned to deadline-less frames by "
                              "the deadline policies (default inf: best-"
                              "effort frames always yield; deadline "
                              "policies only)")
    from repro.experiments.slo import SLO_MIX_PRESETS

    p_serve.add_argument("--slo-mix", choices=SLO_MIX_PRESETS, default=None,
                         help="replace the default client mix with a "
                              "calibrated SLO overload preset and arm "
                              "shedding + PSNR-guarded degrade "
                              "(--clients is ignored)")
    p_serve.add_argument("--temporal-capacity", type=int, default=None,
                         help="combined temporal vertex-cache budget, "
                              "elastically partitioned among the tenants "
                              "present (default unbounded)")
    p_serve.add_argument("--no-shared-content", action="store_true",
                         help="disable cross-client content replay")
    p_serve.add_argument("--scale", choices=("server", "edge"),
                         default="server", help="accelerator design point")
    from repro.serving.cluster import ROUTER_NAMES

    p_serve.add_argument("--shards", type=int, default=1,
                         help="accelerator fleet size; with more than one "
                              "shard the tenants are routed across a "
                              "ClusterServer instead of one SequenceServer "
                              "(default 1)")
    p_serve.add_argument("--router", choices=ROUTER_NAMES,
                         default="affinity",
                         help="tenant placement policy for --shards > 1 "
                              "(default affinity: co-locate twins so "
                              "content replay and the temporal cache fire)")
    p_serve.add_argument("--profile", action="store_true",
                         help="run the serving loop under cProfile and "
                              "print a hot-function table plus per-phase "
                              "(encoding/mlp/render/bookkeeping) "
                              "wall-clock attribution")
    p_serve.add_argument("--json", metavar="PATH", default=None,
                         help="also write a machine-readable summary "
                              "(p50/p95, throughput, context switches) to "
                              "PATH")
    p_serve.add_argument("--profile-json", metavar="PATH", default=None,
                         help="write the --profile result as JSON to PATH "
                              "(implies --profile)")
    p_serve.add_argument("--dashboard", action="store_true",
                         help="render the run's telemetry timeline (per-"
                              "tenant lanes, queue depth, engine "
                              "utilisation) after the report")
    p_serve.add_argument("--events", metavar="PATH", default=None,
                         help="export the telemetry event stream as "
                              "obs_events/v1 JSONL (re-render it later "
                              "with `repro timeline PATH`)")
    p_serve.add_argument("--trace", metavar="PATH", default=None,
                         help="export a Chrome trace-event JSON timeline "
                              "(load in Perfetto / chrome://tracing)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_timeline = sub.add_parser(
        "timeline",
        help="render an exported telemetry JSONL log as a terminal "
             "timeline dashboard",
    )
    p_timeline.add_argument("events", help="obs_events/v1 JSONL file "
                                           "(from `repro serve --events`)")
    p_timeline.add_argument("--width", type=int, default=64,
                            help="timeline width in characters (default 64)")
    p_timeline.set_defaults(fn=_cmd_timeline)

    p_bench = sub.add_parser(
        "bench",
        help="run benchmark suites (AE harness)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="""\
examples:
  repro bench run-all               # full scale, as committed snapshots
  repro bench run-all --smoke       # CI scale (~a minute)
  repro bench run-all --out-dir /tmp/ae
""",
    )
    p_bench.add_argument("action", choices=("run-all",),
                         help="'run-all': serving + engine + cluster "
                              "benches, BENCH_*.json + results/ folder, "
                              "schema-validated")
    p_bench.add_argument("--smoke", action="store_true",
                         help="CI scale: tiny scene, two frames, one "
                              "timing round")
    p_bench.add_argument("--out-dir", default=".",
                         help="where BENCH_*.json and results/ land "
                              "(default: current directory)")
    p_bench.set_defaults(fn=_cmd_bench)

    p_report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_report.add_argument("--out", default="EXPERIMENTS.md")
    p_report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "ids", None):
        # The registry fills lazily as experiment modules are imported;
        # load it before validating ids (lately-registered experiments
        # like `video` and `serve` were rejected here otherwise).
        load_experiments()
    unknown = [i for i in getattr(args, "ids", []) if i != "all"
               and i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
