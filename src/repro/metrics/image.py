"""Image quality metrics used by the evaluation (Section 6.1).

PSNR and SSIM follow their standard definitions.  LPIPS requires a
pretrained perceptual network which cannot be shipped offline, so
:func:`lpips_proxy` substitutes a multi-scale structural/gradient distance
with the same orientation (lower is better) and sensitivity to the local
color-drift artifacts ASDR's approximations can introduce (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def _as_float_image(img: np.ndarray) -> np.ndarray:
    img = np.asarray(img, dtype=np.float64)
    if img.ndim == 2:
        img = img[..., None]
    return img


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two images in [0, 1]."""
    a, b = _as_float_image(a), _as_float_image(b)
    return float(np.mean((a - b) ** 2))


def psnr(a: np.ndarray, b: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (higher is better)."""
    err = mse(a, b)
    if err <= _EPS:
        return float("inf")
    return float(10.0 * np.log10(data_range**2 / err))


def _box_filter(img: np.ndarray, radius: int) -> np.ndarray:
    """Separable box filter with edge padding, per channel."""
    size = 2 * radius + 1
    padded = np.pad(img, ((radius, radius), (radius, radius), (0, 0)), mode="edge")
    cs = np.cumsum(padded, axis=0)
    vert = (
        np.concatenate([cs[size - 1 : size], cs[size:] - cs[:-size]], axis=0) / size
    )
    cs = np.cumsum(vert, axis=1)
    return (
        np.concatenate([cs[:, size - 1 : size], cs[:, size:] - cs[:, :-size]], axis=1)
        / size
    )


def ssim(
    a: np.ndarray,
    b: np.ndarray,
    data_range: float = 1.0,
    radius: int = 3,
) -> float:
    """Mean structural similarity (box-window variant, higher is better)."""
    a, b = _as_float_image(a), _as_float_image(b)
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    mu_a = _box_filter(a, radius)
    mu_b = _box_filter(b, radius)
    var_a = _box_filter(a * a, radius) - mu_a**2
    var_b = _box_filter(b * b, radius) - mu_b**2
    cov = _box_filter(a * b, radius) - mu_a * mu_b
    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    return float(np.mean(num / den))


def _gradients(img: np.ndarray) -> np.ndarray:
    gx = np.diff(img, axis=1, prepend=img[:, :1])
    gy = np.diff(img, axis=0, prepend=img[:1])
    return np.concatenate([gx, gy], axis=-1)


def _downsample(img: np.ndarray) -> np.ndarray:
    h, w = img.shape[0] // 2 * 2, img.shape[1] // 2 * 2
    img = img[:h, :w]
    return (
        img[0::2, 0::2] + img[1::2, 0::2] + img[0::2, 1::2] + img[1::2, 1::2]
    ) / 4.0


def lpips_proxy(a: np.ndarray, b: np.ndarray, scales: int = 3) -> float:
    """Multi-scale perceptual distance proxy (lower is better).

    At each dyadic scale the distance combines normalised gradient
    differences (edge structure, the dominant term in learned perceptual
    metrics) with local mean color differences.  Returns values roughly in
    [0, 1] like LPIPS.
    """
    a, b = _as_float_image(a), _as_float_image(b)
    total = 0.0
    weight = 0.0
    for s in range(scales):
        ga, gb = _gradients(a), _gradients(b)
        grad_term = np.mean(np.abs(ga - gb))
        mean_term = np.mean(np.abs(_box_filter(a, 2) - _box_filter(b, 2)))
        level = 2.0 * grad_term + 0.5 * mean_term
        w = 1.0 / (s + 1)
        total += w * level
        weight += w
        if min(a.shape[0], a.shape[1]) < 8:
            break
        a, b = _downsample(a), _downsample(b)
    return float(total / weight)
