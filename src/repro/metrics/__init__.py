"""Image quality metrics: PSNR, SSIM, and a perceptual LPIPS proxy."""

from repro.metrics.image import mse, psnr, ssim, lpips_proxy

__all__ = ["mse", "psnr", "ssim", "lpips_proxy"]
