"""Exception types used across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A configuration object holds inconsistent or invalid values."""


class SceneError(ReproError):
    """A scene is unknown or malformed."""


class TrainingError(ReproError):
    """Model training failed to make progress or received bad inputs."""


class SimulationError(ReproError):
    """The architecture simulator received an inconsistent trace."""
