"""ASDR hardware variants (Section 6.9, Figures 26-27).

The paper demonstrates that ASDR's optimisations generalise beyond ReRAM by
evaluating three implementations:

* **ASDR (SA)** — SRAM embedding storage + a systolic array for the MLPs;
* **ASDR (SRAM)** — SRAM storage + SRAM CIM macros for the MLPs;
* **ASDR (ReRAM)** — the native design.

We model the variants through area-equivalent throughput tiers: in the same
silicon budget a systolic array sustains fewer parallel MAC tiles than SRAM
CIM macros, which in turn trail ReRAM CIM (denser cells, in-situ weights),
so ``pes_per_engine`` shrinks down the list; memory/MLP devices switch to
SRAM where applicable, and the Table 2 power entries of the affected
components are scaled by the device energy ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.arch.accelerator import ASDRAccelerator, SimReport
from repro.arch.config import ArchConfig
from repro.cim.reram import RERAM, SRAM
from repro.errors import ConfigurationError
from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.mlp import MLPConfig


@dataclass(frozen=True)
class HardwareVariant:
    """One Section 6.9 implementation point.

    Attributes:
        key: Short id (``sa`` / ``sram`` / ``reram``).
        label: Paper-style display name.
        pes_scale: Fraction of the native ReRAM design's parallel PE count
            sustainable in the same area.
        mem_sram: Embedding storage technology is SRAM.
        mlp_sram: MLP arrays are SRAM(-CIM or systolic).
        mlp_power_scale / mem_power_scale: Table 2 power multipliers for
            the affected components.
    """

    key: str
    label: str
    pes_scale: float
    mem_sram: bool
    mlp_sram: bool
    mlp_power_scale: float
    mem_power_scale: float


VARIANTS: Dict[str, HardwareVariant] = {
    "sa": HardwareVariant(
        key="sa",
        label="ASDR (SA)",
        pes_scale=0.125,
        mem_sram=True,
        mlp_sram=True,
        mlp_power_scale=1.9,
        mem_power_scale=1.4,
    ),
    "sram": HardwareVariant(
        key="sram",
        label="ASDR (SRAM)",
        pes_scale=0.25,
        mem_sram=True,
        mlp_sram=True,
        mlp_power_scale=1.45,
        mem_power_scale=1.4,
    ),
    "reram": HardwareVariant(
        key="reram",
        label="ASDR (ReRAM)",
        pes_scale=1.0,
        mem_sram=False,
        mlp_sram=False,
        mlp_power_scale=1.0,
        mem_power_scale=1.0,
    ),
}

_MLP_COMPONENTS = ("density_subengine", "color_subengine")
_MEM_COMPONENTS = ("mem_xbars",)


def variant_configs(scale: str = "server") -> Dict[str, ArchConfig]:
    """Arch configs of all three variants at a given design scale."""
    base = ArchConfig.server() if scale == "server" else ArchConfig.edge()
    out: Dict[str, ArchConfig] = {}
    for key, variant in VARIANTS.items():
        pes = max(1, int(round(base.pes_per_engine * variant.pes_scale)))
        cfg = replace(
            base,
            name=f"{base.name}-{key}",
            pes_per_engine=pes,
            memory_device=SRAM if variant.mem_sram else RERAM,
            mlp_device=SRAM if variant.mlp_sram else RERAM,
        )
        out[key] = cfg
    return out


def simulate_variant(
    key: str,
    scale: str,
    grid: HashGridConfig,
    density_mlp: MLPConfig,
    color_mlp: MLPConfig,
    camera,
    result,
    group_size: int = 1,
) -> SimReport:
    """Simulate a render on one hardware variant.

    Raises:
        ConfigurationError: for an unknown variant key.
    """
    if key not in VARIANTS:
        raise ConfigurationError(
            f"unknown variant {key!r}; expected one of {sorted(VARIANTS)}"
        )
    variant = VARIANTS[key]
    config = variant_configs(scale)[key]
    accelerator = ASDRAccelerator(config, grid, density_mlp, color_mlp)
    report = accelerator.simulate_render(camera, result, group_size=group_size)
    for component in _MLP_COMPONENTS:
        if component in report.energy_by_component:
            report.energy_by_component[component] *= variant.mlp_power_scale
    for component in _MEM_COMPONENTS:
        if component in report.energy_by_component:
            report.energy_by_component[component] *= variant.mem_power_scale
    report.name = variant.label
    return report
