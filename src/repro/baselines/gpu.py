"""Roofline models of the paper's GPU baselines.

The paper measures CUDA Instant-NGP on an RTX 3070 (consumer) and a Jetson
Xavier NX (edge).  We do not have that hardware; instead each phase of the
exact workload is priced by a roofline with published peak numbers and
phase-specific efficiency factors that capture Instant-NGP's documented
behaviour on GPUs:

* encoding is a random-gather phase — tiny (32 B) scattered reads reach a
  small fraction of DRAM bandwidth;
* the MLPs are tiny (64-128 wide), leaving tensor pipelines far below peak
  (this is why Instant-NGP ships hand-fused kernels and still runs at ~60
  FPS on flagship GPUs);
* volume rendering is elementwise and cheap.

Efficiencies are fixed, documented constants — they set absolute scale, not
the cross-platform *shape* the reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.platform import PlatformModel, PlatformReport, Workload
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GPUSpec:
    """Published characteristics of one GPU.

    Attributes:
        name: Device name.
        peak_flops: Peak FP16/FP32 throughput used by Instant-NGP kernels.
        mem_bandwidth: Peak DRAM bandwidth, bytes/s.
        board_power_w: Sustained board power under render load.
        mlp_efficiency: Achieved fraction of peak on the tiny NeRF MLPs.
        gather_efficiency: Achieved fraction of bandwidth on random
            embedding gathers.
        elementwise_efficiency: Achieved fraction of peak on compositing.
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    board_power_w: float
    mlp_efficiency: float = 0.20
    gather_efficiency: float = 0.10
    elementwise_efficiency: float = 0.30

    def __post_init__(self) -> None:
        if min(self.peak_flops, self.mem_bandwidth, self.board_power_w) <= 0:
            raise ConfigurationError("GPU peaks must be positive")
        for eff in (
            self.mlp_efficiency,
            self.gather_efficiency,
            self.elementwise_efficiency,
        ):
            if not 0 < eff <= 1:
                raise ConfigurationError("efficiencies must lie in (0, 1]")


# RTX 3070: 20.3 TFLOPS FP32, 448 GB/s GDDR6, 220 W TGP.
RTX3070 = GPUSpec(
    name="RTX 3070",
    peak_flops=20.3e12,
    mem_bandwidth=448e9,
    board_power_w=220.0,
)

# Jetson Xavier NX: ~1.7 TFLOPS FP16 (GPU), 59.7 GB/s LPDDR4x, 15 W mode.
XAVIER_NX = GPUSpec(
    name="Xavier NX",
    peak_flops=1.69e12,
    mem_bandwidth=59.7e9,
    board_power_w=15.0,
    mlp_efficiency=0.18,
    gather_efficiency=0.08,
)


class GPUModel(PlatformModel):
    """Phase-serial roofline execution of a workload on a GPU."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        self.name = spec.name

    def run(self, workload: Workload) -> PlatformReport:
        s = self.spec
        encoding = max(
            workload.embedding_bytes / (s.mem_bandwidth * s.gather_efficiency),
            workload.embedding_flops / (s.peak_flops * s.elementwise_efficiency),
        )
        mlp = workload.mlp_flops / (s.peak_flops * s.mlp_efficiency)
        volume = workload.volume_flops / (s.peak_flops * s.elementwise_efficiency)
        phases = {"encoding": encoding, "mlp": mlp, "volume": volume}
        total = sum(phases.values())
        # Dynamic power scales with utilisation over a ~35 % idle floor.
        utilisation = min(
            1.0, workload.total_flops / (s.peak_flops * total) if total else 0.0
        )
        power = s.board_power_w * (0.35 + 0.65 * utilisation)
        return PlatformReport(
            name=self.name, phase_seconds=phases, energy_joules=power * total
        )
