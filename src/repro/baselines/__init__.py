"""Baseline platform models the paper compares against (Section 6.1).

* :mod:`repro.baselines.gpu` — roofline models of the RTX 3070 and Jetson
  Xavier NX fed with the pipeline's exact FLOP/byte counts.
* :mod:`repro.baselines.neurex` — NeuRex-like accelerator (subgrid-cached
  encoding + systolic MLP), server and edge scaled.
* :mod:`repro.baselines.variants` — ASDR hardware variants of Section 6.9:
  SA (SRAM memory + systolic MLP), SRAM CIM, and native ReRAM.
"""

from repro.baselines.platform import PlatformModel, PlatformReport, Workload
from repro.baselines.gpu import GPUModel, RTX3070, XAVIER_NX, GPUSpec
from repro.baselines.neurex import NeurexModel, NeurexSpec, NEUREX_SERVER, NEUREX_EDGE
from repro.baselines.variants import (
    HardwareVariant,
    variant_configs,
    simulate_variant,
)

__all__ = [
    "PlatformModel",
    "PlatformReport",
    "Workload",
    "GPUModel",
    "GPUSpec",
    "RTX3070",
    "XAVIER_NX",
    "NeurexModel",
    "NeurexSpec",
    "NEUREX_SERVER",
    "NEUREX_EDGE",
    "HardwareVariant",
    "variant_configs",
    "simulate_variant",
]
