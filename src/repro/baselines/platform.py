"""Common workload/report types for baseline platform models.

A :class:`Workload` captures everything a platform model needs to price a
render: per-phase FLOPs and bytes plus point/lookup counts.  It is built
directly from the renderer's operation accounting, so every platform prices
*exactly the same work*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import SimulationError


@dataclass(frozen=True)
class Workload:
    """Operation counts of one rendered image.

    Attributes:
        embedding_flops / embedding_bytes: Encoding-phase interpolation
            FLOPs and table bytes gathered.
        density_flops / color_flops: MLP FLOPs per network.
        volume_flops: Compositing/approximation FLOPs.
        density_points / color_points: MLP evaluations per network.
        lookups: Individual table-entry fetches (8 per level per point).
    """

    embedding_flops: int
    embedding_bytes: int
    density_flops: int
    color_flops: int
    volume_flops: int
    density_points: int
    color_points: int
    lookups: int

    @classmethod
    def from_render_result(cls, result, model) -> "Workload":
        """Build a workload from a render result and its model."""
        pc = result.phase_counts
        color_points = getattr(result, "color_points", result.points_total
                               if hasattr(result, "points_total") else 0)
        density_points = getattr(
            result, "density_points", getattr(result, "points_total", 0)
        )
        levels = getattr(model.config, "grid", None)
        lookups_per_point = 8 * (levels.num_levels if levels else 3)
        return cls(
            embedding_flops=pc["embedding"].flops,
            embedding_bytes=pc["embedding"].bytes,
            density_flops=pc["density"].flops,
            color_flops=pc["color"].flops,
            volume_flops=pc["volume"].flops,
            density_points=density_points,
            color_points=color_points,
            lookups=density_points * lookups_per_point,
        )

    @property
    def total_flops(self) -> int:
        return (
            self.embedding_flops
            + self.density_flops
            + self.color_flops
            + self.volume_flops
        )

    @property
    def mlp_flops(self) -> int:
        return self.density_flops + self.color_flops


@dataclass
class PlatformReport:
    """Time/energy of a workload on one platform.

    Attributes:
        name: Platform label.
        phase_seconds: Seconds per phase (``encoding`` / ``mlp`` /
            ``volume``).
        energy_joules: Total energy.
    """

    name: str
    phase_seconds: Dict[str, float]
    energy_joules: float

    @property
    def time_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def encoding_seconds(self) -> float:
        return self.phase_seconds.get("encoding", 0.0)

    @property
    def mlp_seconds(self) -> float:
        return self.phase_seconds.get("mlp", 0.0)


class PlatformModel:
    """Interface of all baseline platform models."""

    name: str = "platform"

    def run(self, workload: Workload) -> PlatformReport:
        """Price ``workload`` on this platform."""
        raise NotImplementedError
