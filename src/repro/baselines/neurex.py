"""NeuRex-like accelerator model (Lee et al., ISCA'23 — the paper's main
accelerator baseline).

NeuRex partitions the input grid into subgrids so only part of each hash
table lives in an on-chip buffer, giving high (but not perfect) encoding
locality, and executes the MLPs on a dense systolic array.  The paper
compares against server and edge scalings of that design; we model the same
structure analytically:

* encoding: ``lanes`` lookups/cycle from the grid buffer; a small miss
  fraction pays a DRAM penalty (subgrid refills);
* MLP: systolic array of ``array_macs`` MACs at ``utilisation``;
* volume rendering: elementwise units, never the bottleneck.

NeuRex runs the *original* fixed-budget algorithm — it has no adaptive
sampling or color decoupling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.platform import PlatformModel, PlatformReport, Workload
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NeurexSpec:
    """Design-point parameters of a NeuRex scaling.

    Attributes:
        name: Label.
        clock_hz: Core clock.
        encoding_lanes: Grid-buffer lookups per cycle.
        miss_rate: Fraction of lookups missing the subgrid buffer.
        miss_penalty_cycles: DRAM refill cost per miss.
        array_macs: Systolic array MAC count.
        utilisation: Achieved MAC utilisation on the NeRF MLPs.
        power_w: Average active power.
    """

    name: str
    clock_hz: float = 1e9
    encoding_lanes: int = 32
    miss_rate: float = 0.005
    miss_penalty_cycles: int = 8
    array_macs: int = 128 * 128
    utilisation: float = 0.75
    power_w: float = 8.0

    def __post_init__(self) -> None:
        if not 0 <= self.miss_rate <= 1:
            raise ConfigurationError("miss_rate must lie in [0, 1]")
        if min(self.encoding_lanes, self.array_macs) < 1:
            raise ConfigurationError("lanes and array_macs must be positive")


NEUREX_SERVER = NeurexSpec(name="NeuRex-Server")

NEUREX_EDGE = NeurexSpec(
    name="NeuRex-Edge",
    encoding_lanes=8,
    miss_rate=0.008,
    miss_penalty_cycles=16,
    array_macs=64 * 64,
    utilisation=0.7,
    power_w=2.0,
)


class NeurexModel(PlatformModel):
    """Analytic NeuRex execution of a workload."""

    def __init__(self, spec: NeurexSpec) -> None:
        self.spec = spec
        self.name = spec.name

    def run(self, workload: Workload) -> PlatformReport:
        s = self.spec
        lookup_cycles = workload.lookups / s.encoding_lanes
        miss_cycles = workload.lookups * s.miss_rate * s.miss_penalty_cycles
        encoding = (lookup_cycles + miss_cycles) / s.clock_hz
        mlp_macs = workload.mlp_flops / 2
        mlp = mlp_macs / (s.array_macs * s.utilisation) / s.clock_hz
        volume = workload.volume_flops / (s.array_macs / 8) / s.clock_hz
        phases = {"encoding": encoding, "mlp": mlp, "volume": volume}
        total = sum(phases.values())
        return PlatformReport(
            name=self.name,
            phase_seconds=phases,
            energy_joules=s.power_w * total,
        )
