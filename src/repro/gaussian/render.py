"""Depth-sorted Gaussian splatting renderer.

Gaussians are projected through the pinhole camera, sorted front to back,
and alpha-composited per pixel inside their screen-space footprints.  The
renderer records per-pixel *blend counts* — how many primitives actually
contributed to each pixel — the quantity adaptive Gaussian sampling
budgets (Section 8.2's proposed extension).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gaussian.splats import GaussianCloud
from repro.scenes.cameras import Camera


@dataclass
class GaussianRenderResult:
    """Output of a splatting render.

    Attributes:
        image: ``(H, W, 3)`` RGB.
        blend_counts: ``(H, W)`` primitives composited per pixel.
        blends_total: Total blend operations (the cost adaptive Gaussian
            sampling reduces).
    """

    image: np.ndarray
    blend_counts: np.ndarray
    blends_total: int


class GaussianRenderer:
    """Front-to-back alpha compositing of a Gaussian cloud.

    Args:
        cloud: The primitives.
        alpha_cutoff: Contributions below this alpha are skipped.
        opacity_threshold: Pixels whose accumulated opacity crosses this
            stop blending (early termination, standard in 3DGS).
        background: Background intensity.
    """

    def __init__(
        self,
        cloud: GaussianCloud,
        alpha_cutoff: float = 1.0 / 255.0,
        opacity_threshold: float = 0.999,
        background: float = 1.0,
    ) -> None:
        self.cloud = cloud
        self.alpha_cutoff = alpha_cutoff
        self.opacity_threshold = opacity_threshold
        self.background = background

    def project(self, camera: Camera):
        """Project centers to screen space.

        Returns:
            ``(xy, depth, pixel_radius, visible)``: screen positions
            ``(N, 2)``, camera-space depths, footprint radii in pixels and
            the visibility mask.
        """
        world_to_cam = np.linalg.inv(camera.camera_to_world)
        homo = np.concatenate(
            [self.cloud.positions, np.ones((len(self.cloud), 1))], axis=-1
        )
        cam = homo @ world_to_cam.T
        depth = -cam[:, 2]
        visible = depth > 1e-6
        safe_depth = np.where(visible, depth, 1.0)
        x = camera.focal * cam[:, 0] / safe_depth + camera.width / 2.0 - 0.5
        y = -camera.focal * cam[:, 1] / safe_depth + camera.height / 2.0 - 0.5
        pixel_radius = camera.focal * self.cloud.radii / safe_depth
        on_screen = (
            (x > -3 * pixel_radius)
            & (x < camera.width + 3 * pixel_radius)
            & (y > -3 * pixel_radius)
            & (y < camera.height + 3 * pixel_radius)
        )
        return np.stack([x, y], axis=-1), depth, pixel_radius, visible & on_screen

    def render_image(
        self,
        camera: Camera,
        max_blends_per_pixel: Optional[np.ndarray] = None,
    ) -> GaussianRenderResult:
        """Render; optionally cap each pixel's blend count.

        Args:
            max_blends_per_pixel: ``(H*W,)`` per-pixel primitive budgets
                (the adaptive Gaussian sampling hook); ``None`` means
                unlimited.
        """
        h, w = camera.height, camera.width
        rgb = np.zeros((h * w, 3))
        trans = np.ones(h * w)
        counts = np.zeros(h * w, dtype=np.int64)
        budgets = (
            np.full(h * w, np.iinfo(np.int64).max)
            if max_blends_per_pixel is None
            else np.asarray(max_blends_per_pixel, dtype=np.int64)
        )

        xy, depth, pix_r, visible = self.project(camera)
        order = np.argsort(depth, kind="stable")
        order = order[visible[order]]

        cols = np.arange(w)
        rows = np.arange(h)
        for g in order:
            cx, cy = xy[g]
            r = max(pix_r[g], 0.5)
            extent = int(np.ceil(3.0 * r))
            x0, x1 = max(0, int(cx) - extent), min(w - 1, int(cx) + extent)
            y0, y1 = max(0, int(cy) - extent), min(h - 1, int(cy) + extent)
            if x0 > x1 or y0 > y1:
                continue
            gx = cols[x0 : x1 + 1]
            gy = rows[y0 : y1 + 1]
            dx = (gx[None, :] - cx) ** 2
            dy = (gy[:, None] - cy) ** 2
            alpha = self.cloud.opacities[g] * np.exp(-(dx + dy) / (2.0 * r * r))
            footprint = alpha > self.alpha_cutoff
            if not footprint.any():
                continue
            flat_ids = (gy[:, None] * w + gx[None, :])[footprint]
            active = (
                (trans[flat_ids] > 1.0 - self.opacity_threshold)
                & (counts[flat_ids] < budgets[flat_ids])
            )
            ids = flat_ids[active]
            if not len(ids):
                continue
            a = alpha[footprint][active]
            rgb[ids] += (trans[ids] * a)[:, None] * self.cloud.colors[g]
            trans[ids] *= 1.0 - a
            counts[ids] += 1

        rgb += trans[:, None] * self.background
        return GaussianRenderResult(
            image=rgb.reshape(h, w, 3),
            blend_counts=counts.reshape(h, w),
            blends_total=int(counts.sum()),
        )
