"""Gaussian primitive clouds fitted to analytic scenes.

A :class:`GaussianCloud` holds isotropic 3D Gaussians (position, radius,
color, opacity).  :func:`fit_gaussians` places them on the analytic
scene's surface: candidates are drawn in the unit cube, kept where density
is high, thinned by Poisson-style de-duplication, and colored by the
scene's shaded albedo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SceneError
from repro.scenes.analytic import AnalyticScene
from repro.utils.rng import derive_seed, seeded_rng


@dataclass
class GaussianCloud:
    """Isotropic Gaussian primitives.

    Attributes:
        positions: ``(N, 3)`` centers in the unit cube.
        radii: ``(N,)`` standard deviations (scene units).
        colors: ``(N, 3)`` RGB in [0, 1].
        opacities: ``(N,)`` peak alphas in (0, 1].
    """

    positions: np.ndarray
    radii: np.ndarray
    colors: np.ndarray
    opacities: np.ndarray

    def __post_init__(self) -> None:
        n = self.positions.shape[0]
        if self.positions.shape != (n, 3) or self.colors.shape != (n, 3):
            raise SceneError("positions/colors must be (N, 3)")
        if self.radii.shape != (n,) or self.opacities.shape != (n,):
            raise SceneError("radii/opacities must be (N,)")

    def __len__(self) -> int:
        return self.positions.shape[0]


def fit_gaussians(
    scene: AnalyticScene,
    count: int = 1500,
    radius: float = 0.02,
    seed: int = 0,
) -> GaussianCloud:
    """Place ``count`` Gaussians on the scene surface.

    Candidates cluster where the analytic density is high; near-duplicate
    centers (within half a radius) are thinned so the cloud covers the
    surface instead of piling up.
    """
    rng = seeded_rng(derive_seed(seed, "gaussians", scene.name))
    kept_positions = []
    attempts = 0
    cell = max(radius, 1e-3)
    occupied = set()
    while len(kept_positions) < count and attempts < 40:
        attempts += 1
        candidates = rng.random((count * 4, 3))
        density = scene.density(candidates)
        good = candidates[density > scene.sigma_max * 0.5]
        for p in good:
            key = tuple((p / cell).astype(np.int64))
            if key in occupied:
                continue
            occupied.add(key)
            kept_positions.append(p)
            if len(kept_positions) >= count:
                break
    if not kept_positions:
        raise SceneError(f"scene {scene.name!r} has no occupied space to fit")
    positions = np.array(kept_positions)
    n = len(positions)

    view_dirs = np.tile([0.0, 0.0, -1.0], (n, 1))
    colors = scene.color(positions, view_dirs)
    radii = np.full(n, radius) * (0.8 + 0.4 * rng.random(n))
    opacities = 0.6 + 0.35 * rng.random(n)
    return GaussianCloud(
        positions=positions, radii=radii, colors=colors, opacities=opacities
    )
