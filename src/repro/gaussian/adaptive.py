"""Adaptive Gaussian sampling (the paper's Section 8.2 future work).

Exactly mirrors Section 4.2's two-phase scheme, with "number of sample
points" replaced by "number of Gaussian primitives blended per pixel":

* Phase I renders a sparse probe grid without budget limits and records
  each probe's blend count; re-rendering a probe with the first ``k``
  primitives is emulated by the renderer's per-pixel cap, and the smallest
  ``k`` whose color deviates from the full render by at most ``delta``
  (Eq. 3) becomes the probe's budget.
* Phase II renders all pixels with bilinearly interpolated budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.difficulty import rendering_difficulty
from repro.core.sampling_plan import interpolate_budgets, probe_pixel_indices
from repro.errors import ConfigurationError
from repro.gaussian.render import GaussianRenderer, GaussianRenderResult
from repro.scenes.cameras import Camera


@dataclass
class AdaptiveGaussianConfig:
    """Adaptive Gaussian sampling parameters.

    Attributes:
        probe_stride: Probe-grid stride ``d``.
        threshold: Eq. (3) difficulty threshold ``delta``.
        candidate_fractions: Candidate budgets as fractions of the probe's
            observed full blend count.
        min_blends: Budget floor per pixel.
    """

    probe_stride: int = 5
    threshold: float = 1.0 / 256.0
    candidate_fractions: Sequence[float] = (1 / 8, 1 / 4, 1 / 2)
    min_blends: int = 1

    def __post_init__(self) -> None:
        if self.probe_stride < 1:
            raise ConfigurationError("probe_stride must be >= 1")
        if self.threshold < 0:
            raise ConfigurationError("threshold must be >= 0")
        fracs = list(self.candidate_fractions)
        if not fracs or any(not 0 < f < 1 for f in fracs):
            raise ConfigurationError("fractions must lie in (0, 1)")


class AdaptiveGaussianRenderer:
    """Two-phase adaptive splatting renderer."""

    def __init__(
        self,
        renderer: GaussianRenderer,
        config: AdaptiveGaussianConfig = None,
    ) -> None:
        self.renderer = renderer
        self.config = config or AdaptiveGaussianConfig()

    # ------------------------------------------------------------------
    def plan_budgets(self, camera: Camera) -> Tuple[np.ndarray, GaussianRenderResult]:
        """Phase I: pick per-pixel blend budgets from the probe grid."""
        cfg = self.config
        full = self.renderer.render_image(camera)
        h, w = camera.height, camera.width
        probe_idx, rows, cols = probe_pixel_indices(h, w, cfg.probe_stride)
        full_rgb = full.image.reshape(-1, 3)[probe_idx]
        full_counts = full.blend_counts.reshape(-1)[probe_idx]

        budgets = full_counts.copy()
        undecided = np.ones(len(probe_idx), dtype=bool)
        for frac in sorted(cfg.candidate_fractions):
            candidate = np.maximum(
                cfg.min_blends, np.ceil(full_counts * frac).astype(np.int64)
            )
            caps = np.zeros(h * w, dtype=np.int64)
            caps[probe_idx] = candidate
            capped = self.renderer.render_image(camera, caps)
            rgb_i = capped.image.reshape(-1, 3)[probe_idx]
            rd = rendering_difficulty(full_rgb, rgb_i)
            accept = undecided & (rd <= cfg.threshold)
            budgets[accept] = candidate[accept]
            undecided &= ~accept

        all_budgets = interpolate_budgets(
            budgets.astype(np.float64), rows, cols, h, w
        )
        all_budgets = np.maximum(all_budgets, cfg.min_blends)
        all_budgets[probe_idx] = np.maximum(budgets, cfg.min_blends)
        return all_budgets, full

    def render_image(self, camera: Camera) -> Tuple[GaussianRenderResult, dict]:
        """Full two-phase render.

        Returns:
            ``(result, stats)``; stats report the blend savings versus the
            unlimited render (the extension's headline number).
        """
        budgets, full = self.plan_budgets(camera)
        result = self.renderer.render_image(camera, budgets)
        stats = {
            "full_blends": full.blends_total,
            "adaptive_blends": result.blends_total,
            "savings": 1.0 - result.blends_total / max(full.blends_total, 1),
        }
        return result, stats
