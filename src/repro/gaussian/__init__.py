"""Minimal 3D Gaussian Splatting substrate + adaptive Gaussian sampling.

Section 8.2 of the paper proposes extending adaptive sampling to 3DGS as
"adaptive Gaussian sampling — optimizing the number of Gaussian primitives
per pixel or tile" and defers it to future work.  This package implements
that extension: a small 3DGS renderer (Gaussian cloud fitted to the
analytic scenes, depth-sorted alpha compositing) and the probe-based
per-pixel primitive-budget selection mirroring Section 4.2.
"""

from repro.gaussian.splats import GaussianCloud, fit_gaussians
from repro.gaussian.render import GaussianRenderer, GaussianRenderResult
from repro.gaussian.adaptive import AdaptiveGaussianConfig, AdaptiveGaussianRenderer

__all__ = [
    "GaussianCloud",
    "fit_gaussians",
    "GaussianRenderer",
    "GaussianRenderResult",
    "AdaptiveGaussianConfig",
    "AdaptiveGaussianRenderer",
]
