"""repro — reproduction of ASDR (ASPLOS 2025).

ASDR accelerates Instant-NGP neural rendering through adaptive sampling,
color/density decoupling, and a ReRAM CIM architecture with hybrid address
mapping and register-cache data reuse.  This package implements the full
stack in NumPy: procedural scenes, the Instant-NGP/TensoRF substrates, the
ASDR algorithm, a cycle-level accelerator simulator, baseline platform
models, and the experiment harness regenerating every paper table/figure.

Quickstart::

    from repro import (
        load_dataset, InstantNGPModel, InstantNGPConfig,
        distill_scene, ASDRRenderer, BaselineRenderer, psnr,
    )

    dataset = load_dataset("lego")
    model = InstantNGPModel(InstantNGPConfig())
    distill_scene(model, dataset.scene)
    image = ASDRRenderer(model).render_image(dataset.cameras[0]).image
"""

from repro.core import (
    ASDRConfig,
    ASDRRenderer,
    ASDRRenderResult,
    AdaptiveSamplingConfig,
    ApproximationConfig,
)
from repro.metrics import lpips_proxy, psnr, ssim
from repro.nerf import (
    BaselineRenderer,
    HashGridConfig,
    InstantNGPConfig,
    InstantNGPModel,
    TensoRFConfig,
    TensoRFModel,
    TrainingConfig,
    distill_scene,
)
from repro.scenes import SceneDataset, load_dataset, make_scene, scene_names
from repro.scenes.cameras import CameraPath, camera_path

__version__ = "1.0.0"

__all__ = [
    "ASDRConfig",
    "ASDRRenderer",
    "ASDRRenderResult",
    "AdaptiveSamplingConfig",
    "ApproximationConfig",
    "BaselineRenderer",
    "HashGridConfig",
    "InstantNGPConfig",
    "InstantNGPModel",
    "TensoRFConfig",
    "TensoRFModel",
    "TrainingConfig",
    "distill_scene",
    "CameraPath",
    "camera_path",
    "SceneDataset",
    "load_dataset",
    "make_scene",
    "scene_names",
    "lpips_proxy",
    "psnr",
    "ssim",
    "__version__",
]
