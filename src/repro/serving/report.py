"""Serving outcome reports: per-client latency, throughput and fairness.

The server's virtual clock prices every scheduled frame in accelerator
cycles, so the metrics here are deterministic arithmetic over the
schedule, not wall-clock measurements:

* **latency** — cycles from a client's arrival to each frame's delivery
  (p50/p95/max per client);
* **throughput** — delivered frames per simulated second across the run;
* **fairness** — Jain's index over per-client slowdowns, where slowdown
  is a client's serving makespan divided by its cycles running alone on
  the same accelerator (1.0 = every client slowed equally; lower = some
  client paid disproportionately for the sharing).

Preemption-aware accounting: under a preemptive policy a frame's
``completion_cycle - start_cycle`` spans every suspension, while its
``cycles`` count only the wavefronts it actually executed — the gap is
time spent preempted.  The report separates the two: per-frame and
per-client **preemption counts**, the run's **context switches** (times
the engines' in-flight frame state was set aside for another tenant) and
any configured **context-switch overhead cycles**, which are accounted
next to — never inside — per-client service cycles, so the conservation
invariant reads ``busy == sum(service)`` and
``makespan == busy + context_switch_cycles`` when the clock never idles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` in ``(0, 1]``.

    Example:
        >>> round(jain_fairness([1.0, 1.0, 1.0]), 3)
        1.0
        >>> round(jain_fairness([3.0, 1.0]), 3)
        0.8
    """
    x = np.asarray(list(values), dtype=np.float64)
    if x.size == 0 or not np.any(x):
        return 1.0
    return float(x.sum() ** 2 / (x.size * np.square(x).sum()))


@dataclass(frozen=True)
class ScheduledFrame:
    """One executed work item in the serving schedule.

    Attributes:
        client: Tenant the frame was delivered to.
        frame: Frame index within the client's sequence.
        mode: Work-item mode (``probe`` / ``reuse`` / ``replay``).
        cross_replay: True when the frame was served from content another
            client already executed this run (priced at scan-out).
        start_cycle / cycles / completion_cycle: Placement on the
            accelerator's virtual clock.  Under preemption
            ``completion_cycle - start_cycle`` may exceed ``cycles``: the
            difference is time the frame sat suspended.
        preemptions: Times the frame was suspended with work remaining.
        delivered: False for a frame aborted mid-execution by a client
            departure — its ``cycles`` still occupied the accelerator
            (and count toward busy/service totals) but no frame reached
            the client, so it contributes no latency sample.
    """

    client: str
    frame: int
    mode: str
    cross_replay: bool
    start_cycle: int
    cycles: int
    completion_cycle: int
    preemptions: int = 0
    delivered: bool = True


@dataclass
class ClientServeReport:
    """One tenant's outcome of a serving run.

    Attributes:
        client_id / scene / preset: Request identity.
        arrival_cycle: When the request arrived.
        latencies_cycles: Per-frame delivery latencies (completion minus
            arrival), in delivery order.
        service_cycles: Accelerator cycles attributed to this client's
            frames (the conservation invariant: these sum to the run's
            busy cycles across clients).
        alone_cycles: Cycles the client's sequence costs running alone on
            the same accelerator (the slowdown denominator).
        energy_joules: Energy attributed to this client's frames.
        probes / reuses / replays / cross_replays: Frame-mode mix as
            executed (``cross_replays`` counts frames of any mode that
            were served from another client's executed content).
        deadline_misses: Frames delivered after their deadline (0 when the
            run had no deadlines).
        preemptions: Times one of this client's in-flight frames was
            suspended for another tenant's wavefronts.
        aborted_frames: Frames cancelled by the client's departure
            (undelivered; at most one of them — the in-flight frame —
            contributed service cycles).
        twin_deferrals: Scheduling decisions at which one of this
            client's frames was deferred because its content was
            mid-flight on another tenant (waiting to deliver as a
            cross-client replay instead of executing fresh).
        slo_class: The request's service class (``interactive`` /
            ``standard`` / ``batch``) — the key per-class SLO attainment
            aggregates by.
        shed_frames: Frames dropped by overload shedding (undelivered,
            zero cycles; they count against SLO attainment).
        degraded: One entry per frame served at reduced sampling budget
            (``{"frame", "fraction", "psnr"}`` — ``psnr`` is the measured
            degraded-vs-full quality when known, else ``None``).
    """

    client_id: str
    scene: str
    preset: str
    arrival_cycle: int
    latencies_cycles: List[int] = field(default_factory=list)
    service_cycles: int = 0
    alone_cycles: int = 0
    energy_joules: float = 0.0
    probes: int = 0
    reuses: int = 0
    replays: int = 0
    cross_replays: int = 0
    deadline_misses: int = 0
    preemptions: int = 0
    aborted_frames: int = 0
    twin_deferrals: int = 0
    slo_class: str = "standard"
    shed_frames: int = 0
    degraded: List[Dict] = field(default_factory=list)

    @property
    def frames(self) -> int:
        return len(self.latencies_cycles)

    @property
    def makespan_cycles(self) -> int:
        """Arrival-to-last-frame latency (the client's completion time)."""
        return max(self.latencies_cycles) if self.latencies_cycles else 0

    @property
    def first_frame_cycles(self) -> int:
        return min(self.latencies_cycles) if self.latencies_cycles else 0

    @property
    def slowdown(self) -> float:
        """Serving makespan over alone cycles (1.0 = no sharing penalty;
        below 1.0 means cross-client reuse made sharing a net win)."""
        return self.makespan_cycles / self.alone_cycles if self.alone_cycles else 1.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_cycles:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_cycles), q))

    @property
    def slo_expected_frames(self) -> int:
        """Frames the SLO holds the server to: delivered plus aborted
        plus shed (a frame the server dropped still disappoints the
        client it was promised to)."""
        return self.frames + self.aborted_frames + self.shed_frames

    @property
    def slo_attained_frames(self) -> int:
        """Frames delivered on time (deadline-less deliveries count —
        there was no promise to break)."""
        return self.frames - self.deadline_misses

    @property
    def slo_attainment(self) -> float:
        """On-time fraction of this client's expected frames (1.0 for an
        empty window)."""
        expected = self.slo_expected_frames
        return self.slo_attained_frames / expected if expected else 1.0

    @property
    def mode_mix(self) -> str:
        """Compact ``probes/reuses/replays(+cross)`` frame-mix label."""
        mix = f"{self.probes}p/{self.reuses}r/{self.replays}x"
        if self.cross_replays:
            mix += f"+{self.cross_replays}c"
        return mix


@dataclass
class ServeReport:
    """Outcome of serving all admitted clients under one policy.

    Attributes:
        policy: Scheduling policy name.
        clock_hz: Accelerator clock (converts cycles to seconds).
        clients: Per-client reports, in submission order.
        schedule: Executed frames in execution order.
        makespan_cycles: Final virtual-clock value (busy plus context-
            switch overhead plus any idle gaps before late arrivals).
        back_to_back_cycles: Sum of every client's alone cycles — the
            reference a serving run must beat (or at worst match) to
            justify sharing the accelerator.
        context_switches: Times the engines' in-flight frame state was
            set aside for another tenant (0 under non-preemptive
            policies, whose frames are atomic).
        context_switch_cycles: Total overhead cycles charged for those
            switches (the server's ``context_switch_cycles`` each) —
            accounted separately from per-client service so conservation
            stays exact.
        quantum: Preemption quantum in wavefront steps, the string
            ``"auto"`` when the run was auto-tuned, or ``None`` for
            non-preemptive policies.
    """

    policy: str
    clock_hz: float
    clients: List[ClientServeReport] = field(default_factory=list)
    schedule: List[ScheduledFrame] = field(default_factory=list)
    makespan_cycles: int = 0
    back_to_back_cycles: int = 0
    context_switches: int = 0
    context_switch_cycles: int = 0
    quantum: Optional[Union[int, str]] = None

    @property
    def busy_cycles(self) -> int:
        """Cycles the accelerator actually executed (no idle gaps) — the
        aggregate the acceptance criterion compares to back-to-back."""
        return sum(s.cycles for s in self.schedule)

    @property
    def total_cycles(self) -> int:
        """Busy cycles plus context-switch overhead — everything the
        accelerator spent other than idling for arrivals."""
        return self.busy_cycles + self.context_switch_cycles

    @property
    def total_frames(self) -> int:
        return sum(c.frames for c in self.clients)

    def latency_percentile(self, q: float) -> float:
        """Percentile over every delivered frame's latency, all clients."""
        lats = [lat for c in self.clients for lat in c.latencies_cycles]
        if not lats:
            return 0.0
        return float(np.percentile(np.asarray(lats), q))

    @property
    def throughput_fps(self) -> float:
        """Delivered frames per simulated second across the run."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.total_frames / (self.makespan_cycles / self.clock_hz)

    @property
    def fairness(self) -> float:
        """Jain's index over per-client slowdowns (1.0 = perfectly fair)."""
        return jain_fairness([c.slowdown for c in self.clients])

    @property
    def slo_attainment(self) -> Dict[str, float]:
        """Per-class on-time fraction: delivered-on-time frames over
        expected frames (delivered + aborted + shed), aggregated over
        every client of the class.  Only classes present in the run
        appear; a class whose clients expected no frames reads 1.0."""
        attained: Dict[str, int] = {}
        expected: Dict[str, int] = {}
        for c in self.clients:
            attained[c.slo_class] = (
                attained.get(c.slo_class, 0) + c.slo_attained_frames
            )
            expected[c.slo_class] = (
                expected.get(c.slo_class, 0) + c.slo_expected_frames
            )
        return {
            cls: (attained[cls] / expected[cls] if expected[cls] else 1.0)
            for cls in sorted(expected)
        }

    @property
    def sharing_saving(self) -> float:
        """Fraction of the back-to-back cycles that cross-client reuse
        saved (0.0 when clients share no content)."""
        if self.back_to_back_cycles == 0:
            return 0.0
        return 1.0 - self.busy_cycles / self.back_to_back_cycles

    @property
    def energy_joules(self) -> float:
        return sum(c.energy_joules for c in self.clients)

    def client(self, client_id: str) -> ClientServeReport:
        for c in self.clients:
            if c.client_id == client_id:
                return c
        raise KeyError(client_id)

    # ------------------------------------------------------------------
    def to_rows(self) -> List[Dict[str, object]]:
        """Table rows: one per client plus an aggregate row (the shape
        the ``serve`` experiment prints and the benchmarks assert on)."""
        ms = 1e3 / self.clock_hz
        rows: List[Dict[str, object]] = []
        for c in self.clients:
            rows.append(
                {
                    "policy": self.policy,
                    "client": c.client_id,
                    "frames": str(c.frames),
                    "modes": c.mode_mix,
                    "svc_kcycles": c.service_cycles / 1e3,
                    "makespan_kc": c.makespan_cycles / 1e3,
                    "p50_ms": c.latency_percentile(50) * ms,
                    "p95_ms": c.latency_percentile(95) * ms,
                    "slowdown": c.slowdown,
                    "misses": str(c.deadline_misses),
                    "preempt": str(c.preemptions),
                    "fairness": "",
                    "fps": "",
                }
            )
        rows.append(
            {
                "policy": self.policy,
                "client": "(aggregate)",
                "frames": str(self.total_frames),
                "modes": f"b2b {self.back_to_back_cycles / 1e3:.0f}kc",
                "svc_kcycles": self.busy_cycles / 1e3,
                "makespan_kc": self.makespan_cycles / 1e3,
                "p50_ms": self.latency_percentile(50) * ms,
                "p95_ms": self.latency_percentile(95) * ms,
                "slowdown": float(
                    np.mean([c.slowdown for c in self.clients])
                )
                if self.clients
                else 1.0,
                "misses": str(sum(c.deadline_misses for c in self.clients)),
                "preempt": f"{self.context_switches}cs",
                "fairness": f"{self.fairness:.3f}",
                "fps": f"{self.throughput_fps:.1f}",
            }
        )
        return rows

    def to_dict(self) -> Dict:
        """JSON-style form (used by the determinism test)."""
        return {
            "policy": self.policy,
            "quantum": self.quantum,
            "makespan_cycles": int(self.makespan_cycles),
            "busy_cycles": int(self.busy_cycles),
            "back_to_back_cycles": int(self.back_to_back_cycles),
            "context_switches": int(self.context_switches),
            "context_switch_cycles": int(self.context_switch_cycles),
            "fairness": self.fairness,
            "slo_attainment": self.slo_attainment,
            "schedule": [
                (s.client, s.frame, s.mode, s.cross_replay, s.start_cycle,
                 s.cycles, s.preemptions, s.delivered)
                for s in self.schedule
            ],
            "clients": [
                {
                    "client_id": c.client_id,
                    "latencies": list(c.latencies_cycles),
                    "service_cycles": int(c.service_cycles),
                    "alone_cycles": int(c.alone_cycles),
                    "energy_joules": c.energy_joules,
                    "modes": c.mode_mix,
                    "deadline_misses": c.deadline_misses,
                    "preemptions": c.preemptions,
                    "aborted_frames": c.aborted_frames,
                    "twin_deferrals": c.twin_deferrals,
                    "slo_class": c.slo_class,
                    "shed_frames": c.shed_frames,
                    "degraded": [dict(d) for d in c.degraded],
                }
                for c in self.clients
            ],
        }


def bench_summary(reports: Dict[str, "ServeReport"]) -> Dict:
    """Machine-readable serving summary (the ``repro serve --json`` shape,
    written as ``BENCH_serving.json`` by the CI smoke job).

    One entry per policy with the headline numbers a dashboard or CI
    check needs — latency percentiles in milliseconds, throughput,
    fairness, context switches and the back-to-back reference — plus a
    per-client breakdown.
    """
    out: Dict = {"schema": "serving_bench/v1", "policies": {}}
    for name, report in reports.items():
        ms = 1e3 / report.clock_hz
        out["policies"][name] = {
            "quantum": report.quantum,
            "p50_ms": report.latency_percentile(50) * ms,
            "p95_ms": report.latency_percentile(95) * ms,
            "throughput_fps": report.throughput_fps,
            "fairness": report.fairness,
            "context_switches": report.context_switches,
            "context_switch_cycles": report.context_switch_cycles,
            "busy_cycles": int(report.busy_cycles),
            "makespan_cycles": int(report.makespan_cycles),
            "back_to_back_cycles": int(report.back_to_back_cycles),
            "sharing_saving": report.sharing_saving,
            "total_frames": report.total_frames,
            "slo_attainment": report.slo_attainment,
            "clients": {
                c.client_id: {
                    "frames": c.frames,
                    "p50_ms": c.latency_percentile(50) * ms,
                    "p95_ms": c.latency_percentile(95) * ms,
                    "service_cycles": int(c.service_cycles),
                    "slowdown": c.slowdown,
                    "deadline_misses": c.deadline_misses,
                    "preemptions": c.preemptions,
                    "aborted_frames": c.aborted_frames,
                    "slo_class": c.slo_class,
                    "shed_frames": c.shed_frames,
                    "degraded": [dict(d) for d in c.degraded],
                }
                for c in report.clients
            },
        }
    return out


def bench_table_rows(payloads: Dict[str, Dict]) -> List[Dict[str, str]]:
    """Flatten run-all bench payloads into one headline summary table.

    ``payloads`` maps snapshot name (``serving`` / ``engine`` / ``slo``
    / ``cluster`` / ``video``) to its parsed ``BENCH_*.json`` document; unknown
    names are skipped, so partial runs still summarise.  One row per headline
    metric — the shape ``repro bench run-all`` writes to
    ``results/summary.json`` and prints as its closing table.
    """
    rows: List[Dict[str, str]] = []
    serving = payloads.get("serving")
    if serving:
        for name in sorted(serving.get("policies", {})):
            rep = serving["policies"][name]
            rows.append(
                {
                    "bench": "serving",
                    "case": name,
                    "metric": "p95_ms / fairness",
                    "value": "{:.3f} / {:.3f}".format(
                        rep["p95_ms"], rep["fairness"]
                    ),
                    "cycles": str(rep["busy_cycles"]),
                }
            )
    engine = payloads.get("engine")
    if engine:
        rows.append(
            {
                "bench": "engine",
                "case": "serve scalar→batched",
                "metric": "speedup",
                "value": f"{engine['serve']['speedup']}x",
                "cycles": "identical" if engine["serve"]["identical_rows"]
                else "DIVERGED",
            }
        )
        rows.append(
            {
                "bench": "engine",
                "case": "frame micro",
                "metric": "speedup",
                "value": f"{engine['frame_micro']['speedup']}x",
                "cycles": "identical"
                if engine["frame_micro"]["identical_reports"]
                else "DIVERGED",
            }
        )
    slo = payloads.get("slo")
    if slo:
        for run in ("baseline", "slo"):
            rep = slo.get(run)
            if not rep:
                continue
            attain = rep.get("slo_attainment", {})
            rows.append(
                {
                    "bench": "slo",
                    "case": run,
                    "metric": "interactive attainment",
                    "value": "{:.2f} (shed {}, degraded {})".format(
                        attain.get("interactive", float("nan")),
                        rep.get("shed_frames", 0),
                        rep.get("degraded_frames", 0),
                    ),
                    "cycles": str(rep.get("busy_cycles")),
                }
            )
    cluster = payloads.get("cluster")
    if cluster:
        for name in sorted(cluster.get("routers", {})):
            rep = cluster["routers"][name]
            rows.append(
                {
                    "bench": "cluster",
                    "case": f"router {name}",
                    "metric": "fleet busy cycles",
                    "value": str(rep["total_busy_cycles"]),
                    "cycles": "{} frames".format(rep["total_frames"]),
                }
            )
        rows.append(
            {
                "bench": "cluster",
                "case": "affinity/random",
                "metric": "cycle ratio",
                "value": str(cluster.get("affinity_over_random_cycles")),
                "cycles": "identity ok"
                if cluster.get("single_shard_identical")
                else "IDENTITY BROKEN",
            }
        )
    video = payloads.get("video")
    if video:
        orbit = video.get("orbit", {})
        rows.append(
            {
                "bench": "video",
                "case": "reprojected orbit",
                "metric": "speedup vs fresh",
                "value": f"{orbit.get('speedup_vs_fresh')}x",
                "cycles": str(orbit.get("reproject_cycles")),
            }
        )
        for run in ("fixed", "adaptive"):
            rep = video.get("keyframes", {}).get(run)
            if not rep:
                continue
            rows.append(
                {
                    "bench": "video",
                    "case": f"keyframes {run}",
                    "metric": "probes / min PSNR",
                    "value": "{} / {:.2f} dB".format(
                        rep["probes"], rep["min_psnr"]
                    ),
                    "cycles": "-",
                }
            )
    return rows
