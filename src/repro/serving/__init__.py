"""Multi-tenant sequence serving: many clients, one simulated accelerator.

The serving layer turns the single-sequence video stack into a shared
service: N concurrent clients each request a scene, a camera trajectory
and a quality target (:class:`~repro.serving.request.ClientRequest`); the
:class:`~repro.serving.server.SequenceServer` interleaves their per-frame
work on one :class:`~repro.arch.accelerator.ASDRAccelerator` under a
scheduling policy (FIFO, round-robin fair share, or deadline/quality
aware) and reports per-client latency percentiles, aggregate throughput
and fairness against running the clients back-to-back.  The dataflow is::

    ClientRequest (scene, CameraPath, quality target)
        └─ Workbench.client_sequence  (memoised SequenceRender per client;
           twins share one trace)
            └─ SequenceServer.submit / .serve(policy)
                ├─ exec.scheduler.FrameWorkItem  (frame-granularity unit)
                ├─ exec.scheduler.TemporalCachePartitions (per-tenant
                │    temporal vertex-cache partitions)
                └─ ASDRAccelerator.simulate_sequence_frame (per-client
                     cycle/energy attribution)
                    └─ ServeReport (latency p50/p95, throughput, Jain
                         fairness, back-to-back comparison)

``repro serve`` drives it from the command line; the ``serve`` experiment
prints the policy comparison table.
"""

from repro.serving.policies import (
    POLICY_NAMES,
    DeadlineAwarePolicy,
    FIFOPolicy,
    PendingFrame,
    RoundRobinPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.serving.report import (
    ClientServeReport,
    ScheduledFrame,
    ServeReport,
    jain_fairness,
)
from repro.serving.request import ClientRequest
from repro.serving.server import SequenceServer

__all__ = [
    "POLICY_NAMES",
    "ClientRequest",
    "ClientServeReport",
    "DeadlineAwarePolicy",
    "FIFOPolicy",
    "PendingFrame",
    "RoundRobinPolicy",
    "ScheduledFrame",
    "SchedulingPolicy",
    "SequenceServer",
    "ServeReport",
    "jain_fairness",
    "make_policy",
]
