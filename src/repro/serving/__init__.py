"""Multi-tenant sequence serving: many clients, one simulated accelerator.

The serving layer turns the single-sequence video stack into a shared
service: N concurrent clients each request a scene, a camera trajectory
and a quality target (:class:`~repro.serving.request.ClientRequest`); the
:class:`~repro.serving.server.SequenceServer` interleaves their work on
one :class:`~repro.arch.accelerator.ASDRAccelerator` under a scheduling
policy — frame-atomic (FIFO, round-robin fair share, deadline-aware
earliest-slack-first) or wavefront-granularity preemptive (quantum-based
round-robin and preemptive ESF, riding the resumable
:class:`~repro.exec.execution.FrameExecution` engine) — and reports
per-client latency percentiles, aggregate throughput, fairness and
context switches against running the clients back-to-back.  Clients may
arrive and depart mid-run; the temporal-cache budget re-partitions
elastically as the tenant set changes.  The dataflow is::

    ClientRequest (scene, CameraPath, quality target, arrival/departure)
        └─ Workbench.client_sequence  (memoised SequenceRender per client;
           twins share one trace)
            └─ SequenceServer.submit / .serve(policy)
                ├─ exec.scheduler.FrameWorkItem  (scheduling unit, carries
                │    the suspend/resume state of an in-flight frame)
                ├─ exec.scheduler.TemporalCachePartitions (elastic
                │    per-tenant temporal vertex-cache partitions)
                └─ ASDRAccelerator.frame_execution (resumable cursor;
                     per-client cycle/energy attribution)
                    └─ ServeReport (latency p50/p95, throughput, Jain
                         fairness, preemptions, back-to-back comparison)

``repro serve`` drives it from the command line (``--preemptive
--quantum N``, ``--json`` for the machine-readable summary); the
``serve`` experiment prints the policy comparison table.

Requests carry an **SLO class** (``interactive`` / ``standard`` /
``batch``; see :mod:`repro.serving.slo`): deadline multipliers and
priority weights feed the deadline-aware policies' slack computation,
and an optional :class:`~repro.serving.slo.SLOConfig` arms overload
control — admission rejection at submit time, batch-class load shedding,
degraded-quality delivery with a PSNR guard, and (with ``quantum="auto"``)
p95-latency-targeted quantum auto-tuning.  Reports expose per-class SLO
attainment next to Jain fairness.

Above the single box, :class:`~repro.serving.cluster.ClusterServer`
shards tenants across a *fleet* of accelerators (``repro serve --shards
N --router affinity``): content-affinity routing keeps twin and
pose-overlapping tenants co-located so the sharing levers still fire,
migrations hand temporal-cache state between shards, and spare
accelerators join elastically under load.  A
:class:`~repro.serving.cluster.ClusterReport` nests the per-shard
reports under fleet-level utilisation/fairness/latency aggregates.
"""

from repro.serving.cluster import (
    ROUTER_NAMES,
    ClusterReport,
    ClusterServer,
    Migration,
    ShardUtilisation,
    cluster_bench_summary,
)
from repro.serving.profiler import HotFunction, ServeProfile, profile_serve
from repro.serving.policies import (
    ALL_POLICY_NAMES,
    DEADLINE_POLICY_NAMES,
    DEFAULT_QUANTUM,
    POLICY_NAMES,
    PREEMPTIVE_POLICY_NAMES,
    DeadlineAwarePolicy,
    FIFOPolicy,
    PendingFrame,
    PreemptiveDeadlinePolicy,
    PreemptiveRoundRobinPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.serving.report import (
    ClientServeReport,
    ScheduledFrame,
    ServeReport,
    bench_summary,
    jain_fairness,
)
from repro.serving.request import ClientRequest
from repro.serving.server import SequenceServer, WavefrontCostModel
from repro.serving.slo import (
    AUTO_QUANTUM,
    DEFAULT_SLO_CLASS,
    KEYFRAME_GRACE_INTERVALS,
    SLO_CLASSES,
    SLO_DEADLINE_MULTIPLIER,
    SLO_PRIORITY_WEIGHT,
    AdmissionError,
    QuantumAutoTuner,
    SLOConfig,
    weighted_slack,
)

__all__ = [
    "ALL_POLICY_NAMES",
    "AUTO_QUANTUM",
    "DEADLINE_POLICY_NAMES",
    "DEFAULT_QUANTUM",
    "DEFAULT_SLO_CLASS",
    "KEYFRAME_GRACE_INTERVALS",
    "POLICY_NAMES",
    "PREEMPTIVE_POLICY_NAMES",
    "ROUTER_NAMES",
    "SLO_CLASSES",
    "SLO_DEADLINE_MULTIPLIER",
    "SLO_PRIORITY_WEIGHT",
    "AdmissionError",
    "ClientRequest",
    "ClientServeReport",
    "ClusterReport",
    "ClusterServer",
    "DeadlineAwarePolicy",
    "FIFOPolicy",
    "HotFunction",
    "Migration",
    "PendingFrame",
    "PreemptiveDeadlinePolicy",
    "PreemptiveRoundRobinPolicy",
    "QuantumAutoTuner",
    "RoundRobinPolicy",
    "SLOConfig",
    "ScheduledFrame",
    "SchedulingPolicy",
    "SequenceServer",
    "ServeProfile",
    "ServeReport",
    "ShardUtilisation",
    "WavefrontCostModel",
    "bench_summary",
    "cluster_bench_summary",
    "jain_fairness",
    "make_policy",
    "profile_serve",
    "weighted_slack",
]
