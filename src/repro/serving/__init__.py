"""Multi-tenant sequence serving: many clients, one simulated accelerator.

The serving layer turns the single-sequence video stack into a shared
service: N concurrent clients each request a scene, a camera trajectory
and a quality target (:class:`~repro.serving.request.ClientRequest`); the
:class:`~repro.serving.server.SequenceServer` interleaves their work on
one :class:`~repro.arch.accelerator.ASDRAccelerator` under a scheduling
policy — frame-atomic (FIFO, round-robin fair share, deadline-aware
earliest-slack-first) or wavefront-granularity preemptive (quantum-based
round-robin and preemptive ESF, riding the resumable
:class:`~repro.exec.execution.FrameExecution` engine) — and reports
per-client latency percentiles, aggregate throughput, fairness and
context switches against running the clients back-to-back.  Clients may
arrive and depart mid-run; the temporal-cache budget re-partitions
elastically as the tenant set changes.  The dataflow is::

    ClientRequest (scene, CameraPath, quality target, arrival/departure)
        └─ Workbench.client_sequence  (memoised SequenceRender per client;
           twins share one trace)
            └─ SequenceServer.submit / .serve(policy)
                ├─ exec.scheduler.FrameWorkItem  (scheduling unit, carries
                │    the suspend/resume state of an in-flight frame)
                ├─ exec.scheduler.TemporalCachePartitions (elastic
                │    per-tenant temporal vertex-cache partitions)
                └─ ASDRAccelerator.frame_execution (resumable cursor;
                     per-client cycle/energy attribution)
                    └─ ServeReport (latency p50/p95, throughput, Jain
                         fairness, preemptions, back-to-back comparison)

``repro serve`` drives it from the command line (``--preemptive
--quantum N``, ``--json`` for the machine-readable summary); the
``serve`` experiment prints the policy comparison table.
"""

from repro.serving.profiler import HotFunction, ServeProfile, profile_serve
from repro.serving.policies import (
    ALL_POLICY_NAMES,
    DEFAULT_QUANTUM,
    POLICY_NAMES,
    PREEMPTIVE_POLICY_NAMES,
    DeadlineAwarePolicy,
    FIFOPolicy,
    PendingFrame,
    PreemptiveDeadlinePolicy,
    PreemptiveRoundRobinPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.serving.report import (
    ClientServeReport,
    ScheduledFrame,
    ServeReport,
    bench_summary,
    jain_fairness,
)
from repro.serving.request import ClientRequest
from repro.serving.server import SequenceServer, WavefrontCostModel

__all__ = [
    "ALL_POLICY_NAMES",
    "DEFAULT_QUANTUM",
    "POLICY_NAMES",
    "PREEMPTIVE_POLICY_NAMES",
    "ClientRequest",
    "ClientServeReport",
    "DeadlineAwarePolicy",
    "FIFOPolicy",
    "HotFunction",
    "PendingFrame",
    "PreemptiveDeadlinePolicy",
    "PreemptiveRoundRobinPolicy",
    "RoundRobinPolicy",
    "ScheduledFrame",
    "SchedulingPolicy",
    "SequenceServer",
    "ServeProfile",
    "ServeReport",
    "WavefrontCostModel",
    "bench_summary",
    "jain_fairness",
    "make_policy",
    "profile_serve",
]
