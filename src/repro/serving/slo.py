"""SLO classes and overload control for the multi-tenant serving layer.

Every :class:`~repro.serving.request.ClientRequest` carries an
``slo_class`` — ``interactive``, ``standard`` or ``batch`` — that shapes
how the server treats the client when demand exceeds capacity:

* **Deadline multipliers** (:data:`SLO_DEADLINE_MULTIPLIER`) scale the
  proportional-share cadence the server derives when a request has no
  explicit ``frame_interval_cycles``: interactive clients get tighter
  deadlines than their fair share, batch clients far looser ones.
* **Priority weights** (:data:`SLO_PRIORITY_WEIGHT`) feed the slack
  computation of the deadline-aware policies: a frame's slack is divided
  by its class weight (multiplied when negative), so an interactive frame
  with the same raw slack as a batch frame always looks more urgent.
  The ``standard`` weight is 1.0, so class-less workloads price exactly
  as before.
* **Overload responses** (:class:`SLOConfig`): admission control caps the
  projected backlog at submit time (:class:`AdmissionError`), load
  shedding drops ``batch``-class frames first once a deadlined frame's
  slack goes negative, and degraded-quality mode serves non-keyframe
  frames at a reduced sampling budget — guarded by a per-frame PSNR
  floor so quality never silently falls below the configured bar.
  When the experiment layer supplies temporal-reprojection skip masks,
  a degraded frame *prefers* warping its converged rays from the
  previous delivered frame (scan-out cost only) over cutting budgets.
* **Quantum auto-tuning** (:class:`QuantumAutoTuner`, policy quantum
  ``"auto"``): bounds head-of-line blocking by sizing the preemption
  quantum from the measured cycles-per-step distribution, targeting a
  fixed p95 per-quantum latency instead of a fixed step count.

Everything here is deterministic arithmetic on values the serving loop
computes anyway, so reports stay bit-identical across engines and with
telemetry on or off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: Recognised SLO classes, strictest first.
SLO_CLASSES = ("interactive", "standard", "batch")

#: Default class when a request does not say (pre-SLO behaviour).
DEFAULT_SLO_CLASS = "standard"

#: Per-class multiplier applied to the *derived* proportional-share
#: deadline cadence (explicit ``frame_interval_cycles`` always wins).
#: ``standard`` is 1.0 so class-less requests keep their old deadlines.
SLO_DEADLINE_MULTIPLIER: Dict[str, float] = {
    "interactive": 0.5,
    "standard": 1.0,
    "batch": 4.0,
}

#: Per-class priority weight scaling slack in the deadline policies:
#: positive slack divides by the weight, negative slack multiplies, so a
#: higher weight is more urgent on both sides of the deadline.
SLO_PRIORITY_WEIGHT: Dict[str, float] = {
    "interactive": 4.0,
    "standard": 1.0,
    "batch": 0.25,
}

#: Extra deadline interval(s) granted to keyframes (planned frames).  A
#: cadence SLO paces the steady plan-reuse stream; a keyframe pays a
#: Phase I plan pass on top of rendering, a one-off cost no steady-pace
#: cadence can absorb, so its deadline slips by this many intervals.
KEYFRAME_GRACE_INTERVALS = 1

#: Shedding victim order under overload, first shed first.
SLO_SHED_ORDER = ("batch",)

#: Sentinel quantum value selecting :class:`QuantumAutoTuner` sizing.
AUTO_QUANTUM = "auto"


class AdmissionError(ConfigurationError):
    """A submission was rejected by admission control: the projected
    backlog (existing clients' estimated fresh cycles plus the new
    request's) exceeds the configured :attr:`SLOConfig.admit_cycles`."""


def weighted_slack(slack: float, slo_class: str) -> float:
    """Class-weighted urgency transform of a raw slack value.

    Positive slack shrinks by the class weight, negative slack grows by
    it — both monotone, so ordering *within* one class is untouched and
    the ``standard`` weight of 1.0 is the identity.

    Example:
        >>> weighted_slack(100.0, "interactive")
        25.0
        >>> weighted_slack(-100.0, "interactive")
        -400.0
        >>> weighted_slack(100.0, "standard")
        100.0
    """
    weight = SLO_PRIORITY_WEIGHT.get(slo_class, 1.0)
    return slack / weight if slack >= 0 else slack * weight


@dataclass(frozen=True)
class SLOConfig:
    """Overload-control switches for one :class:`~repro.serving.server.
    SequenceServer` (forwarded to every shard by the cluster layer).

    Attributes:
        admit_cycles: Admission-control cap on the projected backlog, in
            estimated cycles (:class:`~repro.serving.server.
            WavefrontCostModel` estimates over each admitted window).  A
            submission that would push the projection past the cap raises
            :class:`AdmissionError`.  ``None`` = admit everything.
        shed: Shed ``batch``-class frames (cheapest-first classes in
            :data:`SLO_SHED_ORDER`) while some deadlined frame's slack is
            negative.  Shed frames are never executed; they count against
            the owning client's SLO attainment.
        degrade: Serve non-keyframe (plan-reuse) frames at a reduced
            sampling budget while overloaded, trading PSNR for cycles.
        degrade_fraction: Per-ray sample-budget fraction kept by a
            degraded frame (each marched ray keeps at least one sample).
        degrade_min_psnr: PSNR guard in dB: a frame whose measured
            degraded PSNR (see ``degrade_psnr``) would fall below this
            floor is served at full quality instead.  ``None`` = no
            floor.
        degrade_psnr: Optional measured degraded-vs-full PSNR per
            ``(client_id, frame)`` — supplied by the experiment layer,
            which holds the rendered images; recorded on every degraded
            frame's report entry and ``degrade`` event.
        reproject_masks: Optional per-``(client_id, frame)`` boolean skip
            masks (``(num_pixels,)``, True = converged ray warped from
            the previous delivered frame).  When present, the degrade
            path *prefers* temporal reprojection over budget cuts: an
            overloaded plan-reuse frame with a mask executes
            :meth:`~repro.exec.frame_trace.FrameTrace.with_reprojection`
            instead of a capped-budget trace.  Masks come from the
            experiment layer's camera geometry (see
            :mod:`repro.core.reprojection`) — no model evaluation.
        reproject_psnr: Optional measured warp-guard PSNR per
            ``(client_id, frame)``; frames whose guard PSNR would fall
            below ``degrade_min_psnr`` fall back to the budget-cut path,
            mirroring the renderer's own fallback.
    """

    admit_cycles: Optional[int] = None
    shed: bool = False
    degrade: bool = False
    degrade_fraction: float = 0.5
    degrade_min_psnr: Optional[float] = None
    degrade_psnr: Optional[Mapping[Tuple[str, int], float]] = None
    reproject_masks: Optional[Mapping[Tuple[str, int], object]] = None
    reproject_psnr: Optional[Mapping[Tuple[str, int], float]] = None

    def __post_init__(self) -> None:
        if self.admit_cycles is not None and self.admit_cycles <= 0:
            raise ConfigurationError("admit_cycles must be positive")
        if not 0.0 < self.degrade_fraction < 1.0:
            raise ConfigurationError(
                "degrade_fraction must be in (0, 1) — 1.0 is full quality"
            )
        if self.reproject_masks is not None and not self.degrade:
            raise ConfigurationError(
                "reproject_masks require degrade=True — reprojection is "
                "an overload response, not a steady-state mode"
            )

    @property
    def active(self) -> bool:
        """Whether any in-loop overload response is enabled."""
        return self.shed or self.degrade


class QuantumAutoTuner:
    """Preemption-quantum sizing from the measured cycles-per-step
    distribution (policy quantum ``"auto"``).

    A fixed step-count quantum has a fixed *step* budget but an unbounded
    *cycle* budget: one expensive Phase I wavefront can hold the engines
    for far longer than the scheduler intended, which is exactly the
    head-of-line blocking preemption exists to bound.  The tuner instead
    targets a fixed per-quantum latency: the first quantum runs
    ``initial_steps`` steps and freezes ``target_cycles`` at
    ``initial_steps * p95_step_cycles``; every later quantum is sized to
    ``target_cycles / p95_step_cycles`` over a sliding window of measured
    per-step charges, clamped to ``[1, max_steps]``.  When steps get
    expensive the quantum shrinks toward single-step preemption; when
    they are cheap it grows, keeping decision overhead rare.

    Purely deterministic: fed only the ``(cycles, steps)`` pairs the
    serving loop charges anyway, identical across scalar and batched
    engines (which charge bit-identical cycles per step by contract).

    Example:
        >>> tuner = QuantumAutoTuner(initial_steps=4)
        >>> tuner.observe(400, 4)   # 100 cycles/step -> target 400
        False
        >>> tuner.quantum
        4
        >>> tuner.observe(1600, 4)  # steps now 400 cycles -> shrink
        True
        >>> tuner.quantum
        1
    """

    def __init__(
        self,
        initial_steps: int = 4,
        max_steps: int = 16,
        window: int = 64,
    ) -> None:
        if initial_steps < 1:
            raise ConfigurationError("initial_steps must be >= 1")
        if max_steps < initial_steps:
            raise ConfigurationError("max_steps must be >= initial_steps")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.initial_steps = initial_steps
        self.max_steps = max_steps
        self.window = window
        self.quantum = initial_steps
        self.target_cycles: Optional[float] = None
        self._samples: List[float] = []

    @property
    def p95_step_cycles(self) -> float:
        """p95 of the windowed per-step cycle charges (0.0 uncalibrated)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        return ordered[max(0, math.ceil(0.95 * len(ordered)) - 1)]

    def observe(self, cycles: int, steps: int) -> bool:
        """Feed one executed quantum; returns True when the quantum
        changed (the server emits a ``quantum_tune`` event on True)."""
        if steps <= 0:
            return False
        self._samples.append(cycles / steps)
        if len(self._samples) > self.window:
            del self._samples[0]
        p95 = self.p95_step_cycles
        if self.target_cycles is None:
            self.target_cycles = p95 * self.initial_steps
        if p95 <= 0:
            new_quantum = self.max_steps
        else:
            new_quantum = max(
                1, min(self.max_steps, int(self.target_cycles // p95))
            )
        changed = new_quantum != self.quantum
        self.quantum = new_quantum
        return changed
