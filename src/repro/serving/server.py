"""The multi-tenant sequence server: N clients, one simulated accelerator.

:class:`SequenceServer` admits concurrent :class:`~repro.serving.request.
ClientRequest`\\ s whose sequences are already rendered (the Workbench
memoises them — see :meth:`repro.experiments.workbench.Workbench.
client_sequence`), then interleaves their work on one
:class:`~repro.arch.accelerator.ASDRAccelerator` under a scheduling
policy.  The scheduling unit is the :class:`~repro.exec.scheduler.
FrameWorkItem` — one frame of one client's
:class:`~repro.exec.sequence.SequenceTrace` — and a client's frames
always execute in path order (sampling-plan reuse and the temporal vertex
cache both depend on it).

:meth:`SequenceServer.serve` is an **event loop over wavefront steps**:
each selected frame executes through a resumable
:class:`~repro.exec.execution.FrameExecution` cursor.  Non-preemptive
policies run the cursor to completion in one go (frame-atomic, the
pre-refactor behaviour, bit-identical); preemptive policies run at most
``quantum`` wavefront steps before re-taking the scheduling decision, so
an expensive Phase I probe no longer blocks cheap replay frames for
millions of cycles — they slot in at the next quantum boundary.  The
loop also handles the full tenancy lifecycle on the virtual clock:
**mid-run admission** (a request's ``arrival_cycle`` may land inside
another client's frame; the arrival is seen at the next quantum
boundary), **departure/abort** (``departure_cycle`` cancels undelivered
frames, abandoning an in-flight cursor) and **elastic re-partitioning**
of the temporal-cache budget as the tenant set changes.

Sharing levers, strongest first:

* **Cross-client content replay** — a frame whose content another client
  already executed this run (same scene/backend/trajectory/probe cadence,
  or a bit-identical pose both clients probe as a keyframe) is delivered
  at framebuffer scan-out cost, like an in-sequence pose replay.  This is
  why serving N overlapping clients costs *less* than running them
  back-to-back.
* **Temporal-cache partitioning** — each tenant owns a private partition
  of the temporal vertex cache
  (:class:`~repro.exec.scheduler.TemporalCachePartitions`), so one
  client's working set never evicts another's, no matter how the policy
  interleaves tenants — at frame or at wavefront granularity.  The
  interleaved total always equals the sum of per-client service cycles
  (context-switch overhead, when configured, is accounted separately);
  with the default *unbounded* budget each partition equals the cache a
  client would have alone, so that total also equals back-to-back exactly
  when content sharing is off.  A *bounded* budget divides capacity among
  the tenants *currently present* — real contention — and a client may
  then pay more than it would alone.
* **Trace sharing** — clients with identical requests share one memoised
  :class:`~repro.exec.sequence.SequenceTrace` object (the Workbench's
  sequence memo), so serving twins costs no extra rendering or trace
  memory.

Everything is priced on a virtual cycle clock, so serving reports are
deterministic for a fixed arrival order.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.arch.accelerator import ASDRAccelerator
from repro.cim.cache import TemporalVertexCache
from repro.errors import ConfigurationError
from repro.exec.batch import FramePlan, build_frame_plans
from repro.exec.execution import FrameExecution, batched_enabled, sequence_executions
from repro.exec.scheduler import (
    WORK_PROBE,
    WORK_REPLAY,
    WORK_REUSE,
    FrameWorkItem,
    TemporalCachePartitions,
    sequence_work_items,
)
from repro.exec.sequence import SequenceRender, SequenceTrace, pose_key
from repro.obs.events import (
    EV_ADMISSION,
    EV_ADMISSION_REJECT,
    EV_DEGRADE,
    EV_DEPARTURE,
    EV_FRAME_ABORT,
    EV_FRAME_COMPLETE,
    EV_KEYFRAME_PROBE,
    EV_PLAN_CACHE,
    EV_PREEMPTION,
    EV_QUANTUM,
    EV_QUANTUM_TUNE,
    EV_REPROJECT,
    EV_SCANOUT,
    EV_SCHED,
    EV_SERVE_END,
    EV_SERVE_START,
    EV_SHED,
    EV_TEMPORAL_CACHE,
    EV_TWIN_DEFER,
)
from repro.obs.recorder import NULL_RECORDER, Recorder, ScopedRecorder
from repro.serving.policies import PendingFrame, SchedulingPolicy, make_policy
from repro.serving.report import ClientServeReport, ScheduledFrame, ServeReport
from repro.serving.request import ClientRequest
from repro.serving.slo import (
    AUTO_QUANTUM,
    KEYFRAME_GRACE_INTERVALS,
    SLO_DEADLINE_MULTIPLIER,
    SLO_SHED_ORDER,
    AdmissionError,
    QuantumAutoTuner,
    SLOConfig,
)

#: Cycles-per-density-point prior used before the first measured wavefront
#: charges calibrate the cost model (the value only shapes
#: pre-calibration ordering and derived deadlines; every policy is
#: deterministic for any choice).
INITIAL_CYCLES_PER_POINT = 2.0


class _LRUCache:
    """Small bounded mapping with least-recently-used eviction.

    The server's cross-run caches (pricing plans, scan-out prices) must
    not grow without limit on a long-lived server that admits and
    releases clients forever, so both are bounded; ``get`` refreshes
    recency, ``__contains__`` deliberately does not (membership probes
    are not uses).
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ConfigurationError("LRU cache size must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict" = OrderedDict()

    def get(self, key, default=None):
        try:
            value = self._data[key]
        except KeyError:
            return default
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


class WavefrontCostModel:
    """Cycles-per-point estimator learned from measured wavefront charges.

    The scheduler needs cycle estimates before frames run (slack, derived
    deadlines).  Instead of the old 2-tap EMA over whole-frame averages,
    this model accumulates the *measured* charges the execution engine
    reports — every quantum feeds back ``(cycles_charged,
    points_executed)`` straight from the frame's wavefront accounting, so
    the estimate converges after the first few wavefronts of the run and
    keeps sharpening from partially executed frames that the EMA (which
    only saw completed frames) had to ignore.

    The estimate is the cumulative ratio ``sum(cycles) / sum(points)``;
    charges with zero points (the Phase I adaptive-sampling tail) still
    contribute cycles, so fixed per-frame overheads are amortised into
    the rate rather than silently dropped.

    Example:
        >>> model = WavefrontCostModel(prior=2.0)
        >>> model.cycles_per_point
        2.0
        >>> model.observe(300, 100)
        >>> model.observe(100, 100)
        >>> model.cycles_per_point
        2.0
        >>> model.estimate(50)
        100.0
    """

    def __init__(self, prior: float = INITIAL_CYCLES_PER_POINT) -> None:
        if prior <= 0:
            raise ConfigurationError("prior cycles-per-point must be positive")
        self._prior = prior
        self._cycles = 0
        self._points = 0

    def observe(self, cycles: int, points: int) -> None:
        """Feed one measured charge (a quantum's or a frame's)."""
        if cycles < 0 or points < 0:
            raise ConfigurationError("observed cycles/points must be >= 0")
        self._cycles += cycles
        self._points += points

    @property
    def calibrated(self) -> bool:
        return self._points > 0

    @property
    def cycles_per_point(self) -> float:
        if self._points == 0:
            return self._prior
        return self._cycles / self._points

    def estimate(self, points: int) -> float:
        """Estimated cycles for ``points`` density-MLP points of work."""
        return points * self.cycles_per_point


@dataclass
class _Client:
    """Admitted request plus its rendered sequence and schedule state.

    ``start_frame``/``end_frame`` bound the delivered window — a migrated
    tenant serves only the tail of its sequence on the destination shard
    (and only the head on the source).  ``cache_seed`` optionally carries
    an exported temporal-cache state adopted at admission (the hand-off).
    """

    request: ClientRequest
    trace: SequenceTrace
    items: List[FrameWorkItem]
    pose_keys: List[bytes]
    order: int
    deadlines: List[Optional[int]] = field(default_factory=list)
    start_frame: int = 0
    end_frame: Optional[int] = None
    cache_seed: Optional[Dict] = None

    @property
    def id(self) -> str:
        return self.request.client_id

    @property
    def end(self) -> int:
        """Exclusive end of the delivered frame window."""
        return (
            len(self.items) if self.end_frame is None else self.end_frame
        )

    @property
    def window(self) -> Tuple[int, int]:
        return (self.start_frame, self.end)


class SequenceServer:
    """Interleaves N clients' sequence frames on one simulated accelerator.

    Args:
        accelerator: The shared design point every client runs on.
        group_size: Color-decoupling group size applied to every frame
            (as in :meth:`~repro.arch.accelerator.ASDRAccelerator.
            simulate_sequence`).
        temporal_capacity: Combined temporal vertex-cache budget,
            partitioned evenly among the tenants present at any moment
            (``None`` = unbounded partitions).
        shared_content: Enable cross-client content replay.  Disable to
            price every client as if its content were unique (the
            back-to-back-equivalent configuration).
        context_switch_cycles: Overhead cycles charged whenever the
            engines' in-flight frame state is set aside for another
            tenant (preemptive policies only; 0 = free switches).  The
            overhead is accounted *next to* per-client service cycles,
            never inside them, so conservation stays exact.
        twin_defer_limit: Under preemptive policies, a frame whose
            content is currently executing fresh on another tenant (a
            mid-flight twin) is *deferred* until the leader's scan-out
            commit — it then delivers as a cross-client replay instead
            of double-charging the shared content.  The limit is the
            starvation guard: after this many deferred scheduling
            decisions the follower executes fresh regardless.  ``0``
            disables deferral (the pre-fix behaviour).
        recorder: Optional :class:`~repro.obs.recorder.Recorder` that
            receives the serving event stream (quantum/scan-out charges,
            admission, preemption, cache outcomes — see
            :mod:`repro.obs.events`).  Observer-only by contract: it can
            never change the cycles priced.  ``None`` = the no-op
            :data:`~repro.obs.recorder.NULL_RECORDER`.
        slo: Optional :class:`~repro.serving.slo.SLOConfig` enabling the
            overload responses — admission control at :meth:`submit`
            (:class:`~repro.serving.slo.AdmissionError` when the
            projected backlog exceeds the cap), ``batch``-class load
            shedding, and degraded-quality serving of non-keyframe
            frames while some deadlined frame's slack is negative.
            ``None`` = best-effort (pre-SLO behaviour, bit-identical).

    Example lifecycle::

        server = SequenceServer(accelerator)
        for request in requests:
            server.submit(request, wb.client_sequence(request))
        report = server.serve("round_robin_preemptive")
    """

    #: Bounds of the cross-run caches — generous for any realistic tenant
    #: mix, small enough that a never-restarted server stays flat.
    PLAN_CACHE_SIZE = 512
    SCANOUT_MEMO_SIZE = 1024
    DEGRADED_MEMO_SIZE = 256

    def __init__(
        self,
        accelerator: ASDRAccelerator,
        group_size: int = 1,
        temporal_capacity: Optional[int] = None,
        shared_content: bool = True,
        context_switch_cycles: int = 0,
        twin_defer_limit: int = 256,
        recorder: Optional[Recorder] = None,
        slo: Optional[SLOConfig] = None,
    ) -> None:
        if context_switch_cycles < 0:
            raise ConfigurationError("context_switch_cycles must be >= 0")
        if twin_defer_limit < 0:
            raise ConfigurationError("twin_defer_limit must be >= 0")
        self.accelerator = accelerator
        #: Telemetry sink for the serving event loop (see
        #: :mod:`repro.obs`).  Observer-only: every event carries values
        #: the loop computed anyway, and with the default
        #: :data:`~repro.obs.recorder.NULL_RECORDER` each emit site is a
        #: single hoisted ``None`` check — reports are bit-identical with
        #: telemetry on or off.
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self.group_size = group_size
        self.temporal_capacity = temporal_capacity
        self.shared_content = shared_content
        self.context_switch_cycles = context_switch_cycles
        self.twin_defer_limit = twin_defer_limit
        self.slo = slo
        self._clients: List[_Client] = []
        self._order_counter = 0
        self._alone_cycles: Dict[Tuple, int] = {}
        self._scanout_memo = _LRUCache(self.SCANOUT_MEMO_SIZE)
        # Budget-capped trace copies for degraded-quality serving, keyed
        # by frame content digest + fraction (twins of popular content
        # share one degraded copy; never keyed by object identity).
        self._degraded_memo = _LRUCache(self.DEGRADED_MEMO_SIZE)
        # Batched pricing plans, content-addressed by (sequence content
        # token, frame, temporal resident token).  A plan depends only on
        # the frame trace, the accelerator, the pricing knobs (fixed per
        # server) and the temporal resident content; the token is the
        # cache's commit/trim history, and for equal-content sequences
        # equal histories commit equal streams — so equal keys imply
        # equal plans.  Keying by *content* (never ``id()`` — CPython
        # reuses object ids after garbage collection, which on a
        # long-lived server serves a stale plan for the wrong trace) lets
        # twin clients of popular sequences share builds, and entries
        # survive across policies and serve() runs.
        # `FrameExecution.attach_plan` revalidates the token on every
        # reuse regardless.  Both caches are LRU-bounded.
        self._plan_cache = _LRUCache(self.PLAN_CACHE_SIZE)
        #: Per-tenant temporal partitions as they stood when each client
        #: left the most recent serve() run (retired or aborted) — the
        #: source side of a migration hand-off reads its exported state
        #: from here.  Reset at the start of every run.
        self.last_run_caches: Dict[str, TemporalVertexCache] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: ClientRequest,
        sequence: Union[SequenceRender, SequenceTrace],
        start_frame: int = 0,
        end_frame: Optional[int] = None,
        cache_seed: Optional[Dict] = None,
    ) -> None:
        """Admit one client with its rendered sequence.

        Args:
            request: The client's request (identity, trajectory, targets).
            sequence: The rendered sequence for ``request.path`` — a
                :class:`~repro.exec.sequence.SequenceRender` (as returned
                by the Workbench) or its
                :class:`~repro.exec.sequence.SequenceTrace` directly.
            start_frame: First frame this server delivers (a migrated
                tenant resumes mid-sequence; earlier frames were served
                elsewhere).
            end_frame: Exclusive end of the delivered window (``None`` =
                the whole sequence) — the source side of a migration
                serves only the head.
            cache_seed: Exported temporal-cache state (see
                :meth:`~repro.exec.scheduler.TemporalCachePartitions.
                export_state`) adopted when the tenant's partition is
                created — the migration hand-off.  ``None`` = cold.

        Raises:
            ConfigurationError: On duplicate client ids, a sequence whose
                frame count does not match the request's path, or an
                invalid frame window.
            AdmissionError: When admission control is configured
                (:attr:`~repro.serving.slo.SLOConfig.admit_cycles`) and
                the projected backlog — every admitted client's estimated
                window cost plus this request's — exceeds the cap.  The
                server's state is unchanged; the caller may retry after
                load drains or route the request elsewhere.
        """
        trace = getattr(sequence, "trace", sequence)
        if not isinstance(trace, SequenceTrace):
            raise ConfigurationError(
                "submit needs a SequenceRender or SequenceTrace, got "
                f"{type(sequence).__name__}"
            )
        if any(c.id == request.client_id for c in self._clients):
            raise ConfigurationError(
                f"duplicate client id {request.client_id!r}"
            )
        cameras = request.path.cameras()
        if len(cameras) != trace.num_frames:
            raise ConfigurationError(
                f"client {request.client_id!r}: path has {len(cameras)} "
                f"frames but the sequence has {trace.num_frames}"
            )
        end = trace.num_frames if end_frame is None else end_frame
        if not 0 <= start_frame < end <= trace.num_frames:
            raise ConfigurationError(
                f"client {request.client_id!r}: invalid frame window "
                f"[{start_frame}, {end}) for {trace.num_frames} frames"
            )
        new_items = sequence_work_items(request.client_id, trace)
        if self.slo is not None and self.slo.admit_cycles is not None:
            projected = sum(
                self._window_est_cycles(c.trace, c.items, *c.window)
                for c in self._clients
            ) + self._window_est_cycles(trace, new_items, start_frame, end)
            if projected > self.slo.admit_cycles:
                if self.recorder.enabled:
                    self.recorder.emit(
                        EV_ADMISSION_REJECT,
                        0,
                        client=request.client_id,
                        slo_class=request.slo_class,
                        projected_cycles=projected,
                        admit_cycles=self.slo.admit_cycles,
                    )
                raise AdmissionError(
                    f"client {request.client_id!r} rejected: projected "
                    f"backlog {projected:.0f} cycles exceeds the admission "
                    f"cap of {self.slo.admit_cycles}"
                )
        self._clients.append(
            _Client(
                request=request,
                trace=trace,
                items=new_items,
                pose_keys=[pose_key(cam) for cam in cameras],
                order=self._order_counter,
                start_frame=start_frame,
                end_frame=end_frame,
                cache_seed=cache_seed,
            )
        )
        self._order_counter += 1

    def release(self, client_id: str) -> None:
        """Forget an admitted client entirely.

        After release the server holds no reference to the client's trace
        — CPython may garbage-collect it and *reuse its* ``id()`` for a
        later submission's trace, which is exactly why every server cache
        is keyed by content, never by object identity.
        """
        client = self._find(client_id)
        self._clients.remove(client)
        for key in [k for k in self._alone_cycles if k[0] == client_id]:
            del self._alone_cycles[key]
        self.last_run_caches.pop(client_id, None)

    def truncate_client(
        self, client_id: str, end_frame: Optional[int]
    ) -> None:
        """Re-bound a client's delivered window (``None`` = full length).

        The cluster layer truncates the source copy of a migrating tenant
        at the migration frame — and un-truncates it afterwards so the
        server stays re-entrant across cluster runs.
        """
        client = self._find(client_id)
        if end_frame is not None and not (
            client.start_frame < end_frame <= client.trace.num_frames
        ):
            raise ConfigurationError(
                f"client {client_id!r}: invalid end_frame {end_frame} for "
                f"window starting at {client.start_frame} with "
                f"{client.trace.num_frames} frames"
            )
        client.end_frame = end_frame

    @property
    def num_clients(self) -> int:
        return len(self._clients)

    # ------------------------------------------------------------------
    # Reference costs
    # ------------------------------------------------------------------
    def alone_cycles(self, client_id: str) -> int:
        """Cycles the client's delivered window costs running alone on
        this accelerator — the back-to-back reference and the slowdown
        denominator.  Alone means the *full* temporal-cache budget, so
        with a bounded ``temporal_capacity`` a served client (holding
        only its partition) can legitimately cost more than this.

        For a windowed (migrated-tail) client, frames before
        ``start_frame`` still execute to warm the temporal cache — the
        reference assumes the hand-off carried the working set — but only
        the window's frames count.  A cold restart therefore shows up as
        extra measured slowdown, which is the point.
        """
        client = self._find(client_id)
        memo_key = (client_id,) + client.window
        if memo_key not in self._alone_cycles:
            start, end = client.window
            # Equivalent to `accelerator.simulate_sequence(...)`, unrolled
            # so the per-frame batched pricing plans it builds seed the
            # server's plan cache: when a partition's resident token later
            # matches the alone run's (the unbounded-capacity default, no
            # trims), serving replays these plans instead of rebuilding.
            cache = TemporalVertexCache(self.temporal_capacity)
            total = 0
            for k, ex in enumerate(
                sequence_executions(
                    self.accelerator,
                    client.trace,
                    group_size=self.group_size,
                    temporal=cache,
                )
            ):
                key = (client.trace.content_token(), k, cache.resident_token)
                cached = self._plan_cache.get(key)
                if cached is not None:
                    ex.attach_plan(cached)
                cycles = ex.finish().total_cycles
                if start <= k:
                    total += cycles
                if ex.plan is not None and key not in self._plan_cache:
                    self._plan_cache.put(key, ex.plan)
                if k + 1 >= end:
                    break
            self._alone_cycles[memo_key] = total
        return self._alone_cycles[memo_key]

    def back_to_back_cycles(self) -> int:
        """Sum of every admitted client's alone cycles — what the same
        workload costs with no sharing at all."""
        return sum(self.alone_cycles(c.id) for c in self._clients)

    def _find(self, client_id: str) -> _Client:
        for c in self._clients:
            if c.id == client_id:
                return c
        raise ConfigurationError(f"unknown client {client_id!r}")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _scanout_cycles(self, trace: SequenceTrace, frame: int) -> int:
        """Exact cycles of delivering a frame by scan-out, priced by the
        accelerator itself (memoised) so the scheduler's estimates stay
        definitionally equal to the eventual charge.  Scan-out is a pure
        function of the frame's rendered pixel count (one framebuffer bus
        transfer plus fixed per-pixel energy), so that count *is* the
        content key — no object identity involved."""
        key = ("scanout", trace.frames[frame].rendered_pixels)
        cached = self._scanout_memo.get(key)
        if cached is None:
            cached = self.accelerator.simulate_scanout(
                trace.frames[frame]
            ).total_cycles
            self._scanout_memo.put(key, cached)
        return cached

    def _window_est_cycles(
        self,
        trace: SequenceTrace,
        items: List[FrameWorkItem],
        start: int,
        end: int,
    ) -> float:
        """Pre-run cycle estimate of one client's delivered window —
        exact scan-out prices for replays, the cycles-per-point prior for
        everything else.  Feeds derived deadlines and the admission-
        control backlog projection, so both see the same arithmetic."""
        return sum(
            self._scanout_cycles(trace, item.frame)
            if item.mode == WORK_REPLAY
            else item.cost_hint * INITIAL_CYCLES_PER_POINT
            for item in items[start:end]
        )

    def projected_backlog_cycles(self) -> float:
        """The admission controller's current backlog projection: the
        summed pre-run cycle estimate of every admitted client's
        delivered window.  This is exactly the quantity
        :meth:`submit` compares against
        :attr:`~repro.serving.slo.SLOConfig.admit_cycles` (plus the
        candidate's own estimate), exposed so capacity planners and the
        overload experiments can pick caps from the same arithmetic."""
        return sum(
            self._window_est_cycles(c.trace, c.items, *c.window)
            for c in self._clients
        )

    def _degraded_trace(self, client: _Client, frame: int, fraction: float):
        """The budget-capped copy of one frame's trace (memoised by
        content digest, so twins and repeated serve() runs share it)."""
        full = client.trace.frames[frame]
        key = ("degraded", full.content_digest(), fraction)
        cached = self._degraded_memo.get(key)
        if cached is None:
            cached = full.with_budget_cap(fraction)
            self._degraded_memo.put(key, cached)
        return cached

    def _reprojected_trace(self, client: _Client, frame: int, mask):
        """The reprojection-thinned copy of one frame's trace: converged
        rays (``mask`` True) are dropped from every wavefront and priced
        as scan-out-only reprojected pixels.  Memoised alongside the
        budget-capped traces, keyed by content digest plus the mask."""
        full = client.trace.frames[frame]
        key = ("reprojected", full.content_digest(), mask.tobytes())
        cached = self._degraded_memo.get(key)
        if cached is None:
            cached = full.with_reprojection(mask)
            self._degraded_memo.put(key, cached)
        return cached

    def _prepare_plans(
        self,
        client: _Client,
        k: int,
        item: FrameWorkItem,
        ready: List[_Client],
        hits: List[bool],
        blocked: List[bool],
        items: Dict[str, List[FrameWorkItem]],
        next_frame: Dict[str, int],
        partitions: TemporalCachePartitions,
        rec: Optional[Recorder] = None,
        clock: int = 0,
    ) -> None:
        """The cross-tenant batching seam of the serving loop.

        Called once per freshly started frame: attach the chosen
        execution's cached pricing plan when one is still valid for its
        partition's resident content, and otherwise price it in **one
        fused batch** together with every other ready client's unstarted
        fresh head frame that lacks a valid plan.  Those head frames'
        pricing is independent of how the policy will interleave the
        quanta — each client's resident set was committed by its own
        previous frame and only changes at frame boundaries or elastic
        re-partitions (which invalidate the plan token) — so pre-pricing
        them cannot disturb the schedule; the throwaway executions built
        here are never started, keeping `item.started` (and therefore the
        policy's view) untouched.
        """
        if not batched_enabled() or item.execution._scanout:
            return
        to_build: List[Tuple[Tuple, FrameExecution]] = []
        key = (
            client.trace.content_token(),
            k,
            partitions.cache_for(client.id).resident_token,
        )
        cached = self._plan_cache.get(key)
        if cached is None or not item.execution.attach_plan(cached):
            to_build.append((key, item.execution))
        if rec is not None:
            rec.emit(
                EV_PLAN_CACHE,
                clock,
                client=client.id,
                frame=k,
                outcome="miss" if to_build else "hit",
            )
        queued = {entry[0] for entry in to_build}
        for i, c in enumerate(ready):
            if c.id == client.id:
                continue
            kc = next_frame[c.id]
            it = items[c.id][kc]
            if it.started or it.mode == WORK_REPLAY or hits[i] or blocked[i]:
                # Blocked twins are deferred expecting a scan-out
                # delivery — pre-pricing them would waste the build.
                continue
            key = (
                c.trace.content_token(),
                kc,
                partitions.cache_for(c.id).resident_token,
            )
            if key in self._plan_cache or key in queued:
                continue
            ex = self.accelerator.frame_execution(
                c.trace,
                kc,
                group_size=self.group_size,
                temporal=partitions.cache_for(c.id),
            )
            if not ex._scanout:
                to_build.append((key, ex))
                queued.add(key)
        if not to_build:
            return
        plans = build_frame_plans([entry[1] for entry in to_build])
        for (key, _), plan in zip(to_build, plans):
            self._plan_cache.put(key, plan)

    def _derive_deadlines(self) -> None:
        """Fix per-frame deadlines before the run starts.

        A request with an explicit ``frame_interval_cycles`` keeps it;
        otherwise the server derives a proportional-share cadence — the
        client's estimated alone pace stretched by the number of admitted
        tenants — so deadline misses measure interference, not ambition.
        The derived cadence is then scaled by the request's SLO class
        (:data:`~repro.serving.slo.SLO_DEADLINE_MULTIPLIER`): interactive
        clients are due ahead of their fair share, batch clients well
        behind it.  The default ``standard`` multiplier is 1.0, so
        class-less workloads keep their exact pre-SLO deadlines.

        Keyframes (planned frames, which pay a Phase I plan pass on top
        of rendering) are charged
        :data:`~repro.serving.slo.KEYFRAME_GRACE_INTERVALS` extra
        interval(s) of grace: a cadence SLO paces the steady reuse
        stream, and no steady-pace cadence can absorb a keyframe's
        one-off planning cost.
        """
        n = len(self._clients)
        for client in self._clients:
            start, end = client.window
            window_items = client.items[start:end]
            interval = client.request.frame_interval_cycles
            if interval is None:
                est = self._window_est_cycles(
                    client.trace, client.items, start, end
                )
                interval = max(1, math.ceil(est / len(window_items))) * n
                factor = SLO_DEADLINE_MULTIPLIER.get(
                    client.request.slo_class, 1.0
                )
                interval = max(1, int(interval * factor))
            client.deadlines = [
                client.request.arrival_cycle
                + (
                    k
                    - start
                    + 1
                    + (
                        KEYFRAME_GRACE_INTERVALS
                        if client.trace.planned[k]
                        else 0
                    )
                )
                * interval
                for k in range(len(client.items))
            ]

    def _content_ids(
        self, client: _Client, frame: int
    ) -> Tuple[Tuple, Optional[Tuple]]:
        """(sequence-level, pose-level) content identities of one frame.

        The sequence-level id resolves in-sequence replays to their source
        frame, so twin requests (equal :meth:`~repro.serving.request.
        ClientRequest.content_key`) share ids frame by frame.  The
        pose-level id exists only for Phase I keyframes — their pixels
        depend on nothing but the scene model and the pose, so any two
        clients probing a bit-identical pose render bit-identical frames.
        """
        replay_of = client.trace.replays[frame]
        resolved = frame if replay_of is None else replay_of
        seq_id = client.request.content_key() + (resolved,)
        pose_id = None
        if replay_of is None and client.trace.planned[frame]:
            pose_id = (
                "pose",
                client.request.scene,
                client.request.tensorf,
                client.pose_keys[frame],
            )
        return seq_id, pose_id

    # ------------------------------------------------------------------
    # The serving event loop
    # ------------------------------------------------------------------
    def serve(
        self, policy: Union[str, SchedulingPolicy] = "round_robin"
    ) -> ServeReport:
        """Run every admitted client under ``policy`` on a virtual clock.

        Each iteration of the event loop: departed clients abort (their
        in-flight execution is abandoned, their temporal-cache share is
        redistributed), newly arrived clients are admitted (elastic
        re-partitioning), the policy picks among the ready clients' head
        frames, and the chosen frame executes — to completion for a
        non-preemptive policy, for at most ``policy.quantum`` wavefront
        steps otherwise — advancing the clock by exactly the cycles
        charged.  Serving the same submissions twice yields identical
        reports — all pricing is deterministic arithmetic on the traces.

        Returns:
            A :class:`~repro.serving.report.ServeReport` with the
            schedule, per-client latency percentiles, throughput,
            fairness, context-switch counts and the back-to-back
            reference.
        """
        if not self._clients:
            raise ConfigurationError("no clients submitted")
        if isinstance(policy, str):
            policy = make_policy(policy)
        self._derive_deadlines()
        slo = self.slo
        # Quantum auto-tuning: with `quantum="auto"` every decision runs
        # the tuner's current quantum, re-sized from the measured
        # cycles-per-step distribution after each charge.  The tuner sees
        # only values the loop computes anyway, so auto-tuned schedules
        # are deterministic and engine/recorder independent.
        tuner = (
            QuantumAutoTuner()
            if policy.preemptive and policy.quantum == AUTO_QUANTUM
            else None
        )
        # Runtime state is per serve() call: fresh work items (the server
        # is re-entrant across policies), an initially empty partition set
        # (tenants are admitted as they arrive) and a cold cost model.
        items: Dict[str, List[FrameWorkItem]] = {
            c.id: [item.fresh() for item in c.items] for c in self._clients
        }
        partitions = TemporalCachePartitions([], self.temporal_capacity)
        cost_model = WavefrontCostModel()
        executed: Set[Tuple] = set()
        # Content currently executing *fresh* on some tenant: content id
        # -> leader client id.  Under a preemptive policy an unstarted
        # twin of an in-flight frame defers (bounded by the starvation
        # guard) so it can deliver as a scan-out replay after the
        # leader's commit instead of double-charging shared content.
        in_flight_content: Dict[Tuple, str] = {}
        defer_counts: Dict[Tuple[str, int], int] = {}
        self.last_run_caches = {}
        # Telemetry: a disabled recorder is normalised to None once, so
        # every emit site below costs one identity check on the hot path.
        # Events only *read* values the loop computed anyway — nothing
        # below may feed back into pricing or scheduling.
        rec = self.recorder if self.recorder.enabled else None
        reports = {
            c.id: ClientServeReport(
                client_id=c.id,
                scene=c.request.scene,
                preset=c.request.path.preset,
                arrival_cycle=c.request.arrival_cycle,
                alone_cycles=self.alone_cycles(c.id),
                slo_class=c.request.slo_class,
            )
            for c in self._clients
        }
        # Frames dropped by load shedding, per client — an in-sequence
        # replay whose source frame was shed cascades (there are no
        # rendered pixels to scan out), so the set is consulted at the
        # head of every iteration.
        shed_sets: Dict[str, Set[int]] = {c.id: set() for c in self._clients}
        next_frame = {c.id: c.start_frame for c in self._clients}
        ends = {c.id: c.end for c in self._clients}
        finished: Set[str] = set()  # departed or fully served
        admitted: Set[str] = set()
        schedule: List[ScheduledFrame] = []
        clock = 0
        context_switches = 0
        context_switch_cycles = 0
        # The tenant whose fresh-frame wavefronts ran last — switching
        # away from it while its frame is in flight is a context switch
        # (scan-out deliveries ride the bus and disturb no engine state).
        engine_owner: Optional[str] = None
        if rec is not None:
            rec.emit(
                EV_SERVE_START,
                clock,
                policy=policy.name,
                clients=len(self._clients),
                quantum=policy.quantum if policy.preemptive else None,
                preemptive=policy.preemptive,
                shared_content=self.shared_content,
            )

        def unfinished() -> List[_Client]:
            return [
                c for c in self._clients
                if c.id not in finished and next_frame[c.id] < ends[c.id]
            ]

        def retire(client: _Client) -> None:
            """Remove a finished/departed tenant from the elastic set.

            The released partition is kept on ``last_run_caches`` so a
            cluster can export the tenant's temporal state for a
            migration hand-off after this run completes.
            """
            nonlocal engine_owner
            finished.add(client.id)
            if client.id in partitions.tenants:
                cache = partitions.release(client.id)
                # Drop the telemetry hook with the run that owned it — a
                # retired partition may outlive this serve() call (it is
                # the migration export source).
                cache.observer = None
                self.last_run_caches[client.id] = cache
            if engine_owner == client.id:
                engine_owner = None

        def complete_frame(client: _Client, item: FrameWorkItem,
                           frame_report, cross: bool) -> None:
            """Deliver a finished frame: schedule entry, latency, modes."""
            k = item.frame
            seq_id, pose_id = self._content_ids(client, k)
            if item.budget_fraction is None and not item.reprojected:
                # Degraded/reprojected frames never register their
                # content: their pixels are not the full-quality frames a
                # twin expects to scan out.
                executed.add(seq_id)
                if pose_id is not None:
                    executed.add(pose_id)
            schedule.append(
                ScheduledFrame(
                    client=client.id,
                    frame=k,
                    mode=item.mode,
                    cross_replay=cross,
                    start_cycle=item.start_cycle,
                    cycles=item.service_cycles,
                    completion_cycle=clock,
                    preemptions=item.preemptions,
                )
            )
            rep = reports[client.id]
            rep.latencies_cycles.append(clock - client.request.arrival_cycle)
            rep.service_cycles += item.service_cycles
            rep.energy_joules += frame_report.energy_joules
            if cross:
                rep.cross_replays += 1
            if item.mode == WORK_REPLAY:
                rep.replays += 1
            elif item.mode == WORK_PROBE:
                rep.probes += 1
            else:
                rep.reuses += 1
            deadline = client.deadlines[k]
            if deadline is not None and clock > deadline:
                rep.deadline_misses += 1
            if rec is not None:
                rec.emit(
                    EV_FRAME_COMPLETE,
                    clock,
                    client=client.id,
                    frame=k,
                    mode=item.mode,
                    cross=cross,
                    start=item.start_cycle,
                    cycles=item.service_cycles,
                    preemptions=item.preemptions,
                    encoding_cycles=frame_report.encoding.cycles,
                    mlp_cycles=frame_report.mlp.cycles,
                    render_cycles=frame_report.render.cycles,
                    bus_cycles=frame_report.bus_cycles,
                    stall_cycles=frame_report.buffer_stall_cycles,
                    energy_joules=frame_report.energy_joules,
                    deadline_missed=(
                        deadline is not None and clock > deadline
                    ),
                )
            for cid_key in [
                key
                for key, owner in in_flight_content.items()
                if owner == client.id
            ]:
                del in_flight_content[cid_key]
            next_frame[client.id] = k + 1
            if next_frame[client.id] == ends[client.id]:
                retire(client)

        def abort(client: _Client) -> None:
            """Client departure: cancel undelivered frames, abandon the
            in-flight execution (its partial cycles stay attributed to
            the client — conservation), free the cache share."""
            rep = reports[client.id]
            head = next_frame[client.id]
            pending_items = items[client.id][head : ends[client.id]]
            rep.aborted_frames += len(pending_items)
            if rec is not None:
                rec.emit(
                    EV_DEPARTURE,
                    clock,
                    client=client.id,
                    aborted=len(pending_items),
                    delivered=head - client.start_frame,
                )
            if pending_items and pending_items[0].in_flight:
                item = pending_items[0]
                if rec is not None:
                    rec.emit(
                        EV_FRAME_ABORT,
                        clock,
                        client=client.id,
                        frame=item.frame,
                        cycles=item.service_cycles,
                        start=item.start_cycle,
                    )
                partial = item.execution.abandon()
                rep.service_cycles += item.service_cycles
                rep.energy_joules += partial.energy_joules
                schedule.append(
                    ScheduledFrame(
                        client=client.id,
                        frame=item.frame,
                        mode=item.mode,
                        cross_replay=False,
                        start_cycle=item.start_cycle,
                        cycles=item.service_cycles,
                        completion_cycle=clock,
                        preemptions=item.preemptions,
                        delivered=False,
                    )
                )
            for cid_key in [
                key
                for key, owner in in_flight_content.items()
                if owner == client.id
            ]:
                del in_flight_content[cid_key]
            retire(client)

        def shed_frame(client: _Client, est: float) -> None:
            """Drop the client's head frame under overload: zero cycles,
            an undelivered schedule row, and the frame counts against the
            client's SLO attainment (never against conservation)."""
            k = next_frame[client.id]
            item = items[client.id][k]
            rep = reports[client.id]
            rep.shed_frames += 1
            shed_sets[client.id].add(k)
            schedule.append(
                ScheduledFrame(
                    client=client.id,
                    frame=k,
                    mode=item.mode,
                    cross_replay=False,
                    start_cycle=-1,
                    cycles=0,
                    completion_cycle=clock,
                    preemptions=0,
                    delivered=False,
                )
            )
            if rec is not None:
                rec.emit(
                    EV_SHED,
                    clock,
                    client=client.id,
                    frame=k,
                    slo_class=client.request.slo_class,
                    est_cycles=est,
                )
            next_frame[client.id] = k + 1
            if next_frame[client.id] == ends[client.id]:
                retire(client)

        while True:
            # 1. Departures first: a client gone by `clock` receives
            #    nothing from this point on.
            for c in list(unfinished()):
                dep = c.request.departure_cycle
                if dep is not None and dep <= clock:
                    abort(c)
            remaining = unfinished()
            if not remaining:
                break
            ready = [
                c for c in remaining if c.request.arrival_cycle <= clock
            ]
            if not ready:
                clock = min(c.request.arrival_cycle for c in remaining)
                continue
            # 2. Mid-run admission: tenants joining at this clock get a
            #    partition; everyone present re-splits the budget.
            for c in ready:
                if c.id not in admitted:
                    partitions.admit(c.id, seed=c.cache_seed)
                    admitted.add(c.id)
                    if rec is not None:
                        rec.emit(
                            EV_ADMISSION,
                            clock,
                            client=c.id,
                            tenants=len(partitions.tenants),
                            warm=c.cache_seed is not None,
                            frames=ends[c.id] - c.start_frame,
                        )
                        # Per-lookup temporal-cache telemetry, attributed
                        # to the tenant.  The hook reads `clock` from this
                        # scope at call time, so events carry the start of
                        # the quantum whose lookups they are.
                        partitions.cache_for(c.id).observer = (
                            lambda level, accesses, hits, _cid=c.id: (
                                rec.emit(
                                    EV_TEMPORAL_CACHE,
                                    clock,
                                    client=_cid,
                                    level=level,
                                    accesses=accesses,
                                    hits=hits,
                                )
                            )
                        )

            # 2b. Shed cascade: an in-sequence replay whose source frame
            #     was shed has nothing to scan out — it is shed too,
            #     before it can enter the candidate set.
            if slo is not None and slo.shed:
                cascaded = False
                for c in ready:
                    while (
                        c.id not in finished
                        and next_frame[c.id] < ends[c.id]
                    ):
                        k = next_frame[c.id]
                        src = c.trace.replays[k]
                        if src is None or src not in shed_sets[c.id]:
                            break
                        shed_frame(
                            c, float(self._scanout_cycles(c.trace, k))
                        )
                        cascaded = True
                if cascaded:
                    continue

            # 3. Build the candidate set (one head frame per ready client).
            #    A candidate is *blocked* when its content is mid-flight
            #    on another tenant (the leader): deferring it lets the
            #    leader's scan-out commit turn it into a replay.  The
            #    per-frame defer count bounds the wait (starvation
            #    guard); the leader itself is always selectable, so the
            #    loop cannot stall.
            pending: List[PendingFrame] = []
            hits: List[bool] = []
            blocked: List[bool] = []
            for c in ready:
                k = next_frame[c.id]
                item = items[c.id][k]
                rep = reports[c.id]
                blk = False
                if item.started:
                    # Locked in as a fresh execution; estimate remaining.
                    hit = False
                    est = cost_model.estimate(item.execution.remaining_points)
                else:
                    seq_id, pose_id = self._content_ids(c, k)
                    hit = self.shared_content and (
                        seq_id in executed
                        or (pose_id is not None and pose_id in executed)
                    )
                    if item.mode == WORK_REPLAY or hit:
                        est = float(self._scanout_cycles(c.trace, k))
                    else:
                        est = cost_model.estimate(item.cost_hint)
                        if self.shared_content and self.twin_defer_limit > 0:
                            leader = in_flight_content.get(seq_id)
                            if leader is None and pose_id is not None:
                                leader = in_flight_content.get(pose_id)
                            blk = (
                                leader is not None
                                and leader != c.id
                                and defer_counts.get((c.id, k), 0)
                                < self.twin_defer_limit
                            )
                hits.append(hit)
                blocked.append(blk)
                pending.append(
                    PendingFrame(
                        item=item,
                        order=c.order,
                        arrival_cycle=c.request.arrival_cycle,
                        completed=k,
                        total_frames=len(items[c.id]),
                        est_cycles=est,
                        deadline_cycle=c.deadlines[k],
                        started=item.started,
                        client_service_cycles=(
                            rep.service_cycles + item.service_cycles
                        ),
                        slo_class=c.request.slo_class,
                    )
                )

            # 3b. Overload responses.  The signal is a deadlined head
            #     frame already past recoverable: raw slack (deadline -
            #     clock - estimated remaining cycles) below zero.  It
            #     reuses the estimates just computed, so a server without
            #     an active SLOConfig pays nothing here.
            overloaded = (
                slo is not None
                and slo.active
                and any(
                    p.deadline_cycle is not None
                    and p.deadline_cycle - clock - p.est_cycles < 0
                    for p in pending
                )
            )
            if overloaded and slo.shed:
                # Shed at most one batch-class victim per iteration (the
                # priciest pending one — the biggest relief per drop),
                # then re-evaluate: overload may already have cleared.
                # Started, replay-mode, content-hit and twin-blocked
                # frames are exempt — they are cheap or already paid for.
                victims = [
                    i
                    for i in range(len(ready))
                    if pending[i].slo_class in SLO_SHED_ORDER
                    and not pending[i].started
                    and pending[i].item.mode != WORK_REPLAY
                    and not hits[i]
                    and not blocked[i]
                ]
                if victims:
                    victim = max(
                        victims,
                        key=lambda i: (pending[i].est_cycles, ready[i].id),
                    )
                    shed_frame(ready[victim], pending[victim].est_cycles)
                    continue

            selectable = (
                [i for i, b in enumerate(blocked) if not b]
                if any(blocked)
                else None
            )
            if rec is not None:
                rec.emit(
                    EV_SCHED,
                    clock,
                    ready=len(ready),
                    blocked=sum(blocked),
                    waiting=len(remaining) - len(ready),
                )
            if selectable:
                for i, b in enumerate(blocked):
                    if b:
                        twin = ready[i]
                        tk = (twin.id, next_frame[twin.id])
                        defer_counts[tk] = defer_counts.get(tk, 0) + 1
                        reports[twin.id].twin_deferrals += 1
                        if rec is not None:
                            rec.emit(
                                EV_TWIN_DEFER,
                                clock,
                                client=twin.id,
                                frame=next_frame[twin.id],
                                deferrals=defer_counts[tk],
                            )
                sub = [pending[i] for i in selectable]
                rel = policy.select(sub, clock)
                if not 0 <= rel < len(sub):
                    raise ConfigurationError(
                        f"policy {policy.name!r} selected invalid index {rel}"
                    )
                chosen = selectable[rel]
            else:
                # No blocking (or — defensively — everything blocked, in
                # which case deferral is waived rather than stalling).
                chosen = policy.select(pending, clock)
                if not 0 <= chosen < len(pending):
                    raise ConfigurationError(
                        f"policy {policy.name!r} selected invalid index "
                        f"{chosen}"
                    )
            client = ready[chosen]
            k = next_frame[client.id]
            item = items[client.id][k]

            # 4a. Scan-out deliveries (in-sequence replays and cross-client
            #     content hits) are atomic: one bus transfer, no engines.
            if not item.started and (item.mode == WORK_REPLAY or hits[chosen]):
                frame_report = self.accelerator.simulate_scanout(
                    client.trace.frames[k]
                )
                item.start_cycle = clock
                item.service_cycles = frame_report.total_cycles
                clock += frame_report.total_cycles
                if rec is not None:
                    rec.emit(
                        EV_SCANOUT,
                        item.start_cycle,
                        client=client.id,
                        frame=k,
                        cycles=frame_report.total_cycles,
                        cross=hits[chosen] and item.mode != WORK_REPLAY,
                    )
                complete_frame(
                    client, item, frame_report,
                    cross=hits[chosen] and item.mode != WORK_REPLAY,
                )
                continue

            # 4b. Fresh execution: start or resume the frame's cursor.
            # Switch overhead is charged before the frame's start cycle
            # is stamped, so `completion - start` exceeds `cycles` by
            # exactly the time the frame itself sat suspended.
            if engine_owner is not None and engine_owner != client.id:
                # The previous tenant's frame is still in flight: its
                # engine state is set aside — a context switch, charged
                # separately from anyone's service cycles.
                owner_items = items[engine_owner]
                owner_head = next_frame[engine_owner]
                if (
                    engine_owner not in finished
                    and owner_head < len(owner_items)
                    and owner_items[owner_head].in_flight
                ):
                    owner_items[owner_head].preemptions += 1
                    reports[engine_owner].preemptions += 1
                    context_switches += 1
                    if rec is not None:
                        rec.emit(
                            EV_PREEMPTION,
                            clock,
                            preempted=engine_owner,
                            by=client.id,
                            overhead=self.context_switch_cycles,
                        )
                    clock += self.context_switch_cycles
                    context_switch_cycles += self.context_switch_cycles
            engine_owner = client.id
            if not item.started:
                # Degraded-quality mode: while overloaded, a non-keyframe
                # (plan-reuse) frame starting now prefers *temporal
                # reprojection* — warping its converged rays from the
                # previous delivered frame at scan-out cost — and falls
                # back to a budget-capped copy of its trace when no skip
                # mask is armed.  Both PSNR guards are honoured
                # conservatively — when a floor is configured, only
                # frames with a known measured PSNR at or above it
                # degrade; unknown quality serves at full budget.
                degrade_fraction = None
                reproject_mask = None
                psnr = None
                if overloaded and slo.degrade and item.mode == WORK_REUSE:
                    guard = slo.degrade_min_psnr
                    if slo.reproject_masks is not None:
                        mask = slo.reproject_masks.get((client.id, k))
                        if mask is not None:
                            psnr = (
                                slo.reproject_psnr.get((client.id, k))
                                if slo.reproject_psnr is not None
                                else None
                            )
                            if guard is None or (
                                psnr is not None and psnr >= guard
                            ):
                                reproject_mask = mask
                            else:
                                psnr = None
                    if reproject_mask is None:
                        psnr = (
                            slo.degrade_psnr.get((client.id, k))
                            if slo.degrade_psnr is not None
                            else None
                        )
                        if guard is None or (
                            psnr is not None and psnr >= guard
                        ):
                            degrade_fraction = slo.degrade_fraction
                scoped = (
                    None
                    if rec is None
                    else ScopedRecorder(rec, client=client.id, frame=k)
                )
                if reproject_mask is not None:
                    item.reprojected = True
                    item.execution = self.accelerator.trace_execution(
                        self._reprojected_trace(client, k, reproject_mask),
                        group_size=self.group_size,
                        temporal=partitions.cache_for(client.id),
                        commit_tag=k,
                        recorder=scoped,
                    )
                    reports[client.id].degraded.append(
                        {
                            "frame": k,
                            "mode": "reproject",
                            "pixels": int(reproject_mask.sum()),
                            "psnr": psnr,
                        }
                    )
                    if rec is not None:
                        rec.emit(
                            EV_REPROJECT,
                            clock,
                            client=client.id,
                            frame=k,
                            pixels=int(reproject_mask.sum()),
                            psnr=psnr,
                        )
                elif degrade_fraction is not None:
                    item.budget_fraction = degrade_fraction
                    item.execution = self.accelerator.trace_execution(
                        self._degraded_trace(client, k, degrade_fraction),
                        group_size=self.group_size,
                        temporal=partitions.cache_for(client.id),
                        commit_tag=k,
                        recorder=scoped,
                    )
                    reports[client.id].degraded.append(
                        {
                            "frame": k,
                            "fraction": degrade_fraction,
                            "psnr": psnr,
                        }
                    )
                    if rec is not None:
                        rec.emit(
                            EV_DEGRADE,
                            clock,
                            client=client.id,
                            frame=k,
                            fraction=degrade_fraction,
                            psnr=psnr,
                        )
                else:
                    item.execution = self.accelerator.frame_execution(
                        client.trace,
                        k,
                        group_size=self.group_size,
                        temporal=partitions.cache_for(client.id),
                        recorder=scoped,
                    )
                item.start_cycle = clock
                if rec is not None and item.mode == WORK_PROBE:
                    rec.emit(
                        EV_KEYFRAME_PROBE,
                        clock,
                        client=client.id,
                        frame=k,
                        points=item.cost_hint,
                    )
                degraded_start = (
                    degrade_fraction is not None or reproject_mask is not None
                )
                if self.shared_content and not degraded_start:
                    # This tenant now leads its content: unstarted twins
                    # defer until the commit in `complete_frame` (or this
                    # client's abort) clears the claim.  A degraded or
                    # reprojected frame never leads — its pixels are not
                    # the full-quality content a twin would scan out.
                    seq_id, pose_id = self._content_ids(client, k)
                    in_flight_content.setdefault(seq_id, client.id)
                    if pose_id is not None:
                        in_flight_content.setdefault(pose_id, client.id)
                if not degraded_start:
                    self._prepare_plans(
                        client, k, item, ready, hits, blocked, items,
                        next_frame, partitions, rec=rec, clock=clock,
                    )

            points_before = item.execution.points_done
            steps_before = item.execution.steps_done
            quantum_start = clock
            max_steps = None
            if policy.preemptive:
                max_steps = (
                    tuner.quantum if tuner is not None else policy.quantum
                )
            charged = item.execution.run(max_steps=max_steps)
            cost_model.observe(
                charged, item.execution.points_done - points_before
            )
            item.service_cycles += charged
            clock += charged
            if rec is not None:
                rec.emit(
                    EV_QUANTUM,
                    quantum_start,
                    client=client.id,
                    frame=k,
                    cycles=charged,
                    points=item.execution.points_done - points_before,
                    mode=item.mode,
                    done=item.execution.done,
                )
            if tuner is not None:
                tuned = tuner.observe(
                    charged, item.execution.steps_done - steps_before
                )
                if tuned and rec is not None:
                    rec.emit(
                        EV_QUANTUM_TUNE,
                        clock,
                        quantum=tuner.quantum,
                        p95_step_cycles=tuner.p95_step_cycles,
                        target_cycles=tuner.target_cycles,
                    )
            if item.execution.done:
                frame_report = item.execution.finish()
                complete_frame(client, item, frame_report, cross=False)
            # else: suspended — the cursor (and its engines) wait on the
            # work item for the policy's next decision.

        if rec is not None:
            rec.emit(
                EV_SERVE_END,
                clock,
                policy=policy.name,
                makespan=clock,
                context_switches=context_switches,
                frames_delivered=sum(
                    1 for s in schedule if s.delivered
                ),
            )
        return ServeReport(
            policy=policy.name,
            clock_hz=self.accelerator.config.clock_hz,
            clients=[reports[c.id] for c in self._clients],
            schedule=schedule,
            makespan_cycles=clock,
            back_to_back_cycles=self.back_to_back_cycles(),
            context_switches=context_switches,
            context_switch_cycles=context_switch_cycles,
            quantum=policy.quantum if policy.preemptive else None,
        )
