"""The multi-tenant sequence server: N clients, one simulated accelerator.

:class:`SequenceServer` admits concurrent :class:`~repro.serving.request.
ClientRequest`\\ s whose sequences are already rendered (the Workbench
memoises them — see :meth:`repro.experiments.workbench.Workbench.
client_sequence`), then interleaves their per-frame work on one
:class:`~repro.arch.accelerator.ASDRAccelerator` under a scheduling
policy.  The scheduling unit is the :class:`~repro.exec.scheduler.
FrameWorkItem` — one frame of one client's
:class:`~repro.exec.sequence.SequenceTrace` — and a client's frames
always execute in path order (sampling-plan reuse and the temporal vertex
cache both depend on it).

Sharing levers, strongest first:

* **Cross-client content replay** — a frame whose content another client
  already executed this run (same scene/backend/trajectory/probe cadence,
  or a bit-identical pose both clients probe as a keyframe) is delivered
  at framebuffer scan-out cost, like an in-sequence pose replay.  This is
  why serving N overlapping clients costs *less* than running them
  back-to-back.
* **Temporal-cache partitioning** — each tenant owns a private partition
  of the temporal vertex cache
  (:class:`~repro.exec.scheduler.TemporalCachePartitions`), so one
  client's working set never evicts another's, no matter how the policy
  interleaves tenants.  The interleaved total always equals the sum of
  per-client service cycles; with the default *unbounded* budget each
  partition equals the cache a client would have alone, so that total
  also equals back-to-back exactly when content sharing is off.  A
  *bounded* budget divides capacity among tenants — real contention —
  and a client may then pay more than it would alone.
* **Trace sharing** — clients with identical requests share one memoised
  :class:`~repro.exec.sequence.SequenceTrace` object (the Workbench's
  sequence memo), so serving twins costs no extra rendering or trace
  memory.

Everything is priced on a virtual cycle clock, so serving reports are
deterministic for a fixed arrival order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.arch.accelerator import ASDRAccelerator
from repro.errors import ConfigurationError
from repro.exec.scheduler import (
    WORK_PROBE,
    WORK_REPLAY,
    FrameWorkItem,
    TemporalCachePartitions,
    sequence_work_items,
)
from repro.exec.sequence import SequenceRender, SequenceTrace, pose_key
from repro.serving.policies import PendingFrame, SchedulingPolicy, make_policy
from repro.serving.report import ClientServeReport, ScheduledFrame, ServeReport
from repro.serving.request import ClientRequest

#: Cycles-per-density-point prior used before the first fresh frame
#: calibrates the estimator (the value only shapes pre-calibration
#: ordering and derived deadlines; every policy is deterministic for any
#: choice).
INITIAL_CYCLES_PER_POINT = 2.0


@dataclass
class _Client:
    """Admitted request plus its rendered sequence and schedule state."""

    request: ClientRequest
    trace: SequenceTrace
    items: List[FrameWorkItem]
    pose_keys: List[bytes]
    order: int
    deadlines: List[Optional[int]] = field(default_factory=list)

    @property
    def id(self) -> str:
        return self.request.client_id


class SequenceServer:
    """Interleaves N clients' sequence frames on one simulated accelerator.

    Args:
        accelerator: The shared design point every client runs on.
        group_size: Color-decoupling group size applied to every frame
            (as in :meth:`~repro.arch.accelerator.ASDRAccelerator.
            simulate_sequence`).
        temporal_capacity: Combined temporal vertex-cache budget,
            partitioned evenly among admitted tenants (``None`` =
            unbounded partitions).
        shared_content: Enable cross-client content replay.  Disable to
            price every client as if its content were unique (the
            back-to-back-equivalent configuration).

    Example lifecycle::

        server = SequenceServer(accelerator)
        for request in requests:
            server.submit(request, wb.client_sequence(request))
        report = server.serve("round_robin")
    """

    def __init__(
        self,
        accelerator: ASDRAccelerator,
        group_size: int = 1,
        temporal_capacity: Optional[int] = None,
        shared_content: bool = True,
    ) -> None:
        self.accelerator = accelerator
        self.group_size = group_size
        self.temporal_capacity = temporal_capacity
        self.shared_content = shared_content
        self._clients: List[_Client] = []
        self._alone_cycles: Dict[str, int] = {}
        self._scanout_memo: Dict[Tuple, int] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: ClientRequest,
        sequence: Union[SequenceRender, SequenceTrace],
    ) -> None:
        """Admit one client with its rendered sequence.

        Args:
            request: The client's request (identity, trajectory, targets).
            sequence: The rendered sequence for ``request.path`` — a
                :class:`~repro.exec.sequence.SequenceRender` (as returned
                by the Workbench) or its
                :class:`~repro.exec.sequence.SequenceTrace` directly.

        Raises:
            ConfigurationError: On duplicate client ids or a sequence
                whose frame count does not match the request's path.
        """
        trace = getattr(sequence, "trace", sequence)
        if not isinstance(trace, SequenceTrace):
            raise ConfigurationError(
                "submit needs a SequenceRender or SequenceTrace, got "
                f"{type(sequence).__name__}"
            )
        if any(c.id == request.client_id for c in self._clients):
            raise ConfigurationError(
                f"duplicate client id {request.client_id!r}"
            )
        cameras = request.path.cameras()
        if len(cameras) != trace.num_frames:
            raise ConfigurationError(
                f"client {request.client_id!r}: path has {len(cameras)} "
                f"frames but the sequence has {trace.num_frames}"
            )
        self._clients.append(
            _Client(
                request=request,
                trace=trace,
                items=sequence_work_items(request.client_id, trace),
                pose_keys=[pose_key(cam) for cam in cameras],
                order=len(self._clients),
            )
        )

    @property
    def num_clients(self) -> int:
        return len(self._clients)

    # ------------------------------------------------------------------
    # Reference costs
    # ------------------------------------------------------------------
    def alone_cycles(self, client_id: str) -> int:
        """Cycles the client's sequence costs running alone on this
        accelerator — the back-to-back reference and the slowdown
        denominator.  Alone means the *full* temporal-cache budget, so
        with a bounded ``temporal_capacity`` a served client (holding
        only its partition) can legitimately cost more than this."""
        if client_id not in self._alone_cycles:
            client = self._find(client_id)
            report = self.accelerator.simulate_sequence(
                client.trace,
                group_size=self.group_size,
                temporal=True,
                temporal_capacity=self.temporal_capacity,
            )
            self._alone_cycles[client_id] = report.total_cycles
        return self._alone_cycles[client_id]

    def back_to_back_cycles(self) -> int:
        """Sum of every admitted client's alone cycles — what the same
        workload costs with no sharing at all."""
        return sum(self.alone_cycles(c.id) for c in self._clients)

    def _find(self, client_id: str) -> _Client:
        for c in self._clients:
            if c.id == client_id:
                return c
        raise ConfigurationError(f"unknown client {client_id!r}")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _scanout_cycles(self, trace: SequenceTrace, frame: int) -> int:
        """Exact cycles of delivering a frame by scan-out, priced by the
        accelerator itself (memoised per frame trace) so the scheduler's
        estimates stay definitionally equal to the eventual charge."""
        key = (id(trace.frames[frame]), trace.frames[frame].rendered_pixels)
        if key not in self._scanout_memo:
            self._scanout_memo[key] = self.accelerator.simulate_scanout(
                trace.frames[frame]
            ).total_cycles
        return self._scanout_memo[key]

    def _derive_deadlines(self) -> None:
        """Fix per-frame deadlines before the run starts.

        A request with an explicit ``frame_interval_cycles`` keeps it;
        otherwise the server derives a proportional-share cadence — the
        client's estimated alone pace stretched by the number of admitted
        tenants — so deadline misses measure interference, not ambition.
        """
        n = len(self._clients)
        for client in self._clients:
            interval = client.request.frame_interval_cycles
            if interval is None:
                est = sum(
                    self._scanout_cycles(client.trace, item.frame)
                    if item.mode == WORK_REPLAY
                    else item.cost_hint * INITIAL_CYCLES_PER_POINT
                    for item in client.items
                )
                interval = max(1, math.ceil(est / len(client.items))) * n
            client.deadlines = [
                client.request.arrival_cycle + (k + 1) * interval
                for k in range(len(client.items))
            ]

    def _content_ids(
        self, client: _Client, frame: int
    ) -> Tuple[Tuple, Optional[Tuple]]:
        """(sequence-level, pose-level) content identities of one frame.

        The sequence-level id resolves in-sequence replays to their source
        frame, so twin requests (equal :meth:`~repro.serving.request.
        ClientRequest.content_key`) share ids frame by frame.  The
        pose-level id exists only for Phase I keyframes — their pixels
        depend on nothing but the scene model and the pose, so any two
        clients probing a bit-identical pose render bit-identical frames.
        """
        replay_of = client.trace.replays[frame]
        resolved = frame if replay_of is None else replay_of
        seq_id = client.request.content_key() + (resolved,)
        pose_id = None
        if replay_of is None and client.trace.planned[frame]:
            pose_id = (
                "pose",
                client.request.scene,
                client.request.tensorf,
                client.pose_keys[frame],
            )
        return seq_id, pose_id

    def serve(
        self, policy: Union[str, SchedulingPolicy] = "round_robin"
    ) -> ServeReport:
        """Run every admitted client to completion under ``policy``.

        The server walks a virtual cycle clock: at each step the policy
        picks among the ready clients' head frames, the chosen frame is
        priced (scan-out for replays and cross-client content hits; a
        full :meth:`~repro.arch.accelerator.ASDRAccelerator.
        simulate_sequence_frame` otherwise) and the clock advances by its
        cycles.  Serving the same submissions twice yields identical
        reports — all pricing is deterministic arithmetic on the traces.

        Returns:
            A :class:`~repro.serving.report.ServeReport` with the
            schedule, per-client latency percentiles, throughput,
            fairness and the back-to-back reference.
        """
        if not self._clients:
            raise ConfigurationError("no clients submitted")
        if isinstance(policy, str):
            policy = make_policy(policy)
        self._derive_deadlines()
        partitions = TemporalCachePartitions(
            [c.id for c in self._clients], self.temporal_capacity
        )
        executed: Set[Tuple] = set()
        reports = {
            c.id: ClientServeReport(
                client_id=c.id,
                scene=c.request.scene,
                preset=c.request.path.preset,
                arrival_cycle=c.request.arrival_cycle,
                alone_cycles=self.alone_cycles(c.id),
            )
            for c in self._clients
        }
        next_frame = {c.id: 0 for c in self._clients}
        cycles_per_point = INITIAL_CYCLES_PER_POINT
        schedule: List[ScheduledFrame] = []
        clock = 0

        def unfinished() -> List[_Client]:
            return [
                c for c in self._clients
                if next_frame[c.id] < len(c.items)
            ]

        while True:
            remaining = unfinished()
            if not remaining:
                break
            ready = [
                c for c in remaining if c.request.arrival_cycle <= clock
            ]
            if not ready:
                clock = min(c.request.arrival_cycle for c in remaining)
                continue

            pending: List[PendingFrame] = []
            hits: List[bool] = []
            for c in ready:
                k = next_frame[c.id]
                item = c.items[k]
                seq_id, pose_id = self._content_ids(c, k)
                hit = self.shared_content and (
                    seq_id in executed or (pose_id is not None and pose_id in executed)
                )
                hits.append(hit)
                if item.mode == WORK_REPLAY or hit:
                    est = float(self._scanout_cycles(c.trace, k))
                else:
                    est = item.cost_hint * cycles_per_point
                pending.append(
                    PendingFrame(
                        item=item,
                        order=c.order,
                        arrival_cycle=c.request.arrival_cycle,
                        completed=k,
                        total_frames=len(c.items),
                        est_cycles=est,
                        deadline_cycle=c.deadlines[k],
                    )
                )

            chosen = policy.select(pending, clock)
            if not 0 <= chosen < len(pending):
                raise ConfigurationError(
                    f"policy {policy.name!r} selected invalid index {chosen}"
                )
            client = ready[chosen]
            k = next_frame[client.id]
            item = client.items[k]
            cross = hits[chosen] and item.mode != WORK_REPLAY
            if item.mode == WORK_REPLAY or hits[chosen]:
                frame_report = self.accelerator.simulate_scanout(
                    client.trace.frames[k]
                )
            else:
                frame_report = self.accelerator.simulate_sequence_frame(
                    client.trace,
                    k,
                    group_size=self.group_size,
                    temporal=partitions.cache_for(client.id),
                )
                if item.cost_hint:
                    cycles_per_point = 0.5 * cycles_per_point + 0.5 * (
                        frame_report.total_cycles / item.cost_hint
                    )

            seq_id, pose_id = self._content_ids(client, k)
            executed.add(seq_id)
            if pose_id is not None:
                executed.add(pose_id)

            start = clock
            clock += frame_report.total_cycles
            schedule.append(
                ScheduledFrame(
                    client=client.id,
                    frame=k,
                    mode=item.mode,
                    cross_replay=cross,
                    start_cycle=start,
                    cycles=frame_report.total_cycles,
                    completion_cycle=clock,
                )
            )
            rep = reports[client.id]
            rep.latencies_cycles.append(clock - client.request.arrival_cycle)
            rep.service_cycles += frame_report.total_cycles
            rep.energy_joules += frame_report.energy_joules
            if cross:
                rep.cross_replays += 1
            if item.mode == WORK_REPLAY:
                rep.replays += 1
            elif item.mode == WORK_PROBE:
                rep.probes += 1
            else:
                rep.reuses += 1
            deadline = client.deadlines[k]
            if deadline is not None and clock > deadline:
                rep.deadline_misses += 1
            next_frame[client.id] = k + 1

        return ServeReport(
            policy=policy.name,
            clock_hz=self.accelerator.config.clock_hz,
            clients=[reports[c.id] for c in self._clients],
            schedule=schedule,
            makespan_cycles=clock,
            back_to_back_cycles=self.back_to_back_cycles(),
        )
