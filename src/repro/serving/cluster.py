"""ClusterServer: tenants sharded across a simulated accelerator fleet.

One :class:`~repro.serving.server.SequenceServer` tops out at one
accelerator's event loop; the "millions of users" step is horizontal — N
accelerators, each running the existing single-box loop *unchanged*, with
a routing layer deciding which tenants land together.  That placement is
not load balancing trivia: the serving layer's two strongest sharing
levers — cross-client content replay and the temporal vertex cache — only
fire between tenants on the *same* shard, so a router that splits twin
clients across boxes pays the full render twice while one that co-locates
them delivers the second stream at scan-out cost.

:class:`ClusterServer` models exactly the placement problems that move
aggregate cycles:

* **Content-affinity routing** (:data:`ROUTER_AFFINITY`) — a request
  whose :meth:`~repro.serving.request.ClientRequest.content_key` matches
  a tenant already placed lands on that tenant's shard; failing that, a
  request probing bit-identical keyframe poses (same scene/backend, an
  overlapping pose key) follows the overlap; only genuinely novel content
  falls through to least-loaded.  Compare against
  :data:`ROUTER_RANDOM` / :data:`ROUTER_ROUND_ROBIN` to price what
  placement is worth.
* **Tenant migration with temporal-cache hand-off** — a
  :class:`Migration` moves a tenant's remaining frames to another shard
  mid-sequence.  With ``handoff=True`` the source shard's partition
  state travels (:meth:`~repro.exec.scheduler.TemporalCachePartitions.
  export_state` → :meth:`~repro.exec.scheduler.TemporalCachePartitions.
  admit` seeding), so the first post-migration frame keeps its temporal
  hits; ``handoff=False`` models a cold restart, and the cycle delta
  between the two *is* the value of moving cache state.
* **Elastic scale-out** — spare accelerators join the fleet when the
  router would push a shard's queued fresh work past a threshold
  (admission-time scaling, the knob a capacity planner sweeps).

The fleet is optionally **heterogeneous**: pass any mix of accelerator
design points (an edge box next to a server box); routing normalises
load by each shard's clock, and cross-shard latency percentiles convert
cycles to milliseconds per shard before merging.

Verifiability is inherited, not re-argued: everything below one shard is
already conservation-pinned, so the cluster only adds two invariants —
fleet totals are sums of shard totals, and a 1-shard cluster is
bit-identical to calling :meth:`SequenceServer.serve` directly (the
routing layer degenerates to a pass-through).  Both are pinned in
``tests/test_cluster.py``.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.arch.accelerator import ASDRAccelerator
from repro.errors import ConfigurationError
from repro.exec.sequence import SequenceRender, SequenceTrace, pose_key
from repro.obs.events import EV_MIGRATION, EV_ROUTE, EV_SCALE_OUT
from repro.obs.recorder import NULL_RECORDER, Recorder, ScopedRecorder
from repro.serving.policies import SchedulingPolicy
from repro.serving.report import ServeReport, jain_fairness
from repro.serving.request import ClientRequest
from repro.serving.server import SequenceServer
from repro.serving.slo import SLOConfig

#: Router policy names (the ``--router`` choices).
ROUTER_AFFINITY = "affinity"
ROUTER_LEAST_LOADED = "least_loaded"
ROUTER_ROUND_ROBIN = "round_robin"
ROUTER_RANDOM = "random"
ROUTER_NAMES = (
    ROUTER_AFFINITY,
    ROUTER_LEAST_LOADED,
    ROUTER_ROUND_ROBIN,
    ROUTER_RANDOM,
)


@dataclass(frozen=True)
class Migration:
    """Move one tenant's remaining frames to another shard mid-sequence.

    Attributes:
        client_id: The tenant to move.
        after_frame: First frame served on the destination (the source
            delivers frames ``[start, after_frame)``).
        to_shard: Destination shard name.
        handoff: Carry the tenant's temporal-cache partition state to the
            destination (``True``) or restart cold (``False``).
    """

    client_id: str
    after_frame: int
    to_shard: str
    handoff: bool = True


@dataclass(frozen=True)
class ShardUtilisation:
    """One shard's occupancy summary inside a :class:`ClusterReport`."""

    name: str
    clients: int
    frames: int
    busy_cycles: int
    makespan_cycles: int
    clock_hz: float

    @property
    def utilisation(self) -> float:
        """Busy fraction of the shard's serving makespan (0 when idle)."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.busy_cycles / self.makespan_cycles


@dataclass
class ClusterReport:
    """Outcome of one fleet-wide serving run.

    Nests the per-shard :class:`~repro.serving.report.ServeReport`\\ s —
    every single-box metric stays inspectable — and adds the fleet view:
    per-shard utilisation, Jain fairness over *merged* client slowdowns
    (a migrated tenant's slowdown spans both its shards), cross-shard
    latency percentiles in milliseconds (heterogeneous clocks make raw
    cycles incomparable) and the migration/scale-out history.
    """

    router: str
    policy: str
    shard_names: List[str]
    shards: List[ServeReport]
    placements: Dict[str, str]
    migrations: List[Dict]
    scale_out_events: List[Dict]

    # ------------------------------------------------------------------
    # Fleet aggregates
    # ------------------------------------------------------------------
    @property
    def utilisations(self) -> List[ShardUtilisation]:
        return [
            ShardUtilisation(
                name=name,
                clients=len(shard.clients),
                frames=shard.total_frames,
                busy_cycles=shard.busy_cycles,
                makespan_cycles=shard.makespan_cycles,
                clock_hz=shard.clock_hz,
            )
            for name, shard in zip(self.shard_names, self.shards)
        ]

    @property
    def total_busy_cycles(self) -> int:
        """Fleet aggregate cycles — the sum of every shard's busy cycles
        (the router-comparison currency: placement that keeps sharing
        levers firing makes this smaller for the same delivered frames)."""
        return sum(s.busy_cycles for s in self.shards)

    @property
    def total_frames(self) -> int:
        return sum(s.total_frames for s in self.shards)

    @property
    def makespan_seconds(self) -> float:
        """Wall-clock end of the fleet run: the slowest shard's makespan
        in seconds (shards run concurrently on independent clocks)."""
        return max(
            (s.makespan_cycles / s.clock_hz for s in self.shards),
            default=0.0,
        )

    def client_slowdowns(self) -> Dict[str, float]:
        """Per-tenant slowdown merged across shards.

        A migrated tenant has partial reports on two shards; its fleet
        slowdown is total served time over total alone-reference time,
        both in seconds so heterogeneous shard clocks compare.
        """
        served: Dict[str, float] = {}
        alone: Dict[str, float] = {}
        for shard in self.shards:
            for c in shard.clients:
                served[c.client_id] = served.get(c.client_id, 0.0) + (
                    c.makespan_cycles / shard.clock_hz
                )
                alone[c.client_id] = alone.get(c.client_id, 0.0) + (
                    c.alone_cycles / shard.clock_hz
                )
        return {
            cid: served[cid] / alone[cid] if alone[cid] else 1.0
            for cid in served
        }

    @property
    def fairness(self) -> float:
        """Jain's index over merged per-tenant slowdowns."""
        return jain_fairness(list(self.client_slowdowns().values()))

    @property
    def slo_attainment(self) -> Dict[str, float]:
        """Fleet-wide per-class SLO attainment.

        Attained and expected frame counts merge across shards before the
        ratio is taken (a migrated tenant's head and tail both count), so
        the fleet number is frame-weighted, not a mean of shard ratios.
        """
        attained: Dict[str, int] = {}
        expected: Dict[str, int] = {}
        for shard in self.shards:
            for c in shard.clients:
                attained[c.slo_class] = (
                    attained.get(c.slo_class, 0) + c.slo_attained_frames
                )
                expected[c.slo_class] = (
                    expected.get(c.slo_class, 0) + c.slo_expected_frames
                )
        return {
            cls: (attained[cls] / expected[cls]) if expected[cls] else 1.0
            for cls in sorted(expected)
        }

    def latency_percentile_ms(self, q: float) -> float:
        """Cross-shard latency percentile in milliseconds (per-shard
        cycles convert at that shard's clock before merging)."""
        lats_ms: List[float] = []
        for shard in self.shards:
            ms = 1e3 / shard.clock_hz
            for c in shard.clients:
                lats_ms.extend(lat * ms for lat in c.latencies_cycles)
        if not lats_ms:
            return 0.0
        return float(np.percentile(np.asarray(lats_ms), q))

    @property
    def num_migrations(self) -> int:
        return len(self.migrations)

    # ------------------------------------------------------------------
    def shard(self, name: str) -> ServeReport:
        try:
            return self.shards[self.shard_names.index(name)]
        except ValueError:
            raise KeyError(name) from None

    def to_rows(self) -> List[Dict[str, object]]:
        """Table rows: one per shard plus a fleet aggregate row."""
        rows: List[Dict[str, object]] = []
        for u in self.utilisations:
            rows.append(
                {
                    "shard": u.name,
                    "clients": str(u.clients),
                    "frames": str(u.frames),
                    "busy_kc": u.busy_cycles / 1e3,
                    "makespan_kc": u.makespan_cycles / 1e3,
                    "util": f"{u.utilisation:.2f}",
                    "p50_ms": "",
                    "p95_ms": "",
                    "fairness": "",
                }
            )
        rows.append(
            {
                "shard": "(fleet)",
                "clients": str(len(self.placements)),
                "frames": str(self.total_frames),
                "busy_kc": self.total_busy_cycles / 1e3,
                "makespan_kc": self.makespan_seconds * 1e3,
                "util": f"{self.num_migrations}mig",
                "p50_ms": f"{self.latency_percentile_ms(50):.3f}",
                "p95_ms": f"{self.latency_percentile_ms(95):.3f}",
                "fairness": f"{self.fairness:.3f}",
            }
        )
        return rows

    def to_dict(self) -> Dict:
        """JSON-style form (used by the determinism test)."""
        return {
            "router": self.router,
            "policy": self.policy,
            "shard_names": list(self.shard_names),
            "placements": dict(self.placements),
            "migrations": [dict(m) for m in self.migrations],
            "scale_out_events": [dict(e) for e in self.scale_out_events],
            "total_busy_cycles": int(self.total_busy_cycles),
            "total_frames": int(self.total_frames),
            "fairness": self.fairness,
            "slo_attainment": self.slo_attainment,
            "p50_ms": self.latency_percentile_ms(50),
            "p95_ms": self.latency_percentile_ms(95),
            "shards": [s.to_dict() for s in self.shards],
        }


def cluster_bench_summary(reports: Dict[str, "ClusterReport"]) -> Dict:
    """Machine-readable cluster summary (``BENCH_cluster.json`` shape).

    One entry per router with the headline fleet numbers the CI smoke
    job schema-validates: aggregate busy cycles, per-shard utilisation,
    fairness, cross-shard latency percentiles and migration counts.
    """
    out: Dict = {"schema": "cluster_bench/v1", "routers": {}}
    for name, report in reports.items():
        out["routers"][name] = {
            "router": report.router,
            "policy": report.policy,
            "shards": len(report.shards),
            "total_busy_cycles": int(report.total_busy_cycles),
            "total_frames": int(report.total_frames),
            "makespan_seconds": report.makespan_seconds,
            "fairness": report.fairness,
            "slo_attainment": report.slo_attainment,
            "p50_ms": report.latency_percentile_ms(50),
            "p95_ms": report.latency_percentile_ms(95),
            "migrations": report.num_migrations,
            "scale_out_events": len(report.scale_out_events),
            "utilisation": {
                u.name: {
                    "clients": u.clients,
                    "frames": u.frames,
                    "busy_cycles": int(u.busy_cycles),
                    "utilisation": u.utilisation,
                }
                for u in report.utilisations
            },
        }
    return out


class ClusterServer:
    """Routes client requests across a fleet of simulated accelerators.

    Each shard wraps one :class:`~repro.serving.server.SequenceServer`
    (the single-box event loop, unchanged); this class only decides
    *placement* — which tenants share a box — plus migrations and elastic
    scale-out.  With one shard it is a pass-through: routing has a single
    choice and the shard report is bit-identical to serving directly.

    Args:
        accelerators: One design point per initial shard (heterogeneous
            mixes welcome — an edge box next to a server box).
        names: Shard names (default ``shard0``, ``shard1``, …).
        router: One of :data:`ROUTER_NAMES`.  ``affinity`` co-locates
            matching/overlapping content, ``least_loaded`` balances
            estimated work, ``round_robin`` cycles submissions,
            ``random`` hashes the client id (the placement-blind
            baseline).
        group_size / temporal_capacity / shared_content /
        context_switch_cycles / twin_defer_limit / slo: Forwarded to
            every shard's :class:`~repro.serving.server.SequenceServer`
            (the SLO/overload config applies per shard — each box guards
            its own backlog, exactly as a fleet of independent admission
            controllers would).
        spare_accelerators: Reserve design points that join the fleet on
            demand (elastic scale-out).
        scale_out_threshold: Estimated density-MLP points of queued fresh
            work on the routed shard above which a spare is activated
            *instead* (``None`` disables scale-out).
        recorder: Optional :class:`~repro.obs.recorder.Recorder` for the
            fleet's telemetry stream.  Routing/scale-out/migration events
            are emitted at the cluster layer; every shard's serving loop
            emits through a per-shard scoped view (``shard=<name>``).
            Observer-only: reports are bit-identical with or without it.

    Example lifecycle::

        cluster = ClusterServer([edge, edge, server], router="affinity")
        for request in requests:
            cluster.submit(request, wb.client_sequence(request))
        report = cluster.serve("round_robin_preemptive")
    """

    def __init__(
        self,
        accelerators: Sequence[ASDRAccelerator],
        *,
        names: Optional[Sequence[str]] = None,
        router: str = ROUTER_AFFINITY,
        group_size: int = 1,
        temporal_capacity: Optional[int] = None,
        shared_content: bool = True,
        context_switch_cycles: int = 0,
        twin_defer_limit: int = 256,
        spare_accelerators: Sequence[ASDRAccelerator] = (),
        scale_out_threshold: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        slo: Optional[SLOConfig] = None,
    ) -> None:
        accelerators = list(accelerators)
        if not accelerators:
            raise ConfigurationError("a cluster needs at least one shard")
        if router not in ROUTER_NAMES:
            raise ConfigurationError(
                f"unknown router {router!r}; choose from {ROUTER_NAMES}"
            )
        if scale_out_threshold is not None and scale_out_threshold <= 0:
            raise ConfigurationError("scale_out_threshold must be positive")
        self.router = router
        #: Fleet-level telemetry sink (see :mod:`repro.obs`).  Routing,
        #: scale-out and migration events are emitted here directly;
        #: each shard's serving loop gets a
        #: :class:`~repro.obs.recorder.ScopedRecorder` view tagging its
        #: events with ``shard=<name>``.  Observer-only by contract.
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self._rec = self.recorder if self.recorder.enabled else None
        self._server_kwargs = dict(
            group_size=group_size,
            temporal_capacity=temporal_capacity,
            shared_content=shared_content,
            context_switch_cycles=context_switch_cycles,
            twin_defer_limit=twin_defer_limit,
            slo=slo,
        )
        self.shared_content = shared_content
        self._spares = list(spare_accelerators)
        self.scale_out_threshold = scale_out_threshold
        self._shards: List[SequenceServer] = []
        self._names: List[str] = []
        names = list(names) if names is not None else []
        if names and len(names) != len(accelerators):
            raise ConfigurationError(
                f"{len(names)} names for {len(accelerators)} accelerators"
            )
        for i, accel in enumerate(accelerators):
            self._add_shard(accel, names[i] if names else None)
        #: client id -> shard index (submission placement).
        self._placements: Dict[str, int] = {}
        self._requests: Dict[str, ClientRequest] = {}
        self._traces: Dict[str, SequenceTrace] = {}
        #: Estimated density-MLP points of fresh work queued per shard.
        self._load_points: List[int] = [0] * len(self._shards)
        #: content_key -> shard index of the first tenant carrying it.
        self._content_index: Dict[Tuple, int] = {}
        #: keyframe pose id -> shard index (pose-overlap affinity).
        self._pose_index: Dict[Tuple, int] = {}
        self._rr_next = 0
        self.scale_out_events: List[Dict] = []

    def _add_shard(
        self, accelerator: ASDRAccelerator, name: Optional[str] = None
    ) -> int:
        if name is None:
            name = f"shard{len(self._shards)}"
        if name in self._names:
            raise ConfigurationError(f"duplicate shard name {name!r}")
        self._shards.append(
            SequenceServer(
                accelerator,
                recorder=(
                    None
                    if self._rec is None
                    else ScopedRecorder(self._rec, shard=name)
                ),
                **self._server_kwargs,
            )
        )
        self._names.append(name)
        return len(self._shards) - 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shard_names(self) -> List[str]:
        return list(self._names)

    def shard(self, name: str) -> SequenceServer:
        try:
            return self._shards[self._names.index(name)]
        except ValueError:
            raise ConfigurationError(f"unknown shard {name!r}") from None

    def placement_of(self, client_id: str) -> str:
        try:
            return self._names[self._placements[client_id]]
        except KeyError:
            raise ConfigurationError(
                f"unknown client {client_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _fresh_points(trace: SequenceTrace) -> int:
        """Estimated fresh work of a sequence, in density-MLP points."""
        return sum(
            trace.frames[k].density_points
            for k in range(trace.num_frames)
            if trace.replays[k] is None
        )

    def _keyframe_pose_ids(
        self, request: ClientRequest, trace: SequenceTrace
    ) -> List[Tuple]:
        """Pose-level content ids of the sequence's Phase I keyframes —
        the same identities the shard scheduler replays across clients,
        so pose-overlap affinity co-locates exactly the tenants whose
        keyframes can cross-replay."""
        cameras = request.path.cameras()
        ids = []
        for k in range(trace.num_frames):
            if trace.replays[k] is None and trace.planned[k]:
                ids.append(
                    (
                        "pose",
                        request.scene,
                        request.tensorf,
                        pose_key(cameras[k]),
                    )
                )
        return ids

    def _least_loaded(self) -> int:
        """Shard with the least queued work, normalised by clock speed
        (a faster box drains the same points sooner); ties break on
        index, keeping routing deterministic."""
        return min(
            range(len(self._shards)),
            key=lambda i: (
                self._load_points[i]
                / self._shards[i].accelerator.config.clock_hz,
                i,
            ),
        )

    def _route(
        self, request: ClientRequest, trace: SequenceTrace
    ) -> Tuple[int, str]:
        """Pick a shard for one request; returns ``(index, reason)``."""
        if self.router == ROUTER_ROUND_ROBIN:
            idx = self._rr_next % len(self._shards)
            self._rr_next += 1
            return idx, "round_robin"
        if self.router == ROUTER_RANDOM:
            # Salted-hash-free: crc32 keeps placement stable across runs
            # and processes (Python's `hash` is deliberately not).
            digest = zlib.crc32(request.client_id.encode("utf-8"))
            return digest % len(self._shards), "random"
        if self.router == ROUTER_AFFINITY and self.shared_content:
            shard = self._content_index.get(request.content_key())
            if shard is not None:
                return shard, "content_affinity"
            for pid in self._keyframe_pose_ids(request, trace):
                shard = self._pose_index.get(pid)
                if shard is not None:
                    return shard, "pose_affinity"
        return self._least_loaded(), "least_loaded"

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: ClientRequest,
        sequence: Union[SequenceRender, SequenceTrace],
    ) -> str:
        """Admit one client: route it to a shard and submit it there.

        Returns the chosen shard's name.  Routing happens at admission —
        the placement is recorded and visible via :meth:`placement_of`
        before :meth:`serve` runs, exactly like a front-end dispatcher.

        Raises:
            AdmissionError: When the fleet runs with an
                :class:`~repro.serving.slo.SLOConfig` admission cap and
                the routed shard's projected backlog would exceed it.
                The request was routed (an ``admission_reject`` event is
                on the stream) but no placement is recorded — the caller
                may retry later or against a bigger fleet.
        """
        trace = getattr(sequence, "trace", sequence)
        if not isinstance(trace, SequenceTrace):
            raise ConfigurationError(
                "submit needs a SequenceRender or SequenceTrace, got "
                f"{type(sequence).__name__}"
            )
        if request.client_id in self._placements:
            raise ConfigurationError(
                f"duplicate client id {request.client_id!r}"
            )
        idx, reason = self._route(request, trace)
        fresh = self._fresh_points(trace)
        # Affinity matches ride existing content: the second copy
        # delivers at scan-out cost, so it adds (approximately) no fresh
        # work to the shard's queue.
        marginal = 0 if reason in ("content_affinity",) else fresh
        if (
            self.scale_out_threshold is not None
            and self._spares
            and reason in ("least_loaded", "round_robin", "random")
            and self._load_points[idx] + marginal > self.scale_out_threshold
        ):
            accel = self._spares.pop(0)
            idx = self._add_shard(accel)
            self._load_points.append(0)
            reason = "scale_out"
            self.scale_out_events.append(
                {
                    "client": request.client_id,
                    "shard": self._names[idx],
                    "trigger_points": int(marginal),
                }
            )
            if self._rec is not None:
                self._rec.emit(
                    EV_SCALE_OUT,
                    0,
                    client=request.client_id,
                    shard=self._names[idx],
                    trigger_points=int(marginal),
                    fleet_size=len(self._shards),
                )
        if self._rec is not None:
            # Routing happens at admission time, before any shard's
            # virtual clock starts — cluster events carry clock 0.
            self._rec.emit(
                EV_ROUTE,
                0,
                client=request.client_id,
                shard=self._names[idx],
                reason=reason,
            )
        self._shards[idx].submit(request, trace)
        self._placements[request.client_id] = idx
        self._requests[request.client_id] = request
        self._traces[request.client_id] = trace
        self._load_points[idx] += marginal
        self._content_index.setdefault(request.content_key(), idx)
        for pid in self._keyframe_pose_ids(request, trace):
            self._pose_index.setdefault(pid, idx)
        return self._names[idx]

    @property
    def num_clients(self) -> int:
        return len(self._placements)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _migration_order(
        self, migrations: Sequence[Migration]
    ) -> List[int]:
        """Topological shard order over migration edges (source before
        destination — the hand-off needs the source's final cache state).

        Raises:
            ConfigurationError: When migrations form a cycle between
                shards (A hands to B while B hands to A cannot be
                sequenced on virtual clocks).
        """
        edges: Dict[int, Set[int]] = {i: set() for i in range(len(self._shards))}
        for m in migrations:
            src = self._placements[m.client_id]
            dst = self._names.index(m.to_shard)
            if dst != src:
                edges[src].add(dst)
        order: List[int] = []
        state: Dict[int, int] = {}  # 0=unvisited 1=visiting 2=done

        def visit(i: int) -> None:
            if state.get(i) == 2:
                return
            if state.get(i) == 1:
                raise ConfigurationError(
                    "migrations form a cycle between shards; hand-offs "
                    "must be sequenceable (source serves before "
                    "destination)"
                )
            state[i] = 1
            for j in edges[i]:
                visit(j)
            state[i] = 2
            order.append(i)

        for i in range(len(self._shards)):
            visit(i)
        order.reverse()
        return order

    def _convert_cycles(
        self, cycles: int, src: SequenceServer, dst: SequenceServer
    ) -> int:
        """Re-express a source-shard cycle count on the destination's
        clock (ceil — the tenant cannot arrive early); exact for a
        homogeneous fleet."""
        src_hz = src.accelerator.config.clock_hz
        dst_hz = dst.accelerator.config.clock_hz
        if src_hz == dst_hz:
            return cycles
        return int(math.ceil(cycles * dst_hz / src_hz))

    def serve(
        self,
        policy: Union[str, SchedulingPolicy] = "round_robin",
        migrations: Sequence[Migration] = (),
    ) -> ClusterReport:
        """Serve every admitted client fleet-wide under ``policy``.

        Shards run their event loops independently (they share no
        hardware); ``migrations`` sequence them — each migration's source
        shard serves before its destination so the tenant's completion
        time and (with ``handoff=True``) exported temporal-cache state
        can cross.  The migrated tail arrives on the destination at the
        cycle its head completed (converted between shard clocks), and
        the run is **re-entrant**: migrated tails are withdrawn and
        truncations undone after the report is built, so the same
        cluster can serve under several policies or migration plans.

        Returns:
            A :class:`ClusterReport` nesting every shard's
            :class:`~repro.serving.report.ServeReport`.
        """
        if not self._placements:
            raise ConfigurationError("no clients submitted")
        migrations = list(migrations)
        seen: Set[str] = set()
        for m in migrations:
            if m.client_id not in self._placements:
                raise ConfigurationError(
                    f"migration of unknown client {m.client_id!r}"
                )
            if m.client_id in seen:
                raise ConfigurationError(
                    f"client {m.client_id!r} migrates more than once"
                )
            seen.add(m.client_id)
            if m.to_shard not in self._names:
                raise ConfigurationError(
                    f"migration to unknown shard {m.to_shard!r}"
                )
            src = self._placements[m.client_id]
            if self._names.index(m.to_shard) == src:
                raise ConfigurationError(
                    f"client {m.client_id!r} already lives on {m.to_shard!r}"
                )
            frames = self._traces[m.client_id].num_frames
            if not 0 < m.after_frame < frames:
                raise ConfigurationError(
                    f"after_frame {m.after_frame} outside (0, {frames}) "
                    f"for client {m.client_id!r}"
                )

        by_source: Dict[int, List[Migration]] = {}
        for m in migrations:
            by_source.setdefault(self._placements[m.client_id], []).append(m)
        # Truncate every migrating tenant's source copy before any shard
        # runs, so source reports only count head-window frames.
        for m in migrations:
            src = self._shards[self._placements[m.client_id]]
            src.truncate_client(m.client_id, m.after_frame)

        order = self._migration_order(migrations)
        reports: Dict[int, ServeReport] = {}
        migration_records: List[Dict] = []
        migrated_tails: List[Tuple[int, str]] = []
        try:
            for idx in order:
                shard = self._shards[idx]
                if shard.num_clients == 0:
                    reports[idx] = ServeReport(
                        policy=policy if isinstance(policy, str) else policy.name,
                        clock_hz=shard.accelerator.config.clock_hz,
                    )
                    continue
                reports[idx] = shard.serve(policy)
                for m in by_source.get(idx, ()):
                    dst_idx = self._names.index(m.to_shard)
                    dst = self._shards[dst_idx]
                    request = self._requests[m.client_id]
                    head = reports[idx].client(m.client_id)
                    done_cycle = (
                        request.arrival_cycle + head.makespan_cycles
                    )
                    arrival = self._convert_cycles(done_cycle, shard, dst)
                    departure = request.departure_cycle
                    if departure is not None:
                        departure = max(
                            arrival + 1,
                            self._convert_cycles(departure, shard, dst),
                        )
                    seed = None
                    if m.handoff:
                        cache = shard.last_run_caches.get(m.client_id)
                        if cache is not None:
                            seed = cache.export_state()
                    dst.submit(
                        replace(
                            request,
                            arrival_cycle=arrival,
                            departure_cycle=departure,
                        ),
                        self._traces[m.client_id],
                        start_frame=m.after_frame,
                        cache_seed=seed,
                    )
                    migrated_tails.append((dst_idx, m.client_id))
                    migration_records.append(
                        {
                            "client": m.client_id,
                            "from": self._names[idx],
                            "to": m.to_shard,
                            "after_frame": m.after_frame,
                            "handoff": bool(m.handoff and seed is not None),
                            "tail_arrival_cycle": int(arrival),
                        }
                    )
                    if self._rec is not None:
                        self._rec.emit(
                            EV_MIGRATION,
                            int(arrival),
                            client=m.client_id,
                            src=self._names[idx],
                            dst=m.to_shard,
                            after_frame=m.after_frame,
                            handoff=bool(m.handoff and seed is not None),
                        )
            report = ClusterReport(
                router=self.router,
                policy=next(iter(reports.values())).policy
                if reports
                else (policy if isinstance(policy, str) else policy.name),
                shard_names=list(self._names),
                shards=[reports[i] for i in range(len(self._shards))],
                placements={
                    cid: self._names[idx]
                    for cid, idx in self._placements.items()
                },
                migrations=migration_records,
                scale_out_events=[dict(e) for e in self.scale_out_events],
            )
        finally:
            # Re-entrancy: withdraw migrated tails and undo truncations,
            # restoring the admitted state for the next serve() call.
            for dst_idx, cid in migrated_tails:
                self._shards[dst_idx].release(cid)
            for m in migrations:
                src = self._shards[self._placements[m.client_id]]
                src.truncate_client(m.client_id, None)
        return report
