"""Scheduling policies for the multi-tenant sequence server.

A policy picks, at every scheduling decision, which client's *next frame*
gets the accelerator.  The candidate set contains one
:class:`PendingFrame` per ready client (a client's frames execute in path
order — the temporal vertex cache and sampling-plan reuse both depend on
it), and the policy returns an index into that list.

Policies come in two families:

* **Non-preemptive** (``preemptive = False``): a selected frame runs to
  completion before the next decision.  :class:`FIFOPolicy` serves
  requests to completion in arrival order (= back-to-back with
  simultaneous arrivals, the fairness baseline);
  :class:`RoundRobinPolicy` is least-served-first fair share over
  delivered frames; :class:`DeadlineAwarePolicy` is earliest-slack-first
  against per-frame deadlines.
* **Preemptive** (``preemptive = True``): a selected frame runs for at
  most ``quantum`` wavefront steps, then the decision is re-taken — the
  in-flight frame can be suspended (its
  :class:`~repro.exec.execution.FrameExecution` cursor keeps its engine
  state) while another client's wavefronts run.
  :class:`PreemptiveRoundRobinPolicy` equalises *service cycles* rather
  than frame counts — the natural fair share once frames stop being
  atomic; :class:`PreemptiveDeadlinePolicy` re-evaluates slack every
  quantum against the *remaining* cost estimate, so an expensive Phase I
  probe no longer blocks a cheap replay frame for its whole duration:
  the replay slots in at the next quantum boundary, which is exactly the
  p95 win ``benchmarks/test_preemptive_serving.py`` pins.

Every earliest-slack-first variant breaks slack ties deterministically by
client id (stable lexicographic order), so two frames with identical
slack always schedule in the same order regardless of submission history.

Policies are engine-agnostic: a quantum of ``N`` wavefront steps costs
the same cycles whether the execution cursor steps slice-by-slice or
replays a precomputed :class:`~repro.exec.batch.FramePlan` (the batched
engine is bit-identical by contract — see
``docs/architecture.md#the-batched-wavefront-engine``), so scheduling
decisions, preemption points and fairness metrics are unchanged by the
10x engine speedup.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.exec.scheduler import FrameWorkItem
from repro.serving.slo import AUTO_QUANTUM, DEFAULT_SLO_CLASS, weighted_slack

#: Non-preemptive policy names (frames are atomic).
POLICY_NAMES = ("fifo", "round_robin", "deadline")

#: Quantum-based preemptive policy names (wavefront-granularity).
PREEMPTIVE_POLICY_NAMES = ("round_robin_preemptive", "deadline_preemptive")

#: Every policy name accepted by :func:`make_policy` (and ``repro serve``).
ALL_POLICY_NAMES = POLICY_NAMES + PREEMPTIVE_POLICY_NAMES

#: Policies with a slack computation (accept ``best_effort_slack``).
DEADLINE_POLICY_NAMES = ("deadline", "deadline_preemptive")

#: Default preemption quantum, in wavefront steps.  Small enough that a
#: cheap frame waits at most a few wavefronts behind an expensive probe,
#: large enough that scheduling decisions stay rare next to real work.
DEFAULT_QUANTUM = 4


def _validate_quantum(quantum: Union[int, str]) -> Union[int, str]:
    """A preemption quantum is a positive step count or ``"auto"``."""
    if quantum == AUTO_QUANTUM:
        return quantum
    if not isinstance(quantum, int) or quantum < 1:
        raise ConfigurationError(
            f"quantum must be >= 1 wavefront step or {AUTO_QUANTUM!r}"
        )
    return quantum


@dataclass(frozen=True)
class PendingFrame:
    """One ready client's next frame, as the policies see it.

    Attributes:
        item: The frame work item (mode + cost hint + runtime state).
        order: Submission order of the client (a deterministic tie-break).
        arrival_cycle: When the client's request arrived.
        completed: Frames already delivered to this client.
        total_frames: Frames in the client's sequence.
        est_cycles: Server-calibrated estimate of the cycles this frame
            still needs (scan-out cost for replays/content hits; the
            learned cycles-per-point model otherwise — for an in-flight
            frame this is the *remaining* work, not the full frame).
        deadline_cycle: Cycle this frame is due (``None`` = best effort).
        started: True when the frame is in flight (suspended mid-frame).
        client_service_cycles: Accelerator cycles the client has received
            so far, delivered and in-flight — what preemptive fair share
            equalises.
        slo_class: The owning request's service class; the deadline
            policies weight slack by it (see
            :func:`~repro.serving.slo.weighted_slack`) and the server
            sheds ``batch``-class frames first under overload.
    """

    item: FrameWorkItem
    order: int
    arrival_cycle: int
    completed: int
    total_frames: int
    est_cycles: float
    deadline_cycle: Optional[float] = None
    started: bool = False
    client_service_cycles: int = 0
    slo_class: str = DEFAULT_SLO_CLASS


class SchedulingPolicy(ABC):
    """Picks the next frame to run from the ready clients' head frames.

    Attributes:
        preemptive: When True the server runs the selected frame for at
            most :attr:`quantum` wavefront steps before the next
            decision; when False the frame runs to completion.
        quantum: Preemption quantum in wavefront steps (ignored for
            non-preemptive policies), or the string ``"auto"`` to let the
            server size each quantum from the measured cycles-per-step
            distribution (:class:`~repro.serving.slo.QuantumAutoTuner`).
    """

    name: str = "abstract"
    preemptive: bool = False
    quantum: Optional[Union[int, str]] = None

    @abstractmethod
    def select(self, pending: Sequence[PendingFrame], clock: int) -> int:
        """Index (into ``pending``) of the frame to execute next.

        Args:
            pending: One entry per ready client, in submission order.
            clock: Current accelerator cycle.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FIFOPolicy(SchedulingPolicy):
    """Arrival order, each request served to completion (back-to-back)."""

    name = "fifo"

    def select(self, pending: Sequence[PendingFrame], clock: int) -> int:
        return min(
            range(len(pending)),
            key=lambda i: (pending[i].arrival_cycle, pending[i].order),
        )


class RoundRobinPolicy(SchedulingPolicy):
    """Least-served-first fair share over delivered frames."""

    name = "round_robin"

    def select(self, pending: Sequence[PendingFrame], clock: int) -> int:
        return min(
            range(len(pending)),
            key=lambda i: (
                pending[i].completed,
                pending[i].arrival_cycle,
                pending[i].order,
            ),
        )


class DeadlineAwarePolicy(SchedulingPolicy):
    """Earliest slack first; cheap (replay / plan-reuse) frames wait.

    Slack is ``deadline - clock - est_cycles``, weighted by the frame's
    SLO class (:func:`~repro.serving.slo.weighted_slack` — the default
    ``standard`` class is the identity): a frame that is cheap to
    produce keeps most of its window as slack, so expensive probes with
    the same deadline preempt it, and an ``interactive`` frame outranks a
    ``batch`` frame with the same raw slack.  Frames with no deadline run
    only when every deadlined frame has more slack than
    :attr:`best_effort_slack`.  Equal slacks break deterministically by
    client id.
    """

    name = "deadline"

    def __init__(self, best_effort_slack: float = float("inf")) -> None:
        self.best_effort_slack = best_effort_slack

    def _slack(self, p: PendingFrame, clock: int) -> float:
        if p.deadline_cycle is None:
            return self.best_effort_slack
        return weighted_slack(
            p.deadline_cycle - clock - p.est_cycles, p.slo_class
        )

    def select(self, pending: Sequence[PendingFrame], clock: int) -> int:
        return min(
            range(len(pending)),
            key=lambda i: (self._slack(pending[i], clock), pending[i].item.client),
        )


class PreemptiveRoundRobinPolicy(SchedulingPolicy):
    """Quantum-based fair share over *service cycles*.

    Every decision hands the next quantum to the ready client that has
    received the fewest accelerator cycles so far (delivered plus
    in-flight), so an expensive probe frame advances a few wavefronts at
    a time while cheaper tenants' frames keep flowing between quanta.
    Ties break by delivered frames, then arrival, then client id.
    """

    name = "round_robin_preemptive"
    preemptive = True

    def __init__(self, quantum: Union[int, str] = DEFAULT_QUANTUM) -> None:
        self.quantum = _validate_quantum(quantum)

    def select(self, pending: Sequence[PendingFrame], clock: int) -> int:
        return min(
            range(len(pending)),
            key=lambda i: (
                pending[i].client_service_cycles,
                pending[i].completed,
                pending[i].arrival_cycle,
                pending[i].item.client,
            ),
        )


class PreemptiveDeadlinePolicy(DeadlineAwarePolicy):
    """Earliest-slack-first, re-evaluated every quantum.

    Identical slack arithmetic to :class:`DeadlineAwarePolicy`, but the
    server re-runs the decision after every ``quantum`` wavefront steps
    with ``est_cycles`` tracking the in-flight frame's *remaining* work:
    a frame whose deadline approaches rises to the front mid-way through
    another client's expensive frame instead of queueing behind it.
    Equal slacks break deterministically by client id.
    """

    name = "deadline_preemptive"
    preemptive = True

    def __init__(
        self,
        quantum: Union[int, str] = DEFAULT_QUANTUM,
        best_effort_slack: float = float("inf"),
    ) -> None:
        super().__init__(best_effort_slack=best_effort_slack)
        self.quantum = _validate_quantum(quantum)


def make_policy(
    name: str,
    quantum: Optional[Union[int, str]] = None,
    best_effort_slack: Optional[float] = None,
) -> SchedulingPolicy:
    """Build a policy by name (one of :data:`ALL_POLICY_NAMES`).

    Args:
        name: Policy name.
        quantum: Preemption quantum in wavefront steps for the preemptive
            policies (``None`` = :data:`DEFAULT_QUANTUM`), or ``"auto"``
            for measured-latency sizing; rejected for non-preemptive
            policies, whose frames are atomic.
        best_effort_slack: Slack assigned to deadline-less frames by the
            deadline-aware policies (``None`` keeps the default of
            ``inf``, i.e. best-effort frames always yield to deadlined
            ones); rejected for the other policies, which never look at
            slack.
    """
    factories = {
        "fifo": FIFOPolicy,
        "round_robin": RoundRobinPolicy,
        "deadline": DeadlineAwarePolicy,
        "round_robin_preemptive": PreemptiveRoundRobinPolicy,
        "deadline_preemptive": PreemptiveDeadlinePolicy,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduling policy {name!r}; choose from {ALL_POLICY_NAMES}"
        ) from None
    kwargs = {}
    if quantum is not None:
        if name not in PREEMPTIVE_POLICY_NAMES:
            raise ConfigurationError(
                f"policy {name!r} is non-preemptive; quantum does not apply"
            )
        kwargs["quantum"] = quantum
    if best_effort_slack is not None:
        if name not in DEADLINE_POLICY_NAMES:
            raise ConfigurationError(
                f"policy {name!r} has no slack computation; "
                "best_effort_slack does not apply"
            )
        kwargs["best_effort_slack"] = best_effort_slack
    return factory(**kwargs)
