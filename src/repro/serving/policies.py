"""Scheduling policies for the multi-tenant sequence server.

A policy picks, at every step, which client's *next frame* runs on the
accelerator.  The candidate set contains one :class:`PendingFrame` per
ready client (a client's frames execute in path order — the temporal
vertex cache and sampling-plan reuse both depend on it), and the policy
returns an index into that list.

Three policies ship:

* :class:`FIFOPolicy` — serve requests to completion in arrival order;
  with simultaneous arrivals this is exactly running the clients
  back-to-back, which makes it the natural fairness baseline.
* :class:`RoundRobinPolicy` — least-served-first fair share: the ready
  client with the fewest delivered frames runs next, so delivered frame
  counts never diverge by more than one among ready clients.
* :class:`DeadlineAwarePolicy` — earliest-slack-first: schedule the frame
  whose deadline is closest *after accounting for its estimated cost*.
  Expensive Phase I probes rise to the front; pose-replay and
  sampling-plan-reuse frames — cheap by construction, a scan-out or a
  probe-less render — carry more slack and are deprioritised, which is
  what lets a quality-aware server absorb an expensive keyframe without
  missing the cheap frames' deadlines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec.scheduler import FrameWorkItem

#: Policy names accepted by :func:`make_policy` (and ``repro serve``).
POLICY_NAMES = ("fifo", "round_robin", "deadline")


@dataclass(frozen=True)
class PendingFrame:
    """One ready client's next frame, as the policies see it.

    Attributes:
        item: The frame work item (mode + cost hint).
        order: Submission order of the client (the final tie-break, which
            keeps every policy deterministic under a fixed arrival order).
        arrival_cycle: When the client's request arrived.
        completed: Frames already delivered to this client.
        total_frames: Frames in the client's sequence.
        est_cycles: Server-calibrated cycle estimate for this frame
            (scan-out cost for replays/content hits; cycles-per-point
            estimate otherwise).
        deadline_cycle: Cycle this frame is due (``None`` = best effort).
    """

    item: FrameWorkItem
    order: int
    arrival_cycle: int
    completed: int
    total_frames: int
    est_cycles: float
    deadline_cycle: Optional[float] = None


class SchedulingPolicy(ABC):
    """Picks the next frame to run from the ready clients' head frames."""

    name: str = "abstract"

    @abstractmethod
    def select(self, pending: Sequence[PendingFrame], clock: int) -> int:
        """Index (into ``pending``) of the frame to execute next.

        Args:
            pending: One entry per ready client, in submission order.
            clock: Current accelerator cycle.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FIFOPolicy(SchedulingPolicy):
    """Arrival order, each request served to completion (back-to-back)."""

    name = "fifo"

    def select(self, pending: Sequence[PendingFrame], clock: int) -> int:
        return min(
            range(len(pending)),
            key=lambda i: (pending[i].arrival_cycle, pending[i].order),
        )


class RoundRobinPolicy(SchedulingPolicy):
    """Least-served-first fair share over delivered frames."""

    name = "round_robin"

    def select(self, pending: Sequence[PendingFrame], clock: int) -> int:
        return min(
            range(len(pending)),
            key=lambda i: (
                pending[i].completed,
                pending[i].arrival_cycle,
                pending[i].order,
            ),
        )


class DeadlineAwarePolicy(SchedulingPolicy):
    """Earliest slack first; cheap (replay / plan-reuse) frames wait.

    Slack is ``deadline - clock - est_cycles``: a frame that is cheap to
    produce keeps most of its window as slack, so expensive probes with
    the same deadline preempt it.  Frames with no deadline run only when
    every deadlined frame has more slack than :attr:`best_effort_slack`.
    """

    name = "deadline"

    def __init__(self, best_effort_slack: float = float("inf")) -> None:
        self.best_effort_slack = best_effort_slack

    def _slack(self, p: PendingFrame, clock: int) -> float:
        if p.deadline_cycle is None:
            return self.best_effort_slack
        return p.deadline_cycle - clock - p.est_cycles

    def select(self, pending: Sequence[PendingFrame], clock: int) -> int:
        return min(
            range(len(pending)),
            key=lambda i: (self._slack(pending[i], clock), pending[i].order),
        )


def make_policy(name: str) -> SchedulingPolicy:
    """Build a policy by name (one of :data:`POLICY_NAMES`)."""
    policies: Tuple[SchedulingPolicy, ...] = (
        FIFOPolicy(),
        RoundRobinPolicy(),
        DeadlineAwarePolicy(),
    )
    for policy in policies:
        if policy.name == name:
            return policy
    raise ConfigurationError(
        f"unknown scheduling policy {name!r}; choose from {POLICY_NAMES}"
    )
