"""Client requests admitted by the multi-tenant sequence server.

A :class:`ClientRequest` is what one tenant asks of the serving layer: a
scene, a camera trajectory (:class:`~repro.scenes.cameras.CameraPath`) and
a quality/latency target.  The quality lever is the sampling-plan cadence
``probe_interval`` (how often Phase I re-probes — the profile-guided
knob); the latency target is an optional per-frame deadline cadence the
deadline-aware policy schedules against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.scenes.cameras import CameraPath
from repro.serving.slo import DEFAULT_SLO_CLASS, SLO_CLASSES


@dataclass(frozen=True)
class ClientRequest:
    """One client's sequence-serving request.

    Attributes:
        client_id: Unique tenant identifier.
        scene: Scene name (see ``python -m repro scenes``).
        path: Camera trajectory to render; its resolution applies.
        probe_interval: Phase I cadence (quality target): ``0`` probes the
            first frame only, ``1`` re-probes every frame (plan reuse
            off), ``n`` re-probes every n-th rendered frame.
        arrival_cycle: Accelerator cycle at which the request arrives
            (``0`` = present at serve start).
        departure_cycle: Optional cycle at which the client walks away
            (tab closed, stream stopped): frames not delivered by then
            are aborted — an in-flight frame is abandoned mid-wavefront
            and the tenant's temporal-cache budget share is redistributed
            to the survivors.  ``None`` = stays until served.
        frame_interval_cycles: Optional per-frame deadline cadence: frame
            ``k`` is due at ``arrival_cycle + (k+1) * interval``.  ``None``
            lets the server derive a proportional-share cadence from the
            request's estimated cost and the number of admitted clients.
        tensorf: Serve from the TensoRF backend instead of Instant-NGP.
        slo_class: Service class (one of
            :data:`~repro.serving.slo.SLO_CLASSES`).  ``interactive``
            tightens derived deadlines and boosts scheduling priority,
            ``batch`` loosens both and volunteers the client's frames for
            load shedding first; the default ``standard`` prices exactly
            like the pre-SLO server.  Scheduling metadata only — never
            part of :meth:`content_key`, so an interactive client can be
            served from frames a batch twin already rendered.
    """

    client_id: str
    scene: str
    path: CameraPath
    probe_interval: int = 0
    arrival_cycle: int = 0
    departure_cycle: Optional[int] = None
    frame_interval_cycles: Optional[int] = None
    tensorf: bool = False
    slo_class: str = DEFAULT_SLO_CLASS

    def __post_init__(self) -> None:
        if not self.client_id:
            raise ConfigurationError("client_id must be non-empty")
        if self.probe_interval < 0:
            raise ConfigurationError("probe_interval must be >= 0")
        if self.arrival_cycle < 0:
            raise ConfigurationError("arrival_cycle must be >= 0")
        if (
            self.departure_cycle is not None
            and self.departure_cycle <= self.arrival_cycle
        ):
            raise ConfigurationError(
                "departure_cycle must come after arrival_cycle"
            )
        if self.frame_interval_cycles is not None and self.frame_interval_cycles <= 0:
            raise ConfigurationError("frame_interval_cycles must be positive")
        if self.slo_class not in SLO_CLASSES:
            raise ConfigurationError(
                f"unknown slo_class {self.slo_class!r}; choose from {SLO_CLASSES}"
            )

    def content_key(self) -> Tuple:
        """Identity of the rendered sequence *content* this request maps
        to.  Two requests with equal keys render bit-identical sequences
        (same scene, backend, trajectory and probe cadence under the
        server's shared render configuration), so the serving layer can
        deliver the second from frames the first already executed."""
        return (
            "serve_content",
            self.scene,
            self.tensorf,
            self.probe_interval,
            self.path.cache_key(),
        )
