"""Profiling instrumentation for the serving loop (``repro serve --profile``).

The batched wavefront engine exists because profiling said so: the PGO
discipline is *measure first, optimise the proven-hot paths, keep the
measurement around*.  :func:`profile_serve` wraps any serving callable in
:mod:`cProfile` and reduces the raw stats to the two artefacts the
engine's before/after claims are stated in:

* a **hot-function table** (top functions by internal time), so a
  regression shows up as a named function climbing the table rather than
  as an anonymous wall-clock delta; and
* a **per-phase attribution** — encoding / mlp / render / bookkeeping —
  mapping every profiled function to the accelerator stage it prices, by
  module.  "Bookkeeping" is everything that is not engine pricing:
  scheduling decisions, report assembly, cache partition management and
  the event loop itself.  A healthy batched run is bookkeeping-light and
  encoding-heavy; the scalar engine inverts that by drowning pricing in
  per-step Python overhead.

The profiler deliberately has no opinion about *what* to run: callers
pass a zero-argument callable (the CLI passes the fully-configured
``serve_reports`` invocation with traces pre-rendered, so the profile
covers serving, not rendering).
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, TypeVar

T = TypeVar("T")

#: Phase attribution by module-path fragment, first match wins.  The
#: encoding phase spans the encoding engine itself plus the CIM layers it
#: prices (address generation, register/temporal caches, memory-crossbar
#: conflicts) and the batched planner that fuses them.
_PHASE_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("repro/arch/encoding_engine", "encoding"),
    ("repro/cim/", "encoding"),
    ("repro/exec/batch", "encoding"),
    ("repro/nerf/hashgrid", "encoding"),
    ("repro/exec/frame_trace", "encoding"),
    ("repro/arch/mlp_engine", "mlp"),
    ("repro/arch/render_engine", "render"),
)

PHASES: Tuple[str, ...] = ("encoding", "mlp", "render", "bookkeeping")


def _phase_of(filename: str) -> str:
    path = filename.replace("\\", "/")
    for fragment, phase in _PHASE_PATTERNS:
        if fragment in path:
            return phase
    return "bookkeeping"


@dataclass
class HotFunction:
    """One row of the hot-function table."""

    location: str  #: ``file:line(function)`` as pstats prints it
    calls: int
    tottime: float  #: internal time, the ranking key
    cumtime: float
    phase: str


@dataclass
class ServeProfile:
    """Reduced profile of one serving run.

    Attributes:
        total_seconds: Wall-clock of the profiled callable.
        phase_seconds: Internal (non-child) seconds attributed per phase;
            the values sum to approximately ``total_seconds`` (profiler
            overhead accounts for the gap).
        hot_functions: Top functions by internal time, descending.
    """

    total_seconds: float
    phase_seconds: Dict[str, float]
    hot_functions: List[HotFunction]

    def format_report(self) -> str:
        """The human-readable ``--profile`` block: phase attribution
        first (the summary a regression hunt starts from), then the
        hot-function table."""
        lines = [f"-- serve profile: {self.total_seconds:.3f}s total --"]
        for phase in PHASES:
            seconds = self.phase_seconds.get(phase, 0.0)
            share = seconds / self.total_seconds if self.total_seconds else 0.0
            lines.append(f"{phase:>12}: {seconds:7.3f}s ({100.0 * share:5.1f}%)")
        lines.append("")
        lines.append(
            f"{'tottime':>9} {'cumtime':>9} {'calls':>8}  "
            f"{'phase':<12} function"
        )
        for fn in self.hot_functions:
            lines.append(
                f"{fn.tottime:9.3f} {fn.cumtime:9.3f} {fn.calls:8d}  "
                f"{fn.phase:<12} {fn.location}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-serialisable form (``repro serve --profile-json PATH``).

        Round-trips through :meth:`from_dict`, so a committed profile
        snapshot can be reloaded and re-rendered with
        :meth:`format_report`.
        """
        return {
            "schema": "serve_profile/v1",
            "total_seconds": self.total_seconds,
            "phase_seconds": {
                phase: self.phase_seconds.get(phase, 0.0) for phase in PHASES
            },
            "hot_functions": [
                {
                    "location": fn.location,
                    "calls": fn.calls,
                    "tottime": fn.tottime,
                    "cumtime": fn.cumtime,
                    "phase": fn.phase,
                }
                for fn in self.hot_functions
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ServeProfile":
        """Rebuild a profile from :meth:`to_dict` output."""
        return cls(
            total_seconds=data["total_seconds"],
            phase_seconds=dict(data["phase_seconds"]),
            hot_functions=[
                HotFunction(**row) for row in data["hot_functions"]
            ],
        )


def profile_serve(
    fn: Callable[[], T], top: int = 15
) -> Tuple[T, ServeProfile]:
    """Run ``fn`` under cProfile; return its result and the reduced profile.

    Args:
        fn: Zero-argument serving callable.  Pre-render the client
            sequences before calling so the profile attributes serving
            work, not scene rendering.
        top: Hot-function rows to keep.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    stat_items = stats.stats  # type: ignore[attr-defined]
    # Library code — numpy C built-ins, numpy/stdlib Python wrappers —
    # carries no phase of its own: its time belongs to whichever repro
    # module asked for it (`np.unique` issued by the batched planner is
    # encoding work, the same call from report assembly is bookkeeping).
    # Resolve phases transitively through the caller graph, splitting a
    # shared helper's time across callers pro rata by cumulative
    # contribution.
    weight_cache: Dict[tuple, Dict[str, float]] = {}

    def phase_weights(func: tuple, stack: frozenset) -> Dict[str, float]:
        cached = weight_cache.get(func)
        if cached is not None:
            return cached
        filename = func[0].replace("\\", "/")
        if "repro/" in filename:
            weights = {_phase_of(filename): 1.0}
        elif func in stack:
            return {}  # cycle: let the other callers decide
        else:
            callers = stat_items.get(func, (0, 0, 0.0, 0.0, {}))[4]
            agg: Dict[str, float] = {}
            for caller, edge in callers.items():
                share = float(edge[3])  # cumulative time via this caller
                for p, v in phase_weights(caller, stack | {func}).items():
                    agg[p] = agg.get(p, 0.0) + v * share
            total = sum(agg.values())
            if total > 0.0:
                weights = {p: v / total for p, v in agg.items()}
            else:
                weights = {"bookkeeping": 1.0}
        weight_cache[func] = weights
        return weights

    phase_seconds: Dict[str, float] = {phase: 0.0 for phase in PHASES}
    rows: List[HotFunction] = []
    for func, (
        _cc,
        ncalls,
        tottime,
        cumtime,
        _callers,
    ) in stat_items.items():
        filename, lineno, funcname = func
        weights = phase_weights(func, frozenset())
        for phase_name, weight in weights.items():
            phase_seconds[phase_name] += tottime * weight
        phase = max(weights, key=lambda p: weights[p])
        rows.append(
            HotFunction(
                location=f"{filename}:{lineno}({funcname})",
                calls=ncalls,
                tottime=tottime,
                cumtime=cumtime,
                phase=phase,
            )
        )
    rows.sort(key=lambda r: r.tottime, reverse=True)
    return result, ServeProfile(
        total_seconds=stats.total_tt,  # type: ignore[attr-defined]
        phase_seconds=phase_seconds,
        hot_functions=rows[:top],
    )
