"""The FrameTrace IR: one frame's execution, captured once, replayed many times.

A :class:`FrameTrace` records what the renderer *actually executed* for one
frame, wavefront by wavefront: which rays ran at which budget, where their
sample points lie, which rays hit the scene, how many samples each ray
really marched (after early termination) and how many of those ran the
color MLP (the anchor/interpolation structure of Section 4.3).

Downstream consumers replay the trace instead of re-deriving the frame:

* :meth:`repro.arch.accelerator.ASDRAccelerator.simulate_trace` charges the
  engines exactly the points the renderer produced — early termination and
  per-ray anchor counts are reflected in simulated cycles;
* :func:`repro.arch.trace.encoding_corner_stream` replays the voxel-vertex
  stream of the encoding engine;
* the locality profilers (:func:`repro.arch.trace.repetition_profile`,
  :func:`repro.arch.trace.hash_address_trace`) read sample positions
  straight from the trace.

Voxel-corner generation is memoised per wavefront and grid resolution (the
integer base coordinate is stored compactly; the eight corner offsets are
re-broadcast on demand), so repeated simulations of one render — the
fig17/fig18/fig19 experiment trio simulates the same frame three times —
pay for corner derivation once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.exec.scheduler import budget_groups
from repro.nerf.hashgrid import CORNER_OFFSETS
from repro.nerf.rays import sample_along_rays

#: Phase tags of a wavefront: Phase I probe rendering vs Phase II image.
PHASE_PROBE = "probe"
PHASE_MAIN = "main"

#: Per-trace ceiling on memoised voxel-base values (3 ints per point per
#: resolution).  Keeps a long-lived workbench full of memoised traces from
#: hoarding memory; beyond the cap corners are derived on the fly.
CORNER_CACHE_MAX_VALUES = 2**22

#: Per-trace ceiling on stream-derived memo values (:meth:`FrameTrace.memo`).
MEMO_CACHE_MAX_VALUES = 2**24


@dataclass
class TraceWavefront:
    """One wavefront of rays sharing a sample budget.

    Attributes:
        phase: :data:`PHASE_PROBE` (Phase I) or :data:`PHASE_MAIN`.
        budget: Nominal per-ray sample budget of the wavefront.
        ray_ids: ``(R,)`` flat pixel indices.
        hit: ``(R,)`` scene-intersection mask.
        used: ``(R,)`` samples actually marched per ray — 0 for misses,
            post-early-termination counts otherwise.
        color_used: ``(R,)`` samples whose color MLP ran (anchors under
            decoupling; equals ``used`` without it).
        points: ``(P, 3)`` active sample positions in ray-major order,
            where ``P == used.sum()`` (ray ``r`` contributes its first
            ``used[r]`` samples).
    """

    phase: str
    budget: int
    ray_ids: np.ndarray
    hit: np.ndarray
    used: np.ndarray
    color_used: np.ndarray
    points: np.ndarray = field(repr=False)
    _offsets: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        total = int(np.sum(self.used))
        if self.points.shape != (total, 3):
            raise SimulationError(
                f"wavefront points shape {self.points.shape} does not match "
                f"used counts (expected ({total}, 3))"
            )
        if not (
            len(self.ray_ids) == len(self.hit) == len(self.used) == len(self.color_used)
        ):
            raise SimulationError("wavefront per-ray arrays must share one length")

    @classmethod
    def from_samples(
        cls,
        phase: str,
        budget: int,
        ray_ids: np.ndarray,
        hit: np.ndarray,
        points: np.ndarray,
        used: np.ndarray,
        color_used: np.ndarray,
    ) -> "TraceWavefront":
        """Build a wavefront from full ``(R, budget, 3)`` sample positions,
        keeping only each ray's first ``used[r]`` (marched) samples."""
        used = np.asarray(used, dtype=np.int64)
        mask = np.arange(budget)[None, :] < used[:, None]
        return cls(
            phase=phase,
            budget=int(budget),
            ray_ids=np.asarray(ray_ids, dtype=np.int64),
            hit=np.asarray(hit, dtype=bool),
            used=used,
            color_used=np.asarray(color_used, dtype=np.int64),
            points=points[mask],
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serialisable form (schema pinned by the golden test)."""
        return {
            "phase": self.phase,
            "budget": int(self.budget),
            "ray_ids": self.ray_ids.tolist(),
            "hit": self.hit.tolist(),
            "used": self.used.tolist(),
            "color_used": self.color_used.tolist(),
            "points": np.asarray(self.points, dtype=np.float64).tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TraceWavefront":
        return cls(
            phase=data["phase"],
            budget=int(data["budget"]),
            ray_ids=np.asarray(data["ray_ids"], dtype=np.int64),
            hit=np.asarray(data["hit"], dtype=bool),
            used=np.asarray(data["used"], dtype=np.int64),
            color_used=np.asarray(data["color_used"], dtype=np.int64),
            points=np.asarray(data["points"], dtype=np.float64).reshape(-1, 3),
        )

    # ------------------------------------------------------------------
    @property
    def num_rays(self) -> int:
        return len(self.ray_ids)

    @property
    def num_points(self) -> int:
        return int(self.used.sum())

    @property
    def offsets(self) -> np.ndarray:
        """``(R+1,)`` prefix sums of ``used`` — ray ``r`` owns points
        ``offsets[r]:offsets[r+1]``."""
        if self._offsets is None:
            self._offsets = np.concatenate(
                [[0], np.cumsum(self.used, dtype=np.int64)]
            )
        return self._offsets

    def point_ray(self, rays: Optional[slice] = None) -> np.ndarray:
        """Ray index of each active point (for locality studies)."""
        if rays is None:
            return np.repeat(self.ray_ids, self.used)
        return np.repeat(self.ray_ids[rays], self.used[rays])


@dataclass(frozen=True)
class WavefrontSlice:
    """A consumer-sized chunk of one trace wavefront.

    Consumers batch rays at their own width (the renderer at
    ``batch_rays``, the simulator at ``ArchConfig.wavefront_rays``), so a
    trace wavefront is re-chunked on replay; a slice addresses a contiguous
    ray range and the matching active-point range.
    """

    trace: "FrameTrace"
    index: int
    rays: slice
    points: slice

    @property
    def wavefront(self) -> TraceWavefront:
        return self.trace.wavefronts[self.index]

    @property
    def num_points(self) -> int:
        return self.points.stop - self.points.start

    @property
    def used(self) -> np.ndarray:
        return self.wavefront.used[self.rays]

    def point_ray(self) -> np.ndarray:
        return self.wavefront.point_ray(self.rays)

    def sample_points(self) -> np.ndarray:
        return self.wavefront.points[self.points]

    def corners(self, resolution: int) -> np.ndarray:
        """``(P, 8, 3)`` voxel-vertex coordinates at ``resolution``."""
        return self.trace.corners(self.index, self.points, resolution)


@dataclass
class FrameTrace:
    """Execution trace of one rendered frame.

    Attributes:
        num_pixels: Rays in the frame (``H * W``).
        full_budget: The un-optimised fixed budget ``ns``.
        kind: ``"asdr"`` (two-phase render), ``"baseline"`` (fixed budget)
            or ``"budgets"`` (synthesised from a budget map, see
            :meth:`from_budgets`).
        group_size: Renderer's color-decoupling group size (1 = disabled).
        difficulty_evals: Eq. (3) candidate comparisons of Phase I.
        wavefronts: Execution order: probe wavefronts first, then main.
        reprojected_pixels: Pixels delivered by temporal reprojection —
            warped from the previous frame instead of marched, so they
            appear in no wavefront yet still cross the scan-out bus.
            Zero for ordinary (non-reprojected) frames.
    """

    num_pixels: int
    full_budget: int
    kind: str = "baseline"
    group_size: int = 1
    difficulty_evals: int = 0
    wavefronts: List[TraceWavefront] = field(default_factory=list)
    reprojected_pixels: int = 0
    _corner_cache: Dict[Tuple[int, int], np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _corner_cache_values: int = field(default=0, init=False, repr=False, compare=False)
    _memo_cache: Dict[Tuple, np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    # Read-only per-(config, pricing) frame setup shared by every
    # FrameExecution over this trace — see FrameExecution.__init__.
    _setup_cache: Dict[Tuple, tuple] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _memo_seen: set = field(default_factory=set, init=False, repr=False, compare=False)
    _memo_values: int = field(default=0, init=False, repr=False, compare=False)
    _ray_index: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )
    _content_digest: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_budgets(cls, camera, budgets: np.ndarray) -> "FrameTrace":
        """Synthesise a trace from a per-pixel budget map.

        This is the compatibility path for consumers that only have
        ``(camera, budgets)`` — rays are traced and sampled here, once,
        through the shared scheduler; every ray is assumed fully marched
        (no early termination) with full color evaluation.
        """
        budgets = np.asarray(budgets, dtype=np.int64)
        wavefronts: List[TraceWavefront] = []
        for budget, ids in budget_groups(budgets):
            origins, directions = camera.rays_for_pixels(ids)
            points, _, hit = sample_along_rays(origins, directions, budget)
            used = np.where(hit, budget, 0).astype(np.int64)
            wavefronts.append(
                TraceWavefront(
                    phase=PHASE_MAIN,
                    budget=budget,
                    ray_ids=ids,
                    hit=hit,
                    used=used,
                    color_used=used.copy(),
                    points=points[hit].reshape(-1, 3),
                )
            )
        full = int(budgets.max()) if budgets.size else 0
        return cls(
            num_pixels=len(budgets),
            full_budget=full,
            kind="budgets",
            wavefronts=wavefronts,
        )

    def with_budget_cap(self, fraction: float) -> "FrameTrace":
        """A reduced-sampling copy of this trace for degraded serving.

        Every marched ray keeps its first ``max(1, floor(used * fraction))``
        samples (misses stay at zero); ``color_used`` is clamped to the new
        march depth and the ray-major ``points`` stream is masked to
        match, so the copy prices through the ordinary engines with no
        special-casing.  Ray coverage is untouched — every pixel the full
        trace rendered is still rendered (at least one sample), so
        :attr:`rendered_pixels` and therefore scan-out bus cost are
        identical; only the compute/bandwidth *per ray* shrinks.  The
        copy shares no caches with the original.
        """
        if not 0.0 < fraction < 1.0:
            raise SimulationError(
                f"budget-cap fraction must be in (0, 1), got {fraction}"
            )
        capped: List[TraceWavefront] = []
        for wf in self.wavefronts:
            new_used = np.where(
                wf.used > 0,
                np.maximum(1, (wf.used * fraction).astype(np.int64)),
                0,
            ).astype(np.int64)
            if wf.num_points:
                starts = wf.offsets[:-1]
                within = np.arange(wf.num_points, dtype=np.int64) - np.repeat(
                    starts, wf.used
                )
                points = wf.points[within < np.repeat(new_used, wf.used)]
            else:
                points = wf.points
            capped.append(
                TraceWavefront(
                    phase=wf.phase,
                    budget=wf.budget,
                    ray_ids=wf.ray_ids,
                    hit=wf.hit,
                    used=new_used,
                    color_used=np.minimum(wf.color_used, new_used),
                    points=points,
                )
            )
        return FrameTrace(
            num_pixels=self.num_pixels,
            full_budget=self.full_budget,
            kind=self.kind,
            group_size=self.group_size,
            difficulty_evals=self.difficulty_evals,
            wavefronts=capped,
            reprojected_pixels=self.reprojected_pixels,
        )

    def with_reprojection(self, skip_mask: np.ndarray) -> "FrameTrace":
        """A temporally-reprojected copy of this trace.

        Rays flagged in ``skip_mask`` (a ``(num_pixels,)`` boolean map)
        are dropped from every wavefront: their pixels are delivered by
        warping the previous frame's scan-out instead of being marched,
        so they skip encoding **and** MLP work entirely and cost scan-out
        only.  Dropped rays the full trace actually rendered are counted
        in :attr:`reprojected_pixels`, keeping :attr:`rendered_pixels` —
        and therefore scan-out bus cost — identical to the full trace;
        only the per-ray compute disappears.  The copy shares no caches
        with the original and prices through the ordinary engines (stepped
        and batched alike) with no special-casing, which is what keeps
        reprojected frames inside the bit-identity envelope.
        """
        skip_mask = np.asarray(skip_mask, dtype=bool)
        if skip_mask.shape != (self.num_pixels,):
            raise SimulationError(
                f"reprojection skip mask shape {skip_mask.shape} does not "
                f"match the frame ({self.num_pixels} pixels)"
            )
        reprojected = int(self.reprojected_pixels)
        kept: List[TraceWavefront] = []
        for wf in self.wavefronts:
            keep = ~skip_mask[wf.ray_ids]
            reprojected += int((wf.used[~keep] > 0).sum())
            if not keep.any():
                continue
            if wf.num_points:
                points = wf.points[np.repeat(keep, wf.used)]
            else:
                points = wf.points
            kept.append(
                TraceWavefront(
                    phase=wf.phase,
                    budget=wf.budget,
                    ray_ids=wf.ray_ids[keep],
                    hit=wf.hit[keep],
                    used=wf.used[keep],
                    color_used=wf.color_used[keep],
                    points=points,
                )
            )
        return FrameTrace(
            num_pixels=self.num_pixels,
            full_budget=self.full_budget,
            kind=self.kind,
            group_size=self.group_size,
            difficulty_evals=self.difficulty_evals,
            wavefronts=kept,
            reprojected_pixels=reprojected,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serialisable form (schema pinned by the golden test).

        The reprojection record is emitted only when present, so
        ordinary frames serialise byte-identically to the pre-reprojection
        schema the golden file pins.
        """
        out = {
            "num_pixels": int(self.num_pixels),
            "full_budget": int(self.full_budget),
            "kind": self.kind,
            "group_size": int(self.group_size),
            "difficulty_evals": int(self.difficulty_evals),
            "wavefronts": [wf.to_dict() for wf in self.wavefronts],
        }
        if self.reprojected_pixels:
            out["reprojected_pixels"] = int(self.reprojected_pixels)
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FrameTrace":
        """Rebuild a trace from :meth:`to_dict` output (fresh caches)."""
        return cls(
            num_pixels=int(data["num_pixels"]),
            full_budget=int(data["full_budget"]),
            kind=data["kind"],
            group_size=int(data["group_size"]),
            difficulty_evals=int(data["difficulty_evals"]),
            wavefronts=[TraceWavefront.from_dict(w) for w in data["wavefronts"]],
            reprojected_pixels=int(data.get("reprojected_pixels", 0)),
        )

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def _phase_sum(self, attr: str, phase: Optional[str] = None) -> int:
        return int(
            sum(
                getattr(wf, attr).sum()
                for wf in self.wavefronts
                if phase is None or wf.phase == phase
            )
        )

    @property
    def density_points(self) -> int:
        """Sample points whose density MLP ran (both phases)."""
        return self._phase_sum("used")

    @property
    def color_points(self) -> int:
        """Sample points whose color MLP ran (both phases)."""
        return self._phase_sum("color_used")

    @property
    def interpolated_points(self) -> int:
        """Points whose color the approximation unit interpolated."""
        return self.density_points - self.color_points

    @property
    def probe_points(self) -> int:
        """Phase I sample points (subset of :attr:`density_points`)."""
        return self._phase_sum("used", PHASE_PROBE)

    @property
    def rendered_pixels(self) -> int:
        """Pixels the frame delivers over the scan-out bus: rays that
        marched at least one sample plus pixels filled by temporal
        reprojection (warped pixels are scanned out like any other)."""
        marched = int(sum((wf.used > 0).sum() for wf in self.wavefronts))
        return marched + int(self.reprojected_pixels)

    @property
    def is_uniform(self) -> bool:
        """True when every ray ran the full budget (no adaptive sampling,
        no early termination) — the regime the locality profilers study."""
        return all(
            wf.budget == self.full_budget
            and np.array_equal(wf.used, np.where(wf.hit, wf.budget, 0))
            for wf in self.wavefronts
        )

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def split(self, wavefront_rays: int) -> Iterator[WavefrontSlice]:
        """Re-chunk the trace into consumer-sized wavefront slices."""
        for index, wf in enumerate(self.wavefronts):
            offsets = wf.offsets
            for start in range(0, wf.num_rays, wavefront_rays):
                stop = min(start + wavefront_rays, wf.num_rays)
                yield WavefrontSlice(
                    trace=self,
                    index=index,
                    rays=slice(start, stop),
                    points=slice(int(offsets[start]), int(offsets[stop])),
                )

    def voxel_base(self, index: int, resolution: int) -> np.ndarray:
        """``(P, 3)`` integer voxel-base coordinates of wavefront ``index``
        at ``resolution`` (memoised; the expensive float->int conversion of
        corner generation happens once per wavefront and resolution)."""
        key = (index, int(resolution))
        cached = self._corner_cache.get(key)
        if cached is not None:
            return cached
        points = self.wavefronts[index].points
        scaled = points * resolution
        base = np.floor(scaled).astype(np.int64)
        np.clip(base, 0, resolution - 1, out=base)
        if self._corner_cache_values + base.size <= CORNER_CACHE_MAX_VALUES:
            dtype = np.int16 if resolution < 2**15 else np.int32
            self._corner_cache[key] = base.astype(dtype)
            self._corner_cache_values += base.size
            return self._corner_cache[key]
        return base

    def corners(self, index: int, points: slice, resolution: int) -> np.ndarray:
        """``(P, 8, 3)`` voxel-vertex coordinates for a point range of one
        wavefront — identical to
        :meth:`repro.nerf.hashgrid.HashGridEncoder.voxel_vertices` corners,
        without recomputing trilinear weights the consumers discard."""
        base = self.voxel_base(index, resolution)[points].astype(np.int64)
        return base[:, None, :] + CORNER_OFFSETS[None, :, :]

    def content_digest(self) -> bytes:
        """Stable digest of the trace *content* — everything pricing can
        depend on (structure fields plus every wavefront's arrays).

        Two traces with equal digests price identically on any
        accelerator, so consumers that cache per-trace results across
        object lifetimes (the serving layer's plan and scan-out caches)
        key by this digest instead of ``id()``: a recycled object address
        can never alias a different trace's cached prices, and twin
        tenants whose traces are distinct objects with equal content
        share entries.  Computed once and cached on the instance (traces
        are immutable once recorded).
        """
        if self._content_digest is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(
                repr(
                    (
                        self.num_pixels,
                        self.full_budget,
                        self.kind,
                        self.group_size,
                        self.difficulty_evals,
                        self.reprojected_pixels,
                        len(self.wavefronts),
                    )
                ).encode()
            )
            for wf in self.wavefronts:
                h.update(repr((wf.phase, wf.budget)).encode())
                h.update(np.ascontiguousarray(wf.ray_ids, np.int64).tobytes())
                h.update(np.ascontiguousarray(wf.hit, bool).tobytes())
                h.update(np.ascontiguousarray(wf.used, np.int64).tobytes())
                h.update(
                    np.ascontiguousarray(wf.color_used, np.int64).tobytes()
                )
                h.update(
                    np.ascontiguousarray(wf.points, np.float64).tobytes()
                )
            self._content_digest = h.digest()
        return self._content_digest

    def memo(self, key: Tuple, compute) -> np.ndarray:
        """Memoise a stream-derived array under ``key`` (bounded).

        Entries are cached on their *second* request: a trace that is
        simulated once (e.g. a sweep design point) only pays a key-set
        entry, while traces replayed repeatedly — the fig17/18/19 trio, or
        a cache-size sweep re-simulating one frame — keep the derived
        streams (register-cache access distances, …) alive across calls.
        """
        cached = self._memo_cache.get(key)
        if cached is not None:
            return cached
        value = compute()
        if (
            key in self._memo_seen
            and self._memo_values + value.size <= MEMO_CACHE_MAX_VALUES
        ):
            self._memo_cache[key] = value
            self._memo_values += value.size
        else:
            self._memo_seen.add(key)
        return value

    def memo_hook(self, prefix: Tuple):
        """A ``(key, compute)`` hook scoped to ``prefix`` (one wavefront
        slice), handed to consumers via ``EncodingBatch.memo``."""
        return lambda key, compute: self.memo(prefix + key, compute)

    def memo_contains(self, key: Tuple) -> bool:
        """Whether ``key`` has been requested before (a warmth probe — the
        batched engine's cold-plan heuristic asks before committing to an
        expensive stream derivation).  Counts the see-once set too: a
        stream requested even once predicts the trace is being replayed,
        which is exactly when plan assembly amortises."""
        return key in self._memo_cache or key in self._memo_seen

    # ------------------------------------------------------------------
    # Profiler access
    # ------------------------------------------------------------------
    def hit_mask(self) -> np.ndarray:
        """``(num_pixels,)`` scene-hit mask (False for uncovered rays)."""
        mask = np.zeros(self.num_pixels, dtype=bool)
        for wf in self.wavefronts:
            mask[wf.ray_ids] = wf.hit
        return mask

    def _build_ray_index(self) -> np.ndarray:
        index = np.full((self.num_pixels, 2), -1, dtype=np.int64)
        for w, wf in enumerate(self.wavefronts):
            if wf.phase == PHASE_PROBE:
                continue  # probe rays re-appear in no main wavefront
            index[wf.ray_ids, 0] = w
            index[wf.ray_ids, 1] = np.arange(wf.num_rays)
        # Probe rays fill remaining slots (Phase I fully rendered them).
        for w, wf in enumerate(self.wavefronts):
            if wf.phase != PHASE_PROBE:
                continue
            vacant = index[wf.ray_ids, 0] < 0
            index[wf.ray_ids[vacant], 0] = w
            index[wf.ray_ids[vacant], 1] = np.arange(wf.num_rays)[vacant]
        return index

    def gather_points(self, ray_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Full per-ray sample positions for fully-marched rays.

        Returns:
            ``(points, hit)`` with shapes ``(len(ray_ids), N, 3)`` and
            ``(len(ray_ids),)`` where ``N`` is each ray's budget (must be
            uniform across the requested rays).  Missed rays return zeros
            with ``hit=False``.

        Raises:
            SimulationError: If a ray is absent from the trace or was only
                partially marched (early-terminated rays cannot be replayed
                as full-budget geometry).
        """
        if self._ray_index is None:
            self._ray_index = self._build_ray_index()
        budgets = set()
        rows = []
        for rid in np.asarray(ray_ids, dtype=np.int64):
            w = int(self._ray_index[rid, 0])
            if w < 0:
                raise SimulationError(f"ray {rid} is not covered by this trace")
            rows.append((w, int(self._ray_index[rid, 1])))
            budgets.add(self.wavefronts[w].budget)
        if len(budgets) > 1:
            raise SimulationError(
                f"requested rays span multiple budgets: {sorted(budgets)}"
            )
        budget = budgets.pop() if budgets else 0
        out = np.zeros((len(rows), budget, 3))
        hit = np.zeros(len(rows), dtype=bool)
        for i, (w, row) in enumerate(rows):
            wf = self.wavefronts[w]
            if not wf.hit[row]:
                continue
            if wf.used[row] != wf.budget:
                raise SimulationError(
                    f"ray {wf.ray_ids[row]} marched {wf.used[row]} of "
                    f"{wf.budget} samples; full geometry is unavailable"
                )
            start = int(wf.offsets[row])
            out[i] = wf.points[start : start + budget]
            hit[i] = True
        return out, hit

    def active_points(self, limit: Optional[int] = None) -> np.ndarray:
        """Concatenated ``(P, 3)`` active sample positions in render order."""
        chunks: List[np.ndarray] = []
        total = 0
        for wf in self.wavefronts:
            chunks.append(wf.points)
            total += wf.points.shape[0]
            if limit is not None and total >= limit:
                break
        if not chunks:
            return np.empty((0, 3))
        flat = np.concatenate(chunks, axis=0)
        return flat[:limit] if limit is not None else flat
