"""Scheduling shared by renderer, trace, simulator and the serving layer.

Two granularities live here:

* **Wavefronts** (within one frame).  The ASDR execution model processes
  rays in *wavefronts*: rays sharing a sample budget are grouped
  (ascending budget order, as the adaptive renderer executes them) and
  dispatched in fixed-size batches.  Before this module,
  ``core/pipeline.py``, ``arch/trace.py`` and ``arch/accelerator.py`` each
  carried their own copy of the ``unique-budget -> chunk`` double loop;
  they now all iterate the generators below.

* **Frames** (across clients).  Multi-tenant serving interleaves many
  clients' sequences on one accelerator; the scheduling unit is one frame
  of one client's :class:`~repro.exec.sequence.SequenceTrace`, described
  by a :class:`FrameWorkItem` (execution mode + cost hint, so policies can
  tell a cheap pose-replay from an expensive Phase I probe without
  simulating anything — plus the suspend/resume state of an in-flight
  :class:`~repro.exec.execution.FrameExecution` under wavefront-
  granularity preemption).  :class:`TemporalCachePartitions` splits one
  temporal vertex-cache budget among the tenants so one client's working
  set never evicts another's, and re-partitions elastically as tenants
  arrive and depart.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cim.cache import TemporalVertexCache
from repro.errors import ConfigurationError


def budget_groups(
    budgets: np.ndarray, ray_ids: Optional[np.ndarray] = None
) -> Iterator[Tuple[int, np.ndarray]]:
    """Group rays by sample budget.

    Args:
        budgets: ``(R,)`` per-ray sample budgets.
        ray_ids: Optional ``(R,)`` ray ids aligned with ``budgets``; defaults
            to ``arange(R)`` (i.e. ``budgets`` covers the whole image).

    Yields:
        ``(budget, ray_ids)`` with ascending budgets; non-positive budgets
        are skipped (rays with nothing to render).

    Example:
        >>> import numpy as np
        >>> [(b, ids.tolist()) for b, ids in budget_groups(np.array([2, 4, 2, 0]))]
        [(2, [0, 2]), (4, [1])]
    """
    budgets = np.asarray(budgets)
    if ray_ids is None:
        ray_ids = np.arange(len(budgets), dtype=np.int64)
    for budget in np.unique(budgets):
        if budget <= 0:
            continue
        yield int(budget), ray_ids[budgets == budget]


def iter_wavefronts(
    ray_ids: np.ndarray, wavefront_rays: int
) -> Iterator[np.ndarray]:
    """Split one budget group into wavefronts of at most ``wavefront_rays``.

    Example:
        >>> import numpy as np
        >>> [w.tolist() for w in iter_wavefronts(np.arange(5), 2)]
        [[0, 1], [2, 3], [4]]
    """
    for start in range(0, len(ray_ids), wavefront_rays):
        yield ray_ids[start : start + wavefront_rays]


def iter_budget_wavefronts(
    budgets: np.ndarray,
    wavefront_rays: int,
    ray_ids: Optional[np.ndarray] = None,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(budget, wavefront_ray_ids)`` in execution order.

    Example:
        >>> import numpy as np
        >>> [(b, w.tolist())
        ...  for b, w in iter_budget_wavefronts(np.array([2, 4, 2, 2]), 2)]
        [(2, [0, 2]), (2, [3]), (4, [1])]
    """
    for budget, ids in budget_groups(budgets, ray_ids):
        for chunk in iter_wavefronts(ids, wavefront_rays):
            yield budget, chunk


# ----------------------------------------------------------------------
# Frame-granularity scheduling (multi-tenant serving)
# ----------------------------------------------------------------------

#: Execution modes of a frame work item, cheapest first: a bit-identical
#: pose replay (framebuffer scan-out only), a sampling-plan-reuse frame
#: (no Phase I probe) and a keyframe that runs its own Phase I probe.
WORK_REPLAY = "replay"
WORK_REUSE = "reuse"
WORK_PROBE = "probe"


@dataclass
class FrameWorkItem:
    """One frame of one client's sequence — the serving scheduling unit.

    The identity fields (``client`` / ``frame`` / ``mode`` /
    ``cost_hint``) describe the frame; the remaining fields are the
    *suspend/resume state* a preemptive serving run accumulates: the
    in-flight :class:`~repro.exec.execution.FrameExecution` cursor, the
    cycle its first wavefront ran, service cycles charged so far and how
    often the frame was set aside for another tenant.  Runtime state is
    per serving run — schedulers take a :meth:`fresh` copy so one
    submitted sequence can be served under many policies.

    Attributes:
        client: Tenant identifier the frame belongs to.
        frame: Index into the client's
            :class:`~repro.exec.sequence.SequenceTrace`.
        mode: :data:`WORK_REPLAY`, :data:`WORK_REUSE` or
            :data:`WORK_PROBE` — how the frame executes, which is also a
            strong cost signal (replays are scan-out only; reuse frames
            skip Phase I; probes pay everything).
        cost_hint: Density-MLP points the frame will execute (0 for
            replays).  Policies multiply it by a calibrated
            cycles-per-point estimate; it is *not* a cycle count itself.
        execution: In-flight execution cursor (``None`` until the frame's
            first wavefront runs; cleared state means not started).
        start_cycle: Virtual-clock cycle the first wavefront ran at
            (``-1`` = not started).
        service_cycles: Accelerator cycles charged to this frame so far.
        preemptions: Times this frame was suspended with work remaining
            while another tenant's wavefronts ran.
        budget_fraction: Sampling-budget fraction this frame actually ran
            at (``None`` = full quality; set by the server's
            degraded-quality mode before the first wavefront).
        reprojected: True when the server served this frame through the
            temporal-reprojection degrade path (converged rays warped
            from the previous delivered frame instead of marched); set
            before the first wavefront, like ``budget_fraction``.
    """

    client: str
    frame: int
    mode: str
    cost_hint: int
    execution: Optional[object] = field(
        default=None, repr=False, compare=False
    )
    start_cycle: int = field(default=-1, compare=False)
    service_cycles: int = field(default=0, compare=False)
    preemptions: int = field(default=0, compare=False)
    budget_fraction: Optional[float] = field(default=None, compare=False)
    reprojected: bool = field(default=False, compare=False)

    @property
    def started(self) -> bool:
        """True once the frame's first wavefront has executed."""
        return self.execution is not None

    @property
    def in_flight(self) -> bool:
        """Started but not yet complete — the suspend/resume window."""
        return self.execution is not None and not self.execution.done

    def fresh(self) -> "FrameWorkItem":
        """A copy with pristine runtime state (one per serving run)."""
        return replace(
            self,
            execution=None,
            start_cycle=-1,
            service_cycles=0,
            preemptions=0,
            budget_fraction=None,
            reprojected=False,
        )


def sequence_work_items(client: str, trace) -> List[FrameWorkItem]:
    """Expand a :class:`~repro.exec.sequence.SequenceTrace` into the
    per-frame work items a serving scheduler interleaves.

    The mode of each frame comes from the trace's recorded temporal
    structure: ``replays[k]`` marks bit-identical pose replays and
    ``planned[k]`` separates Phase I keyframes from sampling-plan-reuse
    frames.
    """
    items: List[FrameWorkItem] = []
    for k in range(trace.num_frames):
        if trace.replays[k] is not None:
            mode, hint = WORK_REPLAY, 0
        else:
            mode = WORK_PROBE if trace.planned[k] else WORK_REUSE
            hint = trace.frames[k].density_points
        items.append(FrameWorkItem(client=client, frame=k, mode=mode, cost_hint=hint))
    return items


class TemporalCachePartitions:
    """Elastic per-tenant partitions of one temporal vertex-cache budget.

    Interleaving many clients on one accelerator must not let client A's
    voxel working set evict client B's between B's consecutive frames, so
    the serving layer partitions the temporal cache: each tenant owns a
    private :class:`~repro.cim.cache.TemporalVertexCache` holding
    ``total_capacity // num_tenants`` entries per level (unbounded when
    ``total_capacity`` is ``None``).  Private partitions make a client's
    temporal state independent of how tenants interleave; with an
    unbounded budget each partition equals the cache the client would
    have running alone, so serving prices its frames identically to a
    solo run.  A bounded budget deliberately models contention — each
    tenant's share is smaller than the whole cache, and reuse may drop
    accordingly.

    The partitioning is **elastic**: :meth:`admit` and :meth:`release`
    change the tenant set mid-run (online admission, client departure)
    and re-split the budget among the tenants now present.  Shrinking a
    surviving tenant's share trims its resident set to the new bound;
    growing it never invents entries.  Conservation holds throughout —
    the shares always sum to at most ``total_capacity`` — and a resize
    that trims resident content extends the cache's resident-content
    key, so hit masks memoised against an earlier share are never served
    against the re-partitioned resident set (see
    :meth:`~repro.cim.cache.TemporalVertexCache.resize`).

    Args:
        tenants: Tenant ids present at construction (may be empty — a
            serving run admits clients as they arrive).
        total_capacity: Combined per-level entry budget (``None`` =
            unbounded, the idealised buffer the video experiment uses).
    """

    def __init__(
        self, tenants, total_capacity: Optional[int] = None
    ) -> None:
        tenants = list(tenants)
        if len(set(tenants)) != len(tenants):
            raise ConfigurationError("tenant ids must be unique")
        self.total_capacity = total_capacity
        self.per_tenant_capacity: Optional[int] = None
        self._caches: Dict[str, TemporalVertexCache] = {}
        for tenant in tenants:
            self.admit(tenant)

    def _rebalance(self) -> None:
        """Re-split the budget evenly among the tenants now present."""
        if self.total_capacity is None or not self._caches:
            self.per_tenant_capacity = None
            return
        if self.total_capacity < len(self._caches):
            raise ConfigurationError(
                f"total_capacity {self.total_capacity} cannot be split among "
                f"{len(self._caches)} tenants"
            )
        share = self.total_capacity // len(self._caches)
        self.per_tenant_capacity = share
        for cache in self._caches.values():
            cache.resize(share)

    def admit(
        self, tenant: str, seed: Optional[Dict] = None
    ) -> TemporalVertexCache:
        """Add a tenant mid-run; every partition shrinks to the new share.

        Returns the new tenant's partition — empty unless ``seed`` is an
        exported cache state (see :meth:`export_state`), in which case the
        partition adopts the seeded resident set before the rebalance;
        this is the migration hand-off path, where a tenant arrives on a
        shard carrying the temporal working set it built on another.

        Raises:
            ConfigurationError: On a duplicate tenant id, or when the
                budget cannot cover one more tenant.
        """
        if tenant in self._caches:
            raise ConfigurationError(f"tenant {tenant!r} already admitted")
        if (
            self.total_capacity is not None
            and self.total_capacity < len(self._caches) + 1
        ):
            raise ConfigurationError(
                f"total_capacity {self.total_capacity} cannot be split among "
                f"{len(self._caches) + 1} tenants"
            )
        # Insert with the current share (rebalance below tightens it), so
        # the new cache is constructed under a valid bound.
        cache = TemporalVertexCache(self.per_tenant_capacity)
        if seed is not None:
            cache.adopt(seed)
        self._caches[tenant] = cache
        self._rebalance()
        return self._caches[tenant]

    def export_state(self, tenant: str) -> Dict:
        """Snapshot a tenant's partition for cross-shard hand-off.

        The snapshot is self-contained (see
        :meth:`~repro.cim.cache.TemporalVertexCache.export_state`) and
        can seed :meth:`admit` on another shard's partitions.
        """
        return self.cache_for(tenant).export_state()

    def release(self, tenant: str) -> TemporalVertexCache:
        """Remove a departing tenant; survivors inherit its budget share.

        Returns the released partition (its owner may still hold a
        suspended execution draining against it — the partition object
        stays valid, it just no longer counts against the budget).
        """
        try:
            cache = self._caches.pop(tenant)
        except KeyError:
            raise ConfigurationError(
                f"unknown tenant {tenant!r}; cannot release"
            ) from None
        self._rebalance()
        return cache

    def cache_for(self, tenant: str) -> TemporalVertexCache:
        """The tenant's private temporal cache partition."""
        try:
            return self._caches[tenant]
        except KeyError:
            raise ConfigurationError(
                f"unknown tenant {tenant!r}; admit it first"
            ) from None

    @property
    def tenants(self) -> List[str]:
        return list(self._caches)
