"""Scheduling shared by renderer, trace, simulator and the serving layer.

Two granularities live here:

* **Wavefronts** (within one frame).  The ASDR execution model processes
  rays in *wavefronts*: rays sharing a sample budget are grouped
  (ascending budget order, as the adaptive renderer executes them) and
  dispatched in fixed-size batches.  Before this module,
  ``core/pipeline.py``, ``arch/trace.py`` and ``arch/accelerator.py`` each
  carried their own copy of the ``unique-budget -> chunk`` double loop;
  they now all iterate the generators below.

* **Frames** (across clients).  Multi-tenant serving interleaves many
  clients' sequences on one accelerator; the scheduling unit is one frame
  of one client's :class:`~repro.exec.sequence.SequenceTrace`, described
  by a :class:`FrameWorkItem` (execution mode + cost hint, so policies can
  tell a cheap pose-replay from an expensive Phase I probe without
  simulating anything).  :class:`TemporalCachePartitions` splits one
  temporal vertex-cache budget among the tenants so one client's working
  set never evicts another's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cim.cache import TemporalVertexCache
from repro.errors import ConfigurationError


def budget_groups(
    budgets: np.ndarray, ray_ids: Optional[np.ndarray] = None
) -> Iterator[Tuple[int, np.ndarray]]:
    """Group rays by sample budget.

    Args:
        budgets: ``(R,)`` per-ray sample budgets.
        ray_ids: Optional ``(R,)`` ray ids aligned with ``budgets``; defaults
            to ``arange(R)`` (i.e. ``budgets`` covers the whole image).

    Yields:
        ``(budget, ray_ids)`` with ascending budgets; non-positive budgets
        are skipped (rays with nothing to render).

    Example:
        >>> import numpy as np
        >>> [(b, ids.tolist()) for b, ids in budget_groups(np.array([2, 4, 2, 0]))]
        [(2, [0, 2]), (4, [1])]
    """
    budgets = np.asarray(budgets)
    if ray_ids is None:
        ray_ids = np.arange(len(budgets), dtype=np.int64)
    for budget in np.unique(budgets):
        if budget <= 0:
            continue
        yield int(budget), ray_ids[budgets == budget]


def iter_wavefronts(
    ray_ids: np.ndarray, wavefront_rays: int
) -> Iterator[np.ndarray]:
    """Split one budget group into wavefronts of at most ``wavefront_rays``.

    Example:
        >>> import numpy as np
        >>> [w.tolist() for w in iter_wavefronts(np.arange(5), 2)]
        [[0, 1], [2, 3], [4]]
    """
    for start in range(0, len(ray_ids), wavefront_rays):
        yield ray_ids[start : start + wavefront_rays]


def iter_budget_wavefronts(
    budgets: np.ndarray,
    wavefront_rays: int,
    ray_ids: Optional[np.ndarray] = None,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(budget, wavefront_ray_ids)`` in execution order.

    Example:
        >>> import numpy as np
        >>> [(b, w.tolist())
        ...  for b, w in iter_budget_wavefronts(np.array([2, 4, 2, 2]), 2)]
        [(2, [0, 2]), (2, [3]), (4, [1])]
    """
    for budget, ids in budget_groups(budgets, ray_ids):
        for chunk in iter_wavefronts(ids, wavefront_rays):
            yield budget, chunk


# ----------------------------------------------------------------------
# Frame-granularity scheduling (multi-tenant serving)
# ----------------------------------------------------------------------

#: Execution modes of a frame work item, cheapest first: a bit-identical
#: pose replay (framebuffer scan-out only), a sampling-plan-reuse frame
#: (no Phase I probe) and a keyframe that runs its own Phase I probe.
WORK_REPLAY = "replay"
WORK_REUSE = "reuse"
WORK_PROBE = "probe"


@dataclass(frozen=True)
class FrameWorkItem:
    """One frame of one client's sequence — the serving scheduling unit.

    Attributes:
        client: Tenant identifier the frame belongs to.
        frame: Index into the client's
            :class:`~repro.exec.sequence.SequenceTrace`.
        mode: :data:`WORK_REPLAY`, :data:`WORK_REUSE` or
            :data:`WORK_PROBE` — how the frame executes, which is also a
            strong cost signal (replays are scan-out only; reuse frames
            skip Phase I; probes pay everything).
        cost_hint: Density-MLP points the frame will execute (0 for
            replays).  Policies multiply it by a calibrated
            cycles-per-point estimate; it is *not* a cycle count itself.
    """

    client: str
    frame: int
    mode: str
    cost_hint: int


def sequence_work_items(client: str, trace) -> List[FrameWorkItem]:
    """Expand a :class:`~repro.exec.sequence.SequenceTrace` into the
    per-frame work items a serving scheduler interleaves.

    The mode of each frame comes from the trace's recorded temporal
    structure: ``replays[k]`` marks bit-identical pose replays and
    ``planned[k]`` separates Phase I keyframes from sampling-plan-reuse
    frames.
    """
    items: List[FrameWorkItem] = []
    for k in range(trace.num_frames):
        if trace.replays[k] is not None:
            mode, hint = WORK_REPLAY, 0
        else:
            mode = WORK_PROBE if trace.planned[k] else WORK_REUSE
            hint = trace.frames[k].density_points
        items.append(FrameWorkItem(client=client, frame=k, mode=mode, cost_hint=hint))
    return items


class TemporalCachePartitions:
    """Per-tenant partitions of one temporal vertex-cache budget.

    Interleaving many clients on one accelerator must not let client A's
    voxel working set evict client B's between B's consecutive frames, so
    the serving layer statically partitions the temporal cache: each
    tenant owns a private :class:`~repro.cim.cache.TemporalVertexCache`
    holding ``total_capacity // num_tenants`` entries per level (unbounded
    when ``total_capacity`` is ``None``).  Private partitions make a
    client's temporal state independent of how tenants interleave; with
    an unbounded budget each partition equals the cache the client would
    have running alone, so serving prices its frames identically to a
    solo run.  A bounded budget deliberately models contention — each
    tenant's share is smaller than the whole cache, and reuse may drop
    accordingly.

    Args:
        tenants: The tenant ids sharing the budget (fixed up front — a
            serving run knows its admitted clients).
        total_capacity: Combined per-level entry budget (``None`` =
            unbounded, the idealised buffer the video experiment uses).
    """

    def __init__(
        self, tenants, total_capacity: Optional[int] = None
    ) -> None:
        tenants = list(tenants)
        if len(set(tenants)) != len(tenants):
            raise ConfigurationError("tenant ids must be unique")
        if total_capacity is not None:
            if total_capacity < len(tenants):
                raise ConfigurationError(
                    f"total_capacity {total_capacity} cannot be split among "
                    f"{len(tenants)} tenants"
                )
            share: Optional[int] = total_capacity // len(tenants) if tenants else None
        else:
            share = None
        self.per_tenant_capacity = share
        self._caches: Dict[str, TemporalVertexCache] = {
            tenant: TemporalVertexCache(share) for tenant in tenants
        }

    def cache_for(self, tenant: str) -> TemporalVertexCache:
        """The tenant's private temporal cache partition."""
        try:
            return self._caches[tenant]
        except KeyError:
            raise ConfigurationError(
                f"unknown tenant {tenant!r}; partitions are fixed at "
                "construction"
            ) from None

    @property
    def tenants(self) -> List[str]:
        return list(self._caches)
