"""Budget-group wavefront scheduling shared by renderer, trace and simulator.

The ASDR execution model processes rays in *wavefronts*: rays sharing a
sample budget are grouped (ascending budget order, as the adaptive renderer
executes them) and dispatched in fixed-size batches.  Before this module,
``core/pipeline.py``, ``arch/trace.py`` and ``arch/accelerator.py`` each
carried their own copy of the ``unique-budget -> chunk`` double loop; they
now all iterate the generators below.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


def budget_groups(
    budgets: np.ndarray, ray_ids: Optional[np.ndarray] = None
) -> Iterator[Tuple[int, np.ndarray]]:
    """Group rays by sample budget.

    Args:
        budgets: ``(R,)`` per-ray sample budgets.
        ray_ids: Optional ``(R,)`` ray ids aligned with ``budgets``; defaults
            to ``arange(R)`` (i.e. ``budgets`` covers the whole image).

    Yields:
        ``(budget, ray_ids)`` with ascending budgets; non-positive budgets
        are skipped (rays with nothing to render).
    """
    budgets = np.asarray(budgets)
    if ray_ids is None:
        ray_ids = np.arange(len(budgets), dtype=np.int64)
    for budget in np.unique(budgets):
        if budget <= 0:
            continue
        yield int(budget), ray_ids[budgets == budget]


def iter_wavefronts(
    ray_ids: np.ndarray, wavefront_rays: int
) -> Iterator[np.ndarray]:
    """Split one budget group into wavefronts of at most ``wavefront_rays``."""
    for start in range(0, len(ray_ids), wavefront_rays):
        yield ray_ids[start : start + wavefront_rays]


def iter_budget_wavefronts(
    budgets: np.ndarray,
    wavefront_rays: int,
    ray_ids: Optional[np.ndarray] = None,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(budget, wavefront_ray_ids)`` in execution order."""
    for budget, ids in budget_groups(budgets, ray_ids):
        for chunk in iter_wavefronts(ids, wavefront_rays):
            yield budget, chunk
