"""The resumable execution engine: frames as cursors over wavefront steps.

:class:`FrameExecution` is the execution unit behind every simulation
entry point of :class:`~repro.arch.accelerator.ASDRAccelerator`.  Where
the pre-refactor simulator walked a frame's wavefronts in one opaque
loop, a ``FrameExecution`` is a *cursor* over that loop: each
:meth:`~FrameExecution.step` prices exactly one budget-group wavefront
slice (re-chunked to the design's ``wavefront_rays``; the Phase I
adaptive-sampling tail is the final step), accumulating into a partial
:class:`~repro.arch.accelerator.SimReport` and carrying the frame's
engine state (encoding engine, buffer model, temporal-cache handle)
between steps.

Because each frame owns its engines and the step order is exactly the
order the monolithic loop used, an execution can be **suspended after any
step and resumed later — even with other frames' wavefronts executed in
between — and still produce bit-identical cycles and energy** to an
uninterrupted run (pinned by the golden test in
``tests/test_execution.py``).  That property is what makes
wavefront-granularity preemption in the serving layer
(:class:`~repro.serving.server.SequenceServer`) free of pricing
artefacts: the interleaved total always equals the sum of per-client
service cycles.

Lifecycle::

    ex = accelerator.frame_execution(sequence, k, temporal=cache)
    while not ex.done:
        charged = ex.run(max_steps=quantum)   # suspend point
    report = ex.finish()                      # bus + energy + cache commit

``finish()`` finalises the frame exactly once: RGB scan-out bus traffic,
energy for the accumulated busy time, and — for sequence frames — the
temporal vertex-cache commit at the frame boundary.  A client departing
mid-frame calls :meth:`~FrameExecution.abandon` instead, which charges
energy for the work actually executed but never commits the cache and
never bills the (undelivered) scan-out.

Frames recorded as pose replays execute in *scan-out mode*: a single
step charging the framebuffer scan-out, identical to
:meth:`~repro.arch.accelerator.ASDRAccelerator.simulate_scanout`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.accelerator import ASDRAccelerator, SimReport


#: Sentinel distinguishing "commit with tag None" from "do not commit".
_NO_COMMIT = object()


class FrameExecution:
    """Cursor-style execution of one frame on one accelerator design.

    Do not construct directly — use
    :meth:`~repro.arch.accelerator.ASDRAccelerator.frame_execution` (for
    sequence frames) or
    :meth:`~repro.arch.accelerator.ASDRAccelerator.trace_execution` (for
    bare frame traces).  The constructor mirrors the keyword surface of
    the old ``simulate_trace``; every override keeps its exact meaning.

    Attributes:
        trace: The frame's :class:`~repro.exec.frame_trace.FrameTrace`.
        report: The partial :class:`~repro.arch.accelerator.SimReport`
            accumulated so far (finalised by :meth:`finish`).
    """

    def __init__(
        self,
        accelerator: "ASDRAccelerator",
        trace,
        *,
        group_size: Optional[int] = None,
        color_fraction: Optional[float] = None,
        difficulty_evals: Optional[int] = None,
        rendered_pixels: Optional[int] = None,
        temporal=None,
        memo_scope=None,
        wavefront_log: Optional[List[Tuple[Tuple, int]]] = None,
        scanout: bool = False,
        commit_tag=_NO_COMMIT,
    ) -> None:
        # Engines and batch types live under repro.arch, which imports this
        # module back through the accelerator; resolve them lazily so the
        # two layers can load in either order.
        from repro.arch.buffers import BufferModel, default_buffers
        from repro.arch.encoding_engine import EncodingEngine
        from repro.exec.frame_trace import FrameTrace

        if not isinstance(trace, FrameTrace):
            raise SimulationError(
                f"simulate_trace expects a FrameTrace, got {type(trace).__name__}"
            )
        self.accelerator = accelerator
        self.trace = trace
        self.report: "SimReport" = accelerator._new_report()
        self._temporal = temporal
        self._commit_tag = commit_tag
        self._wavefront_log = wavefront_log
        self._rendered_pixels = rendered_pixels
        self._scanout = scanout
        self._cursor = 0
        self._points_done = 0
        self._finalised = False

        if scanout:
            self._slices: List = []
            self._total_points = 0
            self._evals = 0
            self._steps_total = 1
            return

        config = accelerator.config
        self._memo_scope = trace if memo_scope is None else memo_scope
        self._color_fraction = color_fraction
        self._encoding_engine = EncodingEngine(config, accelerator.grid)
        scale = "edge" if "edge" in config.name else "server"
        self._buffers = BufferModel(default_buffers(scale))
        self._resolutions = [int(r) for r in accelerator.grid.level_resolutions]
        self._color_used = accelerator._effective_color_used(trace, group_size)
        # Empty slices charge nothing in any consumer; dropping them up
        # front keeps `step` meaningful (every step prices real work).
        self._slices = [
            sl for sl in trace.split(config.wavefront_rays) if sl.num_points > 0
        ]
        self._total_points = sum(sl.num_points for sl in self._slices)
        self._evals = (
            trace.difficulty_evals if difficulty_evals is None else difficulty_evals
        )
        self._steps_total = len(self._slices) + (1 if self._evals else 0)

    # ------------------------------------------------------------------
    # Cursor state
    # ------------------------------------------------------------------
    @property
    def steps_total(self) -> int:
        """Wavefront steps this frame comprises (adaptive tail included)."""
        return self._steps_total

    @property
    def steps_done(self) -> int:
        return self._cursor

    @property
    def done(self) -> bool:
        """All steps executed (the frame still needs :meth:`finish`)."""
        return self._cursor >= self._steps_total

    @property
    def service_cycles(self) -> int:
        """Cycles charged so far — the partial frame's accelerator time."""
        return self.report.total_cycles

    @property
    def points_done(self) -> int:
        """Density-MLP points executed so far (cost-model feedback)."""
        return self._points_done

    @property
    def remaining_points(self) -> int:
        """Density-MLP points the remaining steps will execute — the
        scheduler's remaining-work signal for preemption-aware estimates
        (queried every scheduling decision, so it must stay O(1))."""
        return self._total_points - self._points_done

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Execute the next wavefront step; returns the cycles it charged.

        Raises:
            SimulationError: When the execution already completed.
        """
        if self.done:
            raise SimulationError("FrameExecution already ran to completion")
        if self._scanout:
            charge = self._scanout_cycles()
        elif self._cursor < len(self._slices):
            charge = self._wavefront_step(self._slices[self._cursor])
        else:
            charge = self._adaptive_tail_step()
        self._cursor += 1
        self.report.total_cycles += charge
        return charge

    def run(self, max_steps: Optional[int] = None) -> int:
        """Execute up to ``max_steps`` steps (all remaining when ``None``);
        returns the cycles charged.  This is the preemption quantum: the
        serving event loop calls ``run(quantum)`` and may hand the
        accelerator to another client before calling it again."""
        charged = 0
        steps = self._steps_total - self._cursor
        if max_steps is not None:
            if max_steps <= 0:
                raise SimulationError("max_steps must be positive")
            steps = min(steps, max_steps)
        for _ in range(steps):
            charged += self.step()
        return charged

    def _wavefront_step(self, sl) -> int:
        from repro.arch.trace import EncodingBatch

        num_points = sl.num_points
        corners = {
            level: sl.corners(self._resolutions[level])
            for level in range(self.accelerator.grid.num_levels)
        }
        batch = EncodingBatch(
            corners=corners,
            point_ray=sl.point_ray(),
            num_points=num_points,
            memo=self._memo_scope.memo_hook(
                (sl.index, sl.points.start, sl.points.stop)
            ),
        )
        enc = self._encoding_engine.process_batch(batch, temporal=self._temporal)
        if self._color_fraction is not None:
            color_points = math.ceil(num_points * self._color_fraction)
        else:
            color_points = int(self._color_used[sl.index][sl.rays].sum())
        mlp = self.accelerator.mlp_engine.process(num_points, color_points)
        ren = self.accelerator.render_engine.process(
            composited_points=num_points,
            interpolated_points=num_points - color_points,
        )
        stall = self._buffers.observe_wavefront(
            in_flight_points=min(num_points, self.accelerator.config.wavefront_rays),
            levels=self.accelerator.grid.num_levels,
            ray_working_points=num_points,
        )
        self.report.encoding.merge(enc)
        self.report.mlp.merge(mlp)
        self.report.render.merge(ren)
        self.report.buffer_stall_cycles += stall
        charge = max(enc.cycles, mlp.cycles, ren.cycles) + stall
        if self._wavefront_log is not None:
            self._wavefront_log.append(
                (("wavefront", sl.index, sl.rays.start, sl.rays.stop), charge)
            )
        self._points_done += num_points
        return charge

    def _adaptive_tail_step(self) -> int:
        # The adaptive sampling unit compares candidate renders at the
        # tail of Phase I (it cannot overlap the batches that produce its
        # inputs' final samples).
        ren = self.accelerator.render_engine.process(0, 0, self._evals)
        self.report.render.merge(ren)
        if self._wavefront_log is not None:
            self._wavefront_log.append((("adaptive_tail",), ren.cycles))
        return ren.cycles

    def _scanout_cycles(self) -> int:
        from repro.arch.bus import BusTraffic, bus_cycles

        pixels = (
            self.trace.rendered_pixels
            if self._rendered_pixels is None
            else self._rendered_pixels
        )
        return bus_cycles(BusTraffic(pixels=pixels))

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def finish(self) -> "SimReport":
        """Run any remaining steps, then finalise the frame exactly once:
        bus traffic, energy for the accumulated busy time and — when this
        execution was created for a sequence frame — the temporal
        vertex-cache commit at the frame boundary."""
        if self._finalised:
            raise SimulationError("FrameExecution already finalised")
        self.run()
        self._finalised = True
        if self._scanout:
            self.report.bus_cycles = self.report.total_cycles
        else:
            self.report.bus_cycles = self._scanout_cycles()
        self.accelerator._charge_energy(self.report)
        if (
            not self._scanout
            and self._temporal is not None
            and self._commit_tag is not _NO_COMMIT
        ):
            # Tag the committed working set with its frame so memoised
            # temporal hit masks are keyed by which resident set they were
            # computed against — a serving schedule that skips a frame the
            # alone run executed must not inherit the alone run's masks.
            self._temporal.commit_frame(tag=self._commit_tag)
        return self.report

    def abandon(self) -> "SimReport":
        """Finalise a suspended execution whose client departed: charge
        energy for the work actually executed, but never bill the
        (undelivered) scan-out and never commit the temporal cache — the
        frame boundary was never reached."""
        if self._finalised:
            raise SimulationError("FrameExecution already finalised")
        self._finalised = True
        self.accelerator._charge_energy(self.report)
        return self.report


def sequence_executions(
    accelerator: "ASDRAccelerator",
    sequence,
    group_size: Optional[int] = None,
    temporal=None,
):
    """Yield one :class:`FrameExecution` per frame of ``sequence`` in path
    order — the generator behind
    :meth:`~repro.arch.accelerator.ASDRAccelerator.simulate_sequence`.
    Each execution must be finished before the next frame's lookups are
    meaningful (the temporal cache commits at frame boundaries)."""
    for frame in range(sequence.num_frames):
        yield accelerator.frame_execution(
            sequence, frame, group_size=group_size, temporal=temporal
        )
