"""The resumable execution engine: frames as cursors over wavefront steps.

:class:`FrameExecution` is the execution unit behind every simulation
entry point of :class:`~repro.arch.accelerator.ASDRAccelerator`.  Where
the pre-refactor simulator walked a frame's wavefronts in one opaque
loop, a ``FrameExecution`` is a *cursor* over that loop: each
:meth:`~FrameExecution.step` prices exactly one budget-group wavefront
slice (re-chunked to the design's ``wavefront_rays``; the Phase I
adaptive-sampling tail is the final step), accumulating into a partial
:class:`~repro.arch.accelerator.SimReport` and carrying the frame's
engine state (encoding engine, buffer model, temporal-cache handle)
between steps.

Because each frame owns its engines and the step order is exactly the
order the monolithic loop used, an execution can be **suspended after any
step and resumed later — even with other frames' wavefronts executed in
between — and still produce bit-identical cycles and energy** to an
uninterrupted run (pinned by the golden test in
``tests/test_execution.py``).  That property is what makes
wavefront-granularity preemption in the serving layer
(:class:`~repro.serving.server.SequenceServer`) free of pricing
artefacts: the interleaved total always equals the sum of per-client
service cycles.

Lifecycle::

    ex = accelerator.frame_execution(sequence, k, temporal=cache)
    while not ex.done:
        charged = ex.run(max_steps=quantum)   # suspend point
    report = ex.finish()                      # bus + energy + cache commit

``finish()`` finalises the frame exactly once: RGB scan-out bus traffic,
energy for the accumulated busy time, and — for sequence frames — the
temporal vertex-cache commit at the frame boundary.  A client departing
mid-frame calls :meth:`~FrameExecution.abandon` instead, which charges
energy for the work actually executed but never commits the cache and
never bills the (undelivered) scan-out.

Frames recorded as pose replays execute in *scan-out mode*: a single
step charging the framebuffer scan-out, identical to
:meth:`~repro.arch.accelerator.ASDRAccelerator.simulate_scanout`.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.obs.events import (
    EV_EXEC_BATCH,
    EV_EXEC_STEP,
    EV_FRAME_FINISH,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.accelerator import ASDRAccelerator, SimReport
    from repro.exec.batch import FramePlan
    from repro.obs.recorder import Recorder


#: Sentinel distinguishing "commit with tag None" from "do not commit".
_NO_COMMIT = object()

#: Process-wide batched-path switch (list so :func:`scalar_engine` can
#: flip it without a ``global`` statement).
_BATCHED_ENABLED = [True]


def batched_enabled() -> bool:
    """Whether :meth:`FrameExecution.run` may route through the batched
    plan path (the default).  Off inside a :func:`scalar_engine` block or
    while the ``REPRO_SCALAR_ENGINE`` environment variable is set
    non-empty — the hooks benchmarks and CI use for honest
    scalar-vs-batched comparisons."""
    return _BATCHED_ENABLED[0] and not os.environ.get("REPRO_SCALAR_ENGINE")


@contextmanager
def scalar_engine():
    """Force stepwise pricing for the duration of the context.

    The batched plan path is bit-identical to stepping (the property the
    regression suite pins), so this only matters when *wall-clock* is the
    measurement — A/B throughput benchmarks, profiling the scalar
    baseline, or bisecting a suspected divergence."""
    previous = _BATCHED_ENABLED[0]
    _BATCHED_ENABLED[0] = False
    try:
        yield
    finally:
        _BATCHED_ENABLED[0] = previous


def _build_frame_setup(
    accelerator, trace, config, group_size, color_fraction, resolutions
):
    """The per-frame pricing setup shared by every execution of a trace.

    A pure function of the trace and the pricing knobs in its key (see
    the constructor), cached on ``trace._setup_cache``.  Every array and
    list returned is treated as read-only by the executions sharing it.
    """
    # Empty slices charge nothing in any consumer; dropping them up
    # front keeps `step` meaningful (every step prices real work).
    slices = [
        sl for sl in trace.split(config.wavefront_rays) if sl.num_points > 0
    ]
    total_points = sum(sl.num_points for sl in slices)
    if color_fraction is not None:
        slice_color_points = [
            math.ceil(sl.num_points * color_fraction) for sl in slices
        ]
    else:
        color_used = accelerator._effective_color_used(trace, group_size)
        slice_color_points = [
            int(color_used[sl.index][sl.rays].sum()) for sl in slices
        ]
    slice_in_flight = [
        min(sl.num_points, config.wavefront_rays) for sl in slices
    ]
    wavefront_offsets: dict = {}
    wavefront_order: List[int] = []
    offset = 0
    for sl in slices:
        if sl.index not in wavefront_offsets:
            wavefront_offsets[sl.index] = offset
            wavefront_order.append(sl.index)
            offset += trace.wavefronts[sl.index].num_points
    slice_base_ranges = [
        (
            wavefront_offsets[sl.index] + sl.points.start,
            wavefront_offsets[sl.index] + sl.points.stop,
        )
        for sl in slices
    ]
    corner_bases = [
        (
            np.concatenate(
                [trace.voxel_base(w, resolution) for w in wavefront_order]
            )
            if wavefront_order
            else np.empty((0, 3), dtype=np.int64)
        )
        for resolution in resolutions
    ]
    return (
        slices,
        total_points,
        slice_color_points,
        slice_in_flight,
        slice_base_ranges,
        corner_bases,
    )


class FrameExecution:
    """Cursor-style execution of one frame on one accelerator design.

    Do not construct directly — use
    :meth:`~repro.arch.accelerator.ASDRAccelerator.frame_execution` (for
    sequence frames) or
    :meth:`~repro.arch.accelerator.ASDRAccelerator.trace_execution` (for
    bare frame traces).  The constructor mirrors the keyword surface of
    the old ``simulate_trace``; every override keeps its exact meaning.

    Attributes:
        trace: The frame's :class:`~repro.exec.frame_trace.FrameTrace`.
        report: The partial :class:`~repro.arch.accelerator.SimReport`
            accumulated so far (finalised by :meth:`finish`).
    """

    def __init__(
        self,
        accelerator: "ASDRAccelerator",
        trace,
        *,
        group_size: Optional[int] = None,
        color_fraction: Optional[float] = None,
        difficulty_evals: Optional[int] = None,
        rendered_pixels: Optional[int] = None,
        temporal=None,
        memo_scope=None,
        wavefront_log: Optional[List[Tuple[Tuple, int]]] = None,
        scanout: bool = False,
        commit_tag=_NO_COMMIT,
        recorder: Optional["Recorder"] = None,
    ) -> None:
        # Engines and batch types live under repro.arch, which imports this
        # module back through the accelerator; resolve them lazily so the
        # two layers can load in either order.
        from repro.arch.buffers import BufferModel, default_buffers
        from repro.arch.encoding_engine import EncodingEngine
        from repro.exec.frame_trace import FrameTrace

        if not isinstance(trace, FrameTrace):
            raise SimulationError(
                f"simulate_trace expects a FrameTrace, got {type(trace).__name__}"
            )
        self.accelerator = accelerator
        self.trace = trace
        self.report: "SimReport" = accelerator._new_report()
        self._temporal = temporal
        self._commit_tag = commit_tag
        self._wavefront_log = wavefront_log
        self._rendered_pixels = rendered_pixels
        self._scanout = scanout
        self._cursor = 0
        self._points_done = 0
        self._finalised = False
        self._plan: Optional["FramePlan"] = None
        self._plan_record_idx = 0
        self._plan_choice: Optional[bool] = None
        # Telemetry is observer-only: a disabled recorder is normalised to
        # None here so every hot-path hook is one identity check, and the
        # emitted fields are values the engine computed anyway — the
        # cycle accounting above this line never depends on the recorder.
        self._recorder = (
            recorder if recorder is not None and recorder.enabled else None
        )

        if scanout:
            self._slices: List = []
            self._total_points = 0
            self._evals = 0
            self._steps_total = 1
            return

        config = accelerator.config
        self._memo_scope = trace if memo_scope is None else memo_scope
        self._color_fraction = color_fraction
        self._encoding_engine = EncodingEngine(config, accelerator.grid)
        scale = "edge" if "edge" in config.name else "server"
        self._buffers = BufferModel(default_buffers(scale))
        self._resolutions = [int(r) for r in accelerator.grid.level_resolutions]
        self._evals = (
            trace.difficulty_evals if difficulty_evals is None else difficulty_evals
        )

        # Everything below is a pure, read-only function of the trace and
        # the pricing knobs — slicing, per-slice color-point counts,
        # buffer-model in-flight inputs, and contiguous per-frame voxel
        # bases per level — so it is computed once per (trace, knobs) and
        # shared by every FrameExecution over the trace.  Serving
        # constructs many executions per frame (scheduling probes, plan
        # prefetch, per-policy replays); sharing the setup keeps
        # construction O(1) after the first.
        setup_key = (
            config.wavefront_rays,
            group_size,
            color_fraction,
            tuple(self._resolutions),
        )
        setup = trace._setup_cache.get(setup_key)
        if setup is None:
            setup = _build_frame_setup(
                accelerator, trace, config, group_size, color_fraction,
                self._resolutions,
            )
            trace._setup_cache[setup_key] = setup
        (
            self._slices,
            self._total_points,
            self._slice_color_points,
            self._slice_in_flight,
            self._slice_base_ranges,
            self._corner_bases,
        ) = setup
        self._steps_total = len(self._slices) + (1 if self._evals else 0)
        from repro.nerf.hashgrid import CORNER_OFFSETS

        self._corner_offsets = CORNER_OFFSETS[None, :, :]

    # ------------------------------------------------------------------
    # Cursor state
    # ------------------------------------------------------------------
    @property
    def steps_total(self) -> int:
        """Wavefront steps this frame comprises (adaptive tail included)."""
        return self._steps_total

    @property
    def steps_done(self) -> int:
        return self._cursor

    @property
    def done(self) -> bool:
        """All steps executed (the frame still needs :meth:`finish`)."""
        return self._cursor >= self._steps_total

    @property
    def service_cycles(self) -> int:
        """Cycles charged so far — the partial frame's accelerator time."""
        return self.report.total_cycles

    @property
    def points_done(self) -> int:
        """Density-MLP points executed so far (cost-model feedback)."""
        return self._points_done

    @property
    def remaining_points(self) -> int:
        """Density-MLP points the remaining steps will execute — the
        scheduler's remaining-work signal for preemption-aware estimates
        (queried every scheduling decision, so it must stay O(1))."""
        return self._total_points - self._points_done

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Execute the next wavefront step; returns the cycles it charged.

        Raises:
            SimulationError: When the execution already completed.
        """
        if self.done:
            raise SimulationError("FrameExecution already ran to completion")
        if self._scanout:
            charge = self._scanout_cycles()
        elif self._cursor < len(self._slices):
            charge = self._wavefront_step(self._cursor)
        else:
            charge = self._adaptive_tail_step()
        self._cursor += 1
        self.report.total_cycles += charge
        if self._recorder is not None:
            self._recorder.emit(
                EV_EXEC_STEP,
                self.report.total_cycles,
                step=self._cursor - 1,
                cycles=charge,
                scanout=self._scanout,
            )
        return charge

    def run(self, max_steps: Optional[int] = None) -> int:
        """Execute up to ``max_steps`` steps (all remaining when ``None``);
        returns the cycles charged.  This is the preemption quantum: the
        serving event loop calls ``run(quantum)`` and may hand the
        accelerator to another client before calling it again.

        Routed through :meth:`run_vectorized` (bit-identical, much
        faster) unless a wavefront log is attached, this is a scan-out
        frame, :func:`scalar_engine` disabled batching, or the frame is
        large *and* cold (see
        :func:`~repro.exec.batch.plan_build_worthwhile` — plan assembly
        would cost more than stepping, and both paths price
        identically)."""
        if (
            self._wavefront_log is None
            and not self._scanout
            and batched_enabled()
            and self._plan_worthwhile()
        ):
            return self.run_vectorized(max_steps)
        return self._run_stepwise(max_steps)

    def _plan_worthwhile(self) -> bool:
        """Size/reuse heuristic for the batched path, decided once per
        execution (the answer cannot improve mid-frame, and flip-flopping
        between engines would waste a partially-consumed plan)."""
        if self._plan is not None:
            return True
        if self._plan_choice is None:
            from repro.exec.batch import plan_build_worthwhile

            self._plan_choice = plan_build_worthwhile(self)
        return self._plan_choice

    def _run_stepwise(self, max_steps: Optional[int] = None) -> int:
        """The reference path: a Python loop over :meth:`step`."""
        charged = 0
        steps = self._steps_total - self._cursor
        if max_steps is not None:
            if max_steps <= 0:
                raise SimulationError("max_steps must be positive")
            steps = min(steps, max_steps)
        for _ in range(steps):
            charged += self.step()
        return charged

    def run_vectorized(self, max_steps: Optional[int] = None) -> int:
        """Batched form of :meth:`run`: price the next ``max_steps``
        consecutive slices through the frame's pre-built
        :class:`~repro.exec.batch.FramePlan` and merge their report
        fragments — bit-identical to stepping (same arithmetic, same
        accumulation order), minus the per-step numpy call overhead.

        The plan is built lazily on first use and revalidated against the
        temporal cache's resident token on every call, so an elastic
        re-partition that trims the resident set between quanta transparently
        rebuilds the remaining steps' pricing against the new content."""
        if max_steps is not None and max_steps <= 0:
            raise SimulationError("max_steps must be positive")
        if self._scanout or not batched_enabled():
            return self._run_stepwise(max_steps)
        steps = self._steps_total - self._cursor
        if max_steps is not None:
            steps = min(steps, max_steps)
        if steps <= 0:
            return 0
        token = (
            self._temporal.resident_token if self._temporal is not None else None
        )
        if self._plan is None or self._plan.temporal_token != token:
            from repro.exec.batch import build_frame_plans

            build_frame_plans([self])
        end = self._cursor + steps
        charged = 0
        points = 0
        for planned in self._plan.steps[self._cursor : end]:
            if planned.encoding is not None:
                self.report.encoding.merge(planned.encoding)
            if planned.mlp is not None:
                self.report.mlp.merge(planned.mlp)
            self.report.render.merge(planned.render)
            self.report.buffer_stall_cycles += planned.stall
            self.report.total_cycles += planned.charge
            if self._wavefront_log is not None:
                self._wavefront_log.append((planned.log_key, planned.charge))
            charged += planned.charge
            points += planned.num_points
        self._cursor = end
        self._points_done += points
        # Mixed batched/stepped use must keep striping identical: request
        # ids equal global point indices, so fast-forward the counter.
        self._encoding_engine.skip_requests(points)
        self._apply_plan_records()
        if self._recorder is not None:
            self._recorder.emit(
                EV_EXEC_BATCH,
                self.report.total_cycles,
                steps=steps,
                cycles=charged,
                points=points,
            )
        return charged

    def attach_plan(self, plan: "FramePlan") -> bool:
        """Adopt a plan built elsewhere (the serving layer prices several
        tenants' head frames in one fused batch and caches the results).
        Returns ``False`` — leaving the execution untouched — unless the
        plan is provably valid for this execution's current state: fresh
        cursor, matching step/point counts, and a temporal resident token
        equal to the one the plan's hit masks were computed against."""
        if self._scanout or self._finalised or self._cursor != 0:
            return False
        token = (
            self._temporal.resident_token if self._temporal is not None else None
        )
        if plan.temporal_token != token:
            return False
        if len(plan.steps) != self._steps_total:
            return False
        if plan.total_points != self._total_points:
            return False
        self._set_plan(plan)
        return True

    @property
    def plan(self) -> Optional["FramePlan"]:
        """The attached :class:`~repro.exec.batch.FramePlan`, if any —
        consumers (the serving layer's plan cache) may re-attach it to a
        later execution of the same frame via :meth:`attach_plan`."""
        return self._plan

    def _set_plan(self, plan: "FramePlan") -> None:
        self._plan = plan
        self._plan_record_idx = 0

    def _apply_plan_records(self) -> None:
        """Feed the plan's deferred temporal working-set records into the
        cache once their wavefronts have fully executed.  Overlap with
        records the stepped path already issued is harmless: the cache
        commit re-uniques the union, so chunk granularity never matters."""
        if self._plan is None or self._temporal is None:
            return
        records = self._plan.records
        while (
            self._plan_record_idx < len(records)
            and records[self._plan_record_idx][0] <= self._cursor
        ):
            _, level, unique_stream = records[self._plan_record_idx]
            self._temporal.record(unique_stream, level, assume_unique=True)
            self._plan_record_idx += 1

    def _wavefront_step(self, si: int) -> int:
        from repro.arch.trace import EncodingBatch

        sl = self._slices[si]
        num_points = sl.num_points
        base_start, base_stop = self._slice_base_ranges[si]
        corners = {
            level: self._corner_bases[level][base_start:base_stop].astype(
                np.int64
            )[:, None, :]
            + self._corner_offsets
            for level in range(self.accelerator.grid.num_levels)
        }
        batch = EncodingBatch(
            corners=corners,
            point_ray=sl.point_ray(),
            num_points=num_points,
            memo=self._memo_scope.memo_hook(
                (sl.index, sl.points.start, sl.points.stop)
            ),
        )
        enc = self._encoding_engine.process_batch(batch, temporal=self._temporal)
        color_points = self._slice_color_points[si]
        mlp = self.accelerator.mlp_engine.process(num_points, color_points)
        ren = self.accelerator.render_engine.process(
            composited_points=num_points,
            interpolated_points=num_points - color_points,
        )
        stall = self._buffers.observe_wavefront(
            in_flight_points=self._slice_in_flight[si],
            levels=self.accelerator.grid.num_levels,
            ray_working_points=num_points,
        )
        self.report.encoding.merge(enc)
        self.report.mlp.merge(mlp)
        self.report.render.merge(ren)
        self.report.buffer_stall_cycles += stall
        charge = max(enc.cycles, mlp.cycles, ren.cycles) + stall
        if self._wavefront_log is not None:
            self._wavefront_log.append(
                (("wavefront", sl.index, sl.rays.start, sl.rays.stop), charge)
            )
        self._points_done += num_points
        return charge

    def _adaptive_tail_step(self) -> int:
        # The adaptive sampling unit compares candidate renders at the
        # tail of Phase I (it cannot overlap the batches that produce its
        # inputs' final samples).
        ren = self.accelerator.render_engine.process(0, 0, self._evals)
        self.report.render.merge(ren)
        if self._wavefront_log is not None:
            self._wavefront_log.append((("adaptive_tail",), ren.cycles))
        return ren.cycles

    def _scanout_cycles(self) -> int:
        from repro.arch.bus import BusTraffic, bus_cycles

        pixels = (
            self.trace.rendered_pixels
            if self._rendered_pixels is None
            else self._rendered_pixels
        )
        return bus_cycles(BusTraffic(pixels=pixels))

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def finish(self) -> "SimReport":
        """Run any remaining steps, then finalise the frame exactly once:
        bus traffic, energy for the accumulated busy time and — when this
        execution was created for a sequence frame — the temporal
        vertex-cache commit at the frame boundary."""
        if self._finalised:
            raise SimulationError("FrameExecution already finalised")
        self.run()
        # Catch-up for mixed batched/stepped histories: any plan records
        # not yet applied (their wavefronts finished via step()) must land
        # in the pending set before the commit below.
        self._apply_plan_records()
        self._finalised = True
        if self._scanout:
            self.report.bus_cycles = self.report.total_cycles
        else:
            self.report.bus_cycles = self._scanout_cycles()
        self.accelerator._charge_energy(self.report)
        if (
            not self._scanout
            and self._temporal is not None
            and self._commit_tag is not _NO_COMMIT
        ):
            # Tag the committed working set with its frame so memoised
            # temporal hit masks are keyed by which resident set they were
            # computed against — a serving schedule that skips a frame the
            # alone run executed must not inherit the alone run's masks.
            self._temporal.commit_frame(tag=self._commit_tag)
        if self._recorder is not None:
            self._recorder.emit(
                EV_FRAME_FINISH,
                self.report.total_cycles,
                total_cycles=self.report.total_cycles,
                encoding_cycles=self.report.encoding.cycles,
                mlp_cycles=self.report.mlp.cycles,
                render_cycles=self.report.render.cycles,
                stall_cycles=self.report.buffer_stall_cycles,
                bus_cycles=self.report.bus_cycles,
                energy_joules=self.report.energy_joules,
                scanout=self._scanout,
            )
        return self.report

    def abandon(self) -> "SimReport":
        """Finalise a suspended execution whose client departed: charge
        energy for the work actually executed, but never bill the
        (undelivered) scan-out and never commit the temporal cache — the
        frame boundary was never reached."""
        if self._finalised:
            raise SimulationError("FrameExecution already finalised")
        self._finalised = True
        self.accelerator._charge_energy(self.report)
        return self.report


def sequence_executions(
    accelerator: "ASDRAccelerator",
    sequence,
    group_size: Optional[int] = None,
    temporal=None,
):
    """Yield one :class:`FrameExecution` per frame of ``sequence`` in path
    order — the generator behind
    :meth:`~repro.arch.accelerator.ASDRAccelerator.simulate_sequence`.
    Each execution must be finished before the next frame's lookups are
    meaningful (the temporal cache commits at frame boundaries)."""
    for frame in range(sequence.num_frames):
        yield accelerator.frame_execution(
            sequence, frame, group_size=group_size, temporal=temporal
        )
