"""The SequenceTrace IR: a camera-path's frames, captured once, reused often.

A :class:`SequenceTrace` is the multi-frame sibling of
:class:`~repro.exec.frame_trace.FrameTrace`: an ordered list of per-frame
traces plus the camera-path identity that produced them and the temporal
structure the sequence layer exploits.  The dataflow is::

    CameraPath.cameras()
        └─ renderer (ASDRRenderer.render_sequence / render_camera_path)
            └─ emits SequenceTrace (FrameTrace per frame, pose-replay map,
               plan-reuse flags)
                ├─ ASDRAccelerator.simulate_sequence  (temporal vertex
                │    cache prices cross-frame corner reuse; replayed
                │    frames cost framebuffer scan-out only)
                └─ SequenceTrace.temporal_deltas      (ray-budget overlap,
                     voxel-corner working-set and corner-stream deltas)

Three reuse levels ride on the IR:

* **Whole-frame replay** — frames whose camera pose is bit-identical to an
  earlier frame (``shake`` periods, ``hold`` pulldown, a parked camera)
  record ``replays[k] = j`` and share frame ``j``'s trace and image; the
  simulator prices them at RGB scan-out cost only.
* **Sampling-plan reuse** — non-keyframes skip Phase I and render with the
  previous keyframe's budget map (``planned[k] = False``); their traces
  carry no probe wavefronts, so every downstream consumer automatically
  prices the skipped probe work.  This is the profile-guided lever: the
  hot execution structure measured on one frame steers the next.
* **Temporal vertex reuse** — consecutive frames march overlapping
  world-space voxels; :meth:`temporal_deltas` measures the overlap and the
  accelerator's temporal vertex cache turns it into skipped crossbar reads.

The sequence owns a bounded cross-frame memo (:meth:`SequenceTrace.memo`)
so repeated simulations of one sequence — a design sweep, a warm benchmark
run — derive address gaps and temporal hit masks once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.exec.frame_trace import FrameTrace
from repro.scenes.cameras import Camera

#: Per-sequence ceiling on memoised stream-derived values (address
#: streams, gap arrays, temporal hit masks); beyond the cap values are
#: recomputed on demand.  Sized so one acceptance-scale sequence (4 frames
#: at 56x56, 8 levels) caches its full working set in compact dtypes.
SEQUENCE_MEMO_MAX_VALUES = 2**26


def pose_key(camera: Camera) -> bytes:
    """Bit-exact identity of a camera's pose and intrinsics.

    Two cameras with equal keys trace identical rays, so a frame rendered
    for one can be replayed for the other without any quality change —
    within one sequence (``hold``/``shake`` replays) and across serving
    clients (cross-client content replay).

    Example:
        >>> from repro.scenes.cameras import camera_path
        >>> cams = camera_path("orbit", 2, 8, 8, arc=0.25).cameras()
        >>> pose_key(cams[0]) == pose_key(cams[0])
        True
        >>> pose_key(cams[0]) == pose_key(cams[1])
        False
    """
    intrinsics = np.array(
        [camera.width, camera.height, camera.focal], dtype=np.float64
    )
    return intrinsics.tobytes() + np.ascontiguousarray(
        camera.camera_to_world, dtype=np.float64
    ).tobytes()


@dataclass(frozen=True)
class TemporalDelta:
    """Measured coherence between one frame and its predecessor.

    Attributes:
        frame: Index of the later frame (delta is frame-1 -> frame).
        ray_budget_overlap: Fraction of pixels whose per-ray sample budget
            is unchanged between the two frames (the structure sampling-
            plan reuse banks on).
        corner_overlap: Per requested resolution: fraction of this frame's
            *unique* voxel bases already touched by the previous frame
            (working-set coherence).
        stream_overlap: Per requested resolution: fraction of this frame's
            voxel-base *stream* (occurrence-weighted, the register-cache
            view of the corner traffic) that lands in the previous frame's
            working set — the upper bound a temporal vertex cache can hit.
    """

    frame: int
    ray_budget_overlap: float
    corner_overlap: Dict[int, float]
    stream_overlap: Dict[int, float]


@dataclass
class SequenceTrace:
    """Execution trace of a rendered camera-path sequence.

    Attributes:
        frames: Per-frame traces in path order.  A replayed frame shares
            its source frame's :class:`FrameTrace` object.
        path_key: Stable identity of the generating camera path (e.g.
            :meth:`repro.scenes.cameras.CameraPath.cache_key`).
        kind: ``"asdr"`` or ``"baseline"`` (matches the frame traces).
        replays: ``replays[k] = j`` when frame ``k`` is a bit-identical
            pose replay of earlier frame ``j`` (``None`` otherwise).
        planned: ``planned[k]`` is True when frame ``k`` ran its own
            Phase I (keyframe); False for sampling-plan-reuse frames.
    """

    frames: List[FrameTrace]
    path_key: Tuple = ()
    kind: str = "asdr"
    replays: List[Optional[int]] = field(default_factory=list)
    planned: List[bool] = field(default_factory=list)
    _memo: Dict[Tuple, np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _memo_values: int = field(default=0, init=False, repr=False, compare=False)
    _deltas: Dict[Tuple, List[TemporalDelta]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _content_token: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.frames:
            raise SimulationError("a SequenceTrace needs at least one frame")
        if not self.replays:
            self.replays = [None] * len(self.frames)
        if not self.planned:
            self.planned = [True] * len(self.frames)
        if not (len(self.frames) == len(self.replays) == len(self.planned)):
            raise SimulationError(
                "frames, replays and planned must share one length"
            )
        pixels = {t.num_pixels for t in self.frames}
        if len(pixels) != 1:
            raise SimulationError(
                f"sequence frames must share one resolution, got {sorted(pixels)}"
            )
        for k, j in enumerate(self.replays):
            if j is None:
                continue
            if not 0 <= j < k:
                raise SimulationError(
                    f"frame {k} replays invalid earlier frame {j}"
                )
            if self.frames[k] is not self.frames[j]:
                raise SimulationError(
                    f"replayed frame {k} must share frame {j}'s trace object"
                )

    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def num_pixels(self) -> int:
        return self.frames[0].num_pixels

    @property
    def replayed_frames(self) -> int:
        return sum(1 for j in self.replays if j is not None)

    @property
    def planned_frames(self) -> int:
        return sum(1 for p in self.planned if p)

    @property
    def density_points(self) -> int:
        """Total density-MLP points across the sequence (replays included —
        they re-emit a rendered frame, not new MLP work; see
        :meth:`executed_density_points` for the work actually executed)."""
        return sum(t.density_points for t in self.frames)

    def executed_density_points(self) -> int:
        """Density points of the frames that actually executed (replayed
        frames re-derive nothing)."""
        return sum(
            t.density_points
            for k, t in enumerate(self.frames)
            if self.replays[k] is None
        )

    def content_token(self) -> bytes:
        """Stable digest of the whole sequence's content: per-frame trace
        digests plus the replay/plan structure and path identity.

        Two sequences with equal tokens simulate identically, so caches
        that outlive trace objects (the serving layer's cross-run plan
        cache) key by this token — never by ``id()``, which CPython
        recycles after garbage collection.  Twin clients sharing one
        memoised trace object trivially share the token; equal-content
        sequences rebuilt via :meth:`from_dict` share it too.  Computed
        once and cached (sequences are immutable once recorded).
        """
        if self._content_token is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(
                repr(
                    (
                        self.kind,
                        self.path_key,
                        tuple(self.planned),
                        tuple(
                            -1 if j is None else j for j in self.replays
                        ),
                    )
                ).encode()
            )
            for k, frame in enumerate(self.frames):
                if self.replays[k] is None:
                    h.update(frame.content_digest())
            self._content_token = h.digest()
        return self._content_token

    # ------------------------------------------------------------------
    # Cross-frame memoisation
    # ------------------------------------------------------------------
    def memo(self, key: Tuple, compute: Callable[[], np.ndarray]) -> np.ndarray:
        """Memoise a stream-derived array under ``key`` (bounded).

        Unlike the per-frame :meth:`FrameTrace.memo` (which caches on the
        second request), sequences cache immediately: a sequence exists to
        be replayed, and its first simulation already visits every frame.
        """
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        value = compute()
        if self._memo_values + value.size <= SEQUENCE_MEMO_MAX_VALUES:
            self._memo[key] = value
            self._memo_values += value.size
        return value

    def memo_hook(self, prefix: Tuple) -> Callable:
        """A ``(key, compute)`` hook scoped under ``prefix`` (typically a
        frame index), handed to the simulator's encoding batches."""
        return lambda key, compute: self.memo(prefix + key, compute)

    def memo_contains(self, key: Tuple) -> bool:
        """Whether ``key`` is already memoised (the batched engine's
        cold-plan heuristic probes stream warmth before building)."""
        return key in self._memo

    # ------------------------------------------------------------------
    # Temporal diff pass
    # ------------------------------------------------------------------
    def _frame_budget_map(self, trace: FrameTrace) -> np.ndarray:
        """Per-pixel executed budget of one frame (probe rays report the
        full budget — Phase I rendered them at it)."""
        budgets = np.zeros(trace.num_pixels, dtype=np.int64)
        for wf in trace.wavefronts:
            budgets[wf.ray_ids] = wf.budget
        return budgets

    def _frame_voxel_ids(
        self, frame: int, resolution: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(stream, unique)`` scalar voxel ids of one frame's corner
        traffic at ``resolution`` (memoised)."""

        def compute_stream() -> np.ndarray:
            trace = self.frames[frame]
            chunks = []
            stride = resolution + 1
            for index in range(len(trace.wavefronts)):
                base = trace.voxel_base(index, resolution).astype(np.int64)
                chunks.append(
                    (base[:, 2] * stride + base[:, 1]) * stride + base[:, 0]
                )
            if not chunks:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(chunks)

        stream = self.memo(("voxel_stream", frame, resolution), compute_stream)
        unique = self.memo(
            ("voxel_unique", frame, resolution), lambda: np.unique(stream)
        )
        return stream, unique

    def temporal_deltas(
        self, resolutions: Sequence[int] = (64,)
    ) -> List[TemporalDelta]:
        """Diff consecutive frames' wavefronts (cached per resolution set).

        Returns one :class:`TemporalDelta` per frame after the first,
        measuring how much of the frame's execution structure the previous
        frame already derived.
        """
        cache_key = tuple(int(r) for r in resolutions)
        if cache_key in self._deltas:
            return self._deltas[cache_key]
        deltas: List[TemporalDelta] = []
        prev_budgets = self._frame_budget_map(self.frames[0])
        for k in range(1, self.num_frames):
            budgets = self._frame_budget_map(self.frames[k])
            ray_overlap = float(np.mean(budgets == prev_budgets))
            corner_overlap: Dict[int, float] = {}
            stream_overlap: Dict[int, float] = {}
            for res in cache_key:
                stream, unique = self._frame_voxel_ids(k, res)
                _, prev_unique = self._frame_voxel_ids(k - 1, res)
                if unique.size == 0:
                    corner_overlap[res] = 0.0
                    stream_overlap[res] = 0.0
                    continue
                shared = np.intersect1d(
                    unique, prev_unique, assume_unique=True
                ).size
                corner_overlap[res] = shared / unique.size
                stream_overlap[res] = float(
                    np.mean(np.isin(stream, prev_unique))
                )
            deltas.append(
                TemporalDelta(
                    frame=k,
                    ray_budget_overlap=ray_overlap,
                    corner_overlap=corner_overlap,
                    stream_overlap=stream_overlap,
                )
            )
            prev_budgets = budgets
        self._deltas[cache_key] = deltas
        return deltas

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    @staticmethod
    def _key_to_json(value):
        """Nested key tuples -> JSON lists (ints/floats/strings pass
        through, so :meth:`from_dict` restores the exact key)."""
        if isinstance(value, (tuple, list)):
            return [SequenceTrace._key_to_json(v) for v in value]
        return value

    @staticmethod
    def _key_from_json(value):
        if isinstance(value, list):
            return tuple(SequenceTrace._key_from_json(v) for v in value)
        return value

    def to_dict(self) -> Dict:
        """JSON-serialisable form.  Replayed frames store a reference to
        their source frame instead of duplicating the trace."""
        frames = []
        for k, trace in enumerate(self.frames):
            if self.replays[k] is not None:
                frames.append({"replay_of": self.replays[k]})
            else:
                frames.append(trace.to_dict())
        return {
            "schema": "sequence_trace/v1",
            "kind": self.kind,
            "path_key": self._key_to_json(self.path_key),
            "planned": list(self.planned),
            "frames": frames,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SequenceTrace":
        """Rebuild a sequence from :meth:`to_dict` output (fresh caches)."""
        if data.get("schema") != "sequence_trace/v1":
            raise SimulationError(
                f"unsupported SequenceTrace schema {data.get('schema')!r}"
            )
        frames: List[FrameTrace] = []
        replays: List[Optional[int]] = []
        for entry in data["frames"]:
            if "replay_of" in entry:
                source = int(entry["replay_of"])
                if not 0 <= source < len(frames):
                    raise SimulationError(
                        f"frame {len(frames)} replays invalid earlier "
                        f"frame {source}"
                    )
                frames.append(frames[source])
                replays.append(source)
            else:
                frames.append(FrameTrace.from_dict(entry))
                replays.append(None)
        return cls(
            frames=frames,
            path_key=cls._key_from_json(data.get("path_key", [])),
            kind=data.get("kind", "asdr"),
            replays=replays,
            planned=[bool(p) for p in data.get("planned", [])],
        )


@dataclass
class SequenceRender:
    """A rendered sequence: per-frame results plus the sequence trace.

    ``results[k]`` is the renderer's result object for frame ``k``
    (replayed frames share their source frame's object); ``trace`` is the
    :class:`SequenceTrace` the simulator and profilers replay.
    """

    results: List[object]
    trace: SequenceTrace

    @property
    def images(self) -> List[np.ndarray]:
        return [r.image for r in self.results]


def render_camera_path(
    render_fn: Callable[[Camera], object],
    cameras: Sequence[Camera],
    path_key: Tuple = (),
    kind: str = "baseline",
    reuse_poses: bool = True,
) -> SequenceRender:
    """Render a camera path frame by frame with whole-frame pose replay.

    The generic sequence driver for renderers without cross-frame state
    (the fixed-budget baseline): each camera is rendered through
    ``render_fn`` unless its pose is bit-identical to an earlier frame's,
    in which case that frame's result is replayed.  ASDR sequences go
    through :meth:`repro.core.pipeline.ASDRRenderer.render_sequence`,
    which adds sampling-plan reuse on top of the same replay logic.

    Args:
        render_fn: ``camera -> result``; the result must carry a
            ``trace`` (:class:`FrameTrace`) and an ``image``.
        cameras: The path's cameras in order.
        path_key: Identity tuple stored on the sequence trace.
        kind: Trace kind recorded on the sequence.
        reuse_poses: Disable to force every frame to render fresh.
    """
    results: List[object] = []
    frames: List[FrameTrace] = []
    replays: List[Optional[int]] = []
    seen: Dict[bytes, int] = {}
    for k, camera in enumerate(cameras):
        key = pose_key(camera)
        source = seen.get(key) if reuse_poses else None
        if source is not None:
            results.append(results[source])
            frames.append(frames[source])
            replays.append(source)
            continue
        result = render_fn(camera)
        trace = getattr(result, "trace", None)
        if trace is None:
            raise SimulationError(
                "sequence rendering requires trace-carrying results; "
                f"frame {k}'s renderer returned none"
            )
        seen.setdefault(key, k)
        results.append(result)
        frames.append(trace)
        replays.append(None)
    return SequenceRender(
        results=results,
        trace=SequenceTrace(
            frames=frames, path_key=path_key, kind=kind, replays=replays
        ),
    )
