"""Shared execution layer: the FrameTrace IR and wavefront scheduling.

One frame is rendered exactly once; everything downstream — the cycle-level
accelerator simulator, the encoding-engine corner streams, and the locality
profilers — replays the :class:`~repro.exec.frame_trace.FrameTrace` the
renderer emitted instead of re-deriving rays, sample points and voxel
corners from ``(camera, budgets)``.  The dataflow is::

    renderer (core.pipeline / nerf.renderer)
        └─ emits FrameTrace (per-wavefront ray ids, sample points, hit
           masks, post-early-termination used counts, anchor structure)
            ├─ arch.accelerator.ASDRAccelerator.simulate_trace
            ├─ arch.trace.encoding_corner_stream / hash_address_trace
            └─ arch.trace.repetition_profile

:mod:`repro.exec.scheduler` holds the budget-group wavefront scheduler the
renderer, the trace generator and the simulator all share.
"""

from repro.exec.frame_trace import (
    PHASE_MAIN,
    PHASE_PROBE,
    FrameTrace,
    TraceWavefront,
    WavefrontSlice,
)
from repro.exec.scheduler import budget_groups, iter_budget_wavefronts, iter_wavefronts

__all__ = [
    "PHASE_MAIN",
    "PHASE_PROBE",
    "FrameTrace",
    "TraceWavefront",
    "WavefrontSlice",
    "budget_groups",
    "iter_budget_wavefronts",
    "iter_wavefronts",
]
