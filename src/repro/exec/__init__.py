"""Shared execution layer: FrameTrace/SequenceTrace IR and scheduling.

One frame is rendered exactly once; everything downstream — the cycle-level
accelerator simulator, the encoding-engine corner streams, and the locality
profilers — replays the :class:`~repro.exec.frame_trace.FrameTrace` the
renderer emitted instead of re-deriving rays, sample points and voxel
corners from ``(camera, budgets)``.  Multi-frame (video) workloads lift the
same idea across frames: a :class:`~repro.exec.sequence.SequenceTrace`
orders the per-frame traces along a camera path and records the temporal
structure (pose replays, plan reuse, corner-stream overlap) the sequence
simulator prices.  The dataflow is::

    renderer (core.pipeline / nerf.renderer)
        └─ emits FrameTrace (per-wavefront ray ids, sample points, hit
           masks, post-early-termination used counts, anchor structure)
            ├─ arch.accelerator.ASDRAccelerator.simulate_trace
            ├─ arch.trace.encoding_corner_stream / hash_address_trace
            └─ arch.trace.repetition_profile
    CameraPath └─ render_sequence ─ emits SequenceTrace (FrameTrace list)
            └─ arch.accelerator.ASDRAccelerator.simulate_sequence

Multi-tenant serving (:mod:`repro.serving`) schedules at one granularity
up again: a :class:`~repro.exec.scheduler.FrameWorkItem` is one frame of
one client's SequenceTrace, and
:class:`~repro.exec.scheduler.TemporalCachePartitions` splits the
temporal vertex cache among tenants sharing an accelerator.

:mod:`repro.exec.scheduler` holds the budget-group wavefront scheduler the
renderer, the trace generator and the simulator all share, plus those
frame-granularity serving primitives.
"""

from repro.exec.batch import FramePlan, PlannedStep, build_frame_plans
from repro.exec.execution import (
    FrameExecution,
    batched_enabled,
    scalar_engine,
    sequence_executions,
)
from repro.exec.frame_trace import (
    PHASE_MAIN,
    PHASE_PROBE,
    FrameTrace,
    TraceWavefront,
    WavefrontSlice,
)
from repro.exec.scheduler import (
    WORK_PROBE,
    WORK_REPLAY,
    WORK_REUSE,
    FrameWorkItem,
    TemporalCachePartitions,
    budget_groups,
    iter_budget_wavefronts,
    iter_wavefronts,
    sequence_work_items,
)
from repro.exec.sequence import (
    SequenceRender,
    SequenceTrace,
    TemporalDelta,
    pose_key,
    render_camera_path,
)

__all__ = [
    "FrameExecution",
    "FramePlan",
    "PHASE_MAIN",
    "PHASE_PROBE",
    "PlannedStep",
    "batched_enabled",
    "build_frame_plans",
    "scalar_engine",
    "sequence_executions",
    "WORK_PROBE",
    "WORK_REPLAY",
    "WORK_REUSE",
    "FrameTrace",
    "FrameWorkItem",
    "TemporalCachePartitions",
    "TraceWavefront",
    "WavefrontSlice",
    "SequenceRender",
    "SequenceTrace",
    "TemporalDelta",
    "pose_key",
    "render_camera_path",
    "budget_groups",
    "iter_budget_wavefronts",
    "iter_wavefronts",
    "sequence_work_items",
]
