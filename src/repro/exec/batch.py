"""Batched wavefront pricing: the vectorised fast path of FrameExecution.

Profiling the serving event loop (``repro serve --profile``) shows the
wall clock living in per-slice, per-level numpy calls: every
:meth:`~repro.exec.execution.FrameExecution.step` rebuilds corner arrays,
re-sums color masks and issues one small ``np.unique`` / ``np.isin`` /
bank-conflict replay per resolution level.  This module collapses that
call-shaped loop into array shape: :func:`build_frame_plans` prices every
wavefront slice of one or more frames with **one numpy pass per
resolution level per frame** (and a single crossbar conflict replay for
the whole batch) and stores the results as a :class:`FramePlan` — a
per-step list of pre-assembled report fragments the execution cursor
merges in plain Python, plus the per-level unique address sets the
temporal cache records before the frame-boundary commit.

**Bit-identity is the contract.**  A plan entry holds exactly what
``step()`` would have produced for that slice, computed with the same
arithmetic in the same order:

* per-slice access-distance gaps come from *one* call of
  :func:`~repro.cim.cache.previous_occurrence_gaps` over the frame's
  concatenated stream, keyed as ``slice_id * stride + address`` — chunk
  offsets larger than any address make cross-slice matches impossible
  while preserving exact within-slice distances;
* per-slice crossbar conflicts come from one
  :meth:`~repro.cim.memxbar.MemXbarBank.read_cycles_segments` pass (the
  conflict model is additive over issue groups, so segment sums equal
  per-slice replays exactly; bank outputs depend only on the crossbar
  geometry, never on a level's entry count, so every level — and every
  tenant sharing an accelerator design — batches into one call);
* the non-linear per-slice arithmetic — ``ceil`` address-generation and
  fusion terms, ``max`` stage combining, MLP/render engine pricing,
  buffer stalls — is *not* vectorised across slices: it is replicated
  verbatim per slice (cheap scalar math), because those expressions do
  not distribute over batches;
* float accumulation (crossbar/MLP energy) keeps the stepped engine's
  left-fold order: per level within a slice, then per slice.

Temporal-cache state: lookups are evaluated against the resident set at
plan-build time and the plan carries the cache's
:attr:`~repro.cim.cache.TemporalVertexCache.resident_token`; the
execution cursor revalidates the token on every batched advance (and at
:meth:`~repro.exec.execution.FrameExecution.attach_plan`), so an elastic
re-partition that trims the resident set mid-frame forces a rebuild
against the new content instead of replaying stale hit masks.  Recorded
working sets are deferred: the pending set is invisible to every lookup
until the frame-boundary commit, and
:meth:`~repro.cim.cache.TemporalVertexCache.commit_frame` re-uniques the
union of all pending chunks, so one deduplicated per-level record at the
frame's end commits exactly what per-slice recording would have.

Plan building is *observably* side-effect free: it touches no
``SimReport``, never records into or commits the temporal cache, and
advances no request counter.  (Private diagnostic counters — register/
temporal cache hit statistics — are maintained for parity, and the
derived streams memoise on the trace.)  That is what makes the
cross-tenant seam in :class:`~repro.serving.server.SequenceServer` sound:
when several ready clients have unstarted fresh head frames, their plans
are built in one fused batch and held until each frame is actually
scheduled — every head frame's resident set is already committed by its
predecessor, so the prices cannot depend on how the quanta interleave.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cim.cache import CacheStats, previous_occurrence_gaps
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.encoding_engine import EncodingReport
    from repro.exec.execution import FrameExecution


@dataclass(frozen=True)
class PlannedStep:
    """One wavefront step's pre-assembled pricing.

    ``encoding``/``mlp`` are ``None`` for the Phase I adaptive-sampling
    tail step (which only exercises the render engine).  The fragments
    are immutable once built — a plan may be replayed by several
    executions (the server's cross-run plan cache), so consumers merge
    *from* them and never into them.
    """

    charge: int
    num_points: int
    encoding: Optional["EncodingReport"]
    mlp: Optional[object]
    render: object
    stall: int
    log_key: Tuple


@dataclass
class FramePlan:
    """Pre-priced wavefront steps of one frame, plus deferred records.

    Attributes:
        steps: One :class:`PlannedStep` per execution step, in step order.
        records: ``(step_threshold, level, unique_addresses)`` triples —
            the frame's per-level temporal working set, recorded into the
            cache's pending set once the cursor passes ``step_threshold``
            (and unconditionally at ``finish()``, always before the
            frame-boundary commit that makes the pending set visible).
        temporal_token: The resident-content token the temporal hit masks
            were computed against (``None`` when priced without a cache).
        total_points: Density-MLP points over all steps (plan/execution
            compatibility check).
    """

    steps: List[PlannedStep]
    records: List[Tuple[int, int, np.ndarray]]
    temporal_token: Optional[tuple]
    total_points: int


def build_frame_plans(
    executions: Sequence["FrameExecution"],
) -> List[FramePlan]:
    """Price every wavefront slice of ``executions`` in fused numpy passes.

    Accepts any number of (non-scanout) executions — one frame resuming
    its own cursor, or the head frames of several serving tenants batched
    together.  Each execution's plan is attached to it and also returned,
    in order.
    """
    pricings = [_price_encoding(ex) for ex in executions]
    _fused_bank_pass(executions, pricings)
    plans = [_assemble_plan(ex, pricing) for ex, pricing in zip(executions, pricings)]
    for ex, plan in zip(executions, plans):
        ex._set_plan(plan)
        if ex._recorder is not None:
            from repro.obs.events import EV_PLAN_BUILD

            ex._recorder.emit(
                EV_PLAN_BUILD,
                ex.report.total_cycles,
                steps=len(plan.steps),
                points=plan.total_points,
                batch_size=len(executions),
            )
    return plans


#: Density-point count above which a *cold* frame (no memoised streams,
#: no reuse signal) is cheaper to run on the stepped engine than to plan:
#: plan assembly is dominated by the fused whole-frame stream
#: derivations, whose cost grows superlinearly with the concatenated
#: stream length while their payoff (per-step numpy call overhead
#: removed) grows only with step count.  Measured on the
#: `benchmarks/test_engine_throughput.py` cold-frame sweep (planning won
#: below ~47k points, lost 1.3-3.9x from ~94k up); override with
#: ``REPRO_COLD_PLAN_LIMIT`` (``0`` disables the fallback entirely,
#: i.e. always plan).
COLD_PLAN_POINT_LIMIT = 65_536


def cold_plan_point_limit() -> int:
    """The cold-frame point limit, honouring ``REPRO_COLD_PLAN_LIMIT``."""
    raw = os.environ.get("REPRO_COLD_PLAN_LIMIT")
    if raw is None:
        return COLD_PLAN_POINT_LIMIT
    try:
        return int(raw)
    except ValueError:
        raise SimulationError(
            f"REPRO_COLD_PLAN_LIMIT must be an integer, got {raw!r}"
        ) from None


def plan_build_worthwhile(ex: "FrameExecution") -> bool:
    """Whether planning ``ex`` beats stepping it — the size/reuse
    heuristic behind the engine's cold-plan fallback.

    Planning always wins on small/medium frames and on any frame whose
    derived streams are already warm on the trace memo (a replayed frame,
    or a serving tenant whose plan was batched earlier — replaying
    memoised streams skips the expensive derivations, so assembly is
    nearly free).  Only a *large cold* frame loses: there the stepped
    engine is cheaper, and since both paths are bit-identical the choice
    is purely a wall-clock one.
    """
    limit = cold_plan_point_limit()
    if limit <= 0 or ex._total_points <= limit:
        return True
    config = ex.accelerator.config
    sk = tuple(ex._encoding_engine.stream_key)
    return ex._memo_scope.memo_contains(
        ("fplan", config.wavefront_rays, "addr", 0) + sk
    )


# ----------------------------------------------------------------------
# Pass 1: encoding streams (addresses, gaps, cache + temporal hits)
# ----------------------------------------------------------------------
@dataclass
class _ExecutionPricing:
    """Scratch state of one execution between the builder's passes."""

    #: Per-slice point counts, in step order.
    sizes: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: Per level: the frame's miss issue groups, ``(total_points, 8)``.
    miss_blocks: List[Tuple[int, np.ndarray]] = field(default_factory=list)
    #: Per level: per-slice register-cache / temporal hit counts.
    cache_hits: Dict[int, np.ndarray] = field(default_factory=dict)
    temporal_hits: Dict[int, np.ndarray] = field(default_factory=dict)
    #: Per level: per-slice (cycles, accesses, conflicts, energy) arrays.
    read_segments: Dict[int, Tuple] = field(default_factory=dict)
    records: List[Tuple[int, int, np.ndarray]] = field(default_factory=list)
    temporal_token: Optional[tuple] = None


def _price_encoding(ex: "FrameExecution") -> _ExecutionPricing:
    """Stream pass: one fused call per resolution level over the whole
    frame — logical/striped addresses, register-cache hits
    (composite-keyed gaps), temporal hits, miss issue groups and
    per-slice hit counts.  Frame-level arrays memoise on the trace under
    keys disjoint from the stepped engine's per-slice keys."""
    if ex._scanout:
        raise SimulationError("scan-out executions have no wavefront plan")
    out = _ExecutionPricing()
    engine = ex._encoding_engine
    temporal = ex._temporal
    if temporal is not None:
        out.temporal_token = temporal.resident_token
    gen = engine.generator
    config = ex.accelerator.config
    num_levels = ex.accelerator.grid.num_levels
    sk = engine.stream_key
    uint16_max = int(np.iinfo(np.uint16).max)

    slices = ex._slices
    out.sizes = sizes = np.array([sl.num_points for sl in slices], dtype=np.int64)
    total = int(sizes.sum())
    if total == 0 or num_levels == 0:
        return out
    # Segment starts of each slice in the flat 8-wide address stream
    # (`np.add.reduceat` on bools is `or`, so counts widen to int64 first).
    starts = np.concatenate([[0], np.cumsum(sizes * 8)[:-1]])
    hook = ex._memo_scope.memo_hook(("fplan", config.wavefront_rays))
    request_ids: Optional[np.ndarray] = None

    for level in range(num_levels):
        # The frame's corners at this level, derived lazily from the
        # execution's hoisted compact voxel bases (skipped entirely when
        # the address streams below replay from the trace memo).
        corner_cache: List[np.ndarray] = []

        def corners() -> np.ndarray:
            if not corner_cache:
                corner_cache.append(
                    ex._corner_bases[level].astype(np.int64)[:, None, :]
                    + ex._corner_offsets
                )
            return corner_cache[0]

        compact = engine.compact_dtype(level)
        logical = hook(
            ("addr", level) + sk,
            lambda: gen.addresses(corners(), level, None).astype(compact),
        )
        stream = logical.reshape(-1)
        window = engine.caches[level].window
        if window <= 0:
            hits = np.zeros(stream.size, dtype=bool)
        elif window <= _SHIFT_WINDOW_MAX:
            # Small windows (every swept design point): `window` shifted
            # equality passes beat the sort previous-occurrence gaps
            # need, and yield the hit mask directly.
            hits = hook(
                ("whits", level, window) + sk,
                lambda: _window_hits(stream, sizes, window),
            )
        elif window < uint16_max:
            gaps = hook(
                ("gaps", level) + sk,
                lambda: np.minimum(
                    _composite_gaps(stream, sizes), uint16_max
                ).astype(np.uint16),
            )
            hits = gaps <= window
        else:  # pragma: no cover - no swept design reaches this
            hits = _composite_gaps(stream, sizes) <= window
        served = hits
        if temporal is not None:
            t_full = temporal.lookup(stream, level, memo=hook, stream_key=sk)
            t_hits = t_full & ~hits
            served = hits | t_full
            unique_stream = hook(("uniq", level) + sk, lambda: np.unique(stream))
            out.records.append((ex._steps_total, level, unique_stream))
            out.temporal_hits[level] = np.add.reduceat(
                t_hits.astype(np.int64), starts
            )
        else:
            out.temporal_hits[level] = np.zeros(len(sizes), dtype=np.int64)
        if gen.striped(level):
            # Request ids restart per execution and advance one per point,
            # so a request's id equals its global point index in the frame
            # (see `EncodingEngine.skip_requests`).
            if request_ids is None:
                request_ids = np.arange(total, dtype=np.int64)
            physical = hook(
                ("addr_striped", level) + sk,
                lambda: gen.addresses(corners(), level, request_ids).astype(
                    compact
                ),
            )
        else:
            physical = logical
        misses = np.where(served, -1, physical.reshape(-1)).reshape(total, 8)
        out.miss_blocks.append((level, misses))
        hit_sums = np.add.reduceat(hits.astype(np.int64), starts)
        out.cache_hits[level] = hit_sums
        # Mirror the stepped replay's diagnostic counters (unobservable in
        # any SimReport, but kept equivalent in aggregate).
        st = engine.caches[level].stats.setdefault(level, CacheStats())
        st.accesses += stream.size
        st.hits += int(hit_sums.sum())
    return out


#: Largest register-cache window priced by shifted comparisons instead of
#: sort-based gaps (cost scales with the window, so huge windows fall
#: back to the gap array).
_SHIFT_WINDOW_MAX = 64


def _composite_keys(stream: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Slice-disjoint keys: each slice's addresses offset into their own
    range, so equal keys mean "same address, same slice"."""
    slice_ids = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes * 8)
    stride = int(stream.max()) + 1
    return slice_ids * stride + stream.astype(np.int64)


def _window_hits(
    stream: np.ndarray, sizes: np.ndarray, window: int
) -> np.ndarray:
    """Register-cache hit mask of every slice in one fused pass.

    An access hits iff its address recurs within the previous ``window``
    accesses of its own slice — i.e. iff any of the ``window`` shifted
    composite-key comparisons matches.  Identical to
    ``previous_occurrence_gaps(...) <= window`` per slice (a previous
    occurrence at distance ``d0 <= window`` matches shift ``d0``; a match
    at shift ``d`` means the nearest occurrence is at most ``d`` away).
    """
    if stream.size == 0:
        return np.zeros(0, dtype=bool)
    keys = _composite_keys(stream, sizes)
    hits = np.zeros(keys.size, dtype=bool)
    for d in range(1, min(window, keys.size - 1) + 1):
        np.logical_or(hits[d:], keys[d:] == keys[:-d], out=hits[d:])
    return hits


def _composite_gaps(stream: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Per-slice access-distance gaps from one fused call.

    Offsetting each slice's addresses into a disjoint key range keeps
    within-slice index distances exact (the chunks stay contiguous) while
    making a repeat across a slice boundary look like a first occurrence —
    exactly the stepped engine's per-slice
    :func:`~repro.cim.cache.previous_occurrence_gaps` results,
    concatenated.
    """
    if stream.size == 0:
        return previous_occurrence_gaps(stream)
    return previous_occurrence_gaps(_composite_keys(stream, sizes))


# ----------------------------------------------------------------------
# Pass 2: fused crossbar conflict replay
# ----------------------------------------------------------------------
def _fused_bank_pass(
    executions: Sequence["FrameExecution"],
    pricings: Sequence[_ExecutionPricing],
) -> None:
    """One segmented conflict replay per bank geometry, across every
    execution and level.  Bank outputs depend only on the crossbar row
    count and memory device (never on a level's entry count), so all
    levels — and all tenants sharing an accelerator config — batch into
    a single :meth:`~repro.cim.memxbar.MemXbarBank.read_cycles_segments`
    call."""
    geometries: dict = {}
    for ei, (ex, pricing) in enumerate(zip(executions, pricings)):
        if not pricing.miss_blocks:
            continue
        config = ex.accelerator.config
        key = (config.crossbar.rows, id(config.memory_device))
        bank = ex._encoding_engine.banks[0]
        entry = geometries.setdefault(key, {"bank": bank, "blocks": []})
        for level, misses in pricing.miss_blocks:
            entry["blocks"].append((ei, level, pricing.sizes, misses))
    for entry in geometries.values():
        blocks = entry["blocks"]
        misses_all = np.concatenate([b[3] for b in blocks], axis=0)
        sizes_all = np.concatenate([b[2] for b in blocks])
        bounds = np.concatenate([[0], np.cumsum(sizes_all)])
        cycles, accesses, conflicts, energy = entry["bank"].read_cycles_segments(
            misses_all, bounds
        )
        offset = 0
        for ei, level, sizes, _ in blocks:
            n = len(sizes)
            pricings[ei].read_segments[level] = (
                cycles[offset : offset + n],
                accesses[offset : offset + n],
                conflicts[offset : offset + n],
                energy[offset : offset + n],
            )
            offset += n


# ----------------------------------------------------------------------
# Pass 3: per-slice report assembly (scalar arithmetic, stepped order)
# ----------------------------------------------------------------------
def _assemble_plan(
    ex: "FrameExecution", pricing: _ExecutionPricing
) -> FramePlan:
    """Replicate ``_wavefront_step``'s per-slice arithmetic verbatim over
    the fused pass results, producing the plan's report fragments."""
    from repro.arch.buffers import BufferModel
    from repro.arch.encoding_engine import EncodingReport

    accelerator = ex.accelerator
    config = accelerator.config
    num_levels = accelerator.grid.num_levels
    hybrid = config.mapping_mode == "hybrid"
    # A private buffer model: stall cycles are a pure function of the
    # specs and the wavefront's working set, so pricing here never
    # perturbs the execution's own occupancy diagnostics.
    buffers = BufferModel(ex._buffers.specs)
    levels = range(num_levels)
    steps: List[PlannedStep] = []
    for si, sl in enumerate(ex._slices):
        p = sl.num_points
        enc = EncodingReport()
        level_read: List[int] = []
        for level in levels:
            seg_cycles, seg_accesses, seg_conflicts, seg_energy = (
                pricing.read_segments[level]
            )
            enc.lookups += p * 8
            enc.cache_hits += int(pricing.cache_hits[level][si])
            enc.temporal_hits += int(pricing.temporal_hits[level][si])
            enc.xbar_accesses += int(seg_accesses[si])
            enc.conflict_cycles += int(seg_conflicts[si])
            enc.xbar_energy_pj += float(seg_energy[si])
            level_read.append(int(seg_cycles[si]))
        if level_read:
            read_cycles = max(level_read) if hybrid else sum(level_read)
        else:
            read_cycles = 0
        addr_gen_cycles = math.ceil(p * 8 * num_levels / config.address_units)
        fusion_cycles = math.ceil(p * num_levels / config.fusion_lanes)
        enc.read_cycles = read_cycles
        enc.cycles = max(addr_gen_cycles, read_cycles, fusion_cycles)

        color_points = ex._slice_color_points[si]
        mlp = accelerator.mlp_engine.process(p, color_points)
        ren = accelerator.render_engine.process(
            composited_points=p,
            interpolated_points=p - color_points,
        )
        stall = buffers.observe_wavefront(
            in_flight_points=ex._slice_in_flight[si],
            levels=num_levels,
            ray_working_points=p,
        )
        steps.append(
            PlannedStep(
                charge=max(enc.cycles, mlp.cycles, ren.cycles) + stall,
                num_points=p,
                encoding=enc,
                mlp=mlp,
                render=ren,
                stall=stall,
                log_key=("wavefront", sl.index, sl.rays.start, sl.rays.stop),
            )
        )
    if ex._evals:
        ren = accelerator.render_engine.process(0, 0, ex._evals)
        steps.append(
            PlannedStep(
                charge=ren.cycles,
                num_points=0,
                encoding=None,
                mlp=None,
                render=ren,
                stall=0,
                log_key=("adaptive_tail",),
            )
        )
    return FramePlan(
        steps=steps,
        records=pricing.records,
        temporal_token=pricing.temporal_token,
        total_points=ex._total_points,
    )
