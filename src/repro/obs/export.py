"""Exporters for the telemetry event stream: JSONL and Chrome trace JSON.

Two serialised forms of the same :class:`~repro.obs.events.Event` list:

* **JSONL** (``obs_events/v1``) — one header line carrying the schema
  tag, the virtual clock rate and free-form run metadata, then one JSON
  object per event.  The lossless archival form: ``repro timeline`` and
  :meth:`~repro.obs.metrics.MetricsRegistry.from_events` both rebuild
  their views from it.
* **Chrome trace-event JSON** — loadable in Perfetto or
  ``chrome://tracing``.  Shards map to processes, tenants to threads;
  quantum and scan-out charges become duration ("X") events, scheduler
  queue depth becomes a counter ("C") track and lifecycle events
  (admission, departure, preemption, deferral, routing, migration)
  become instants ("i").  Virtual cycles are written as microsecond
  timestamps — the UI's time axis reads directly in kilocycles/ms.

Only *serving-domain* events (server virtual clock) are placed on the
trace timeline.  Execution-domain events (``exec_step``, ``exec_batch``,
``plan_build``, ``frame_finish``) carry frame-local cycle counts in a
different clock domain; they stay in the JSONL stream but are skipped by
the trace builder rather than plotted against the wrong axis.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import (
    EV_ADMISSION,
    EV_ADMISSION_REJECT,
    EV_DEGRADE,
    EV_DEPARTURE,
    EV_EXEC_BATCH,
    EV_EXEC_STEP,
    EV_FRAME_ABORT,
    EV_FRAME_COMPLETE,
    EV_FRAME_FINISH,
    EV_MIGRATION,
    EV_PLAN_BUILD,
    EV_PLAN_CACHE,
    EV_PREEMPTION,
    EV_QUANTUM,
    EV_QUANTUM_TUNE,
    EV_ROUTE,
    EV_SCALE_OUT,
    EV_SCANOUT,
    EV_SCHED,
    EV_SERVE_END,
    EV_SERVE_START,
    EV_SHED,
    EV_TWIN_DEFER,
    OBS_EVENTS_SCHEMA,
    Event,
)

#: Event kinds whose ``clock`` is frame-local (the execution engine's
#: per-frame cycle counter), not the server's virtual clock.  The trace
#: builder keeps them off the serving timeline.
EXEC_DOMAIN_KINDS = frozenset(
    {EV_EXEC_STEP, EV_EXEC_BATCH, EV_PLAN_BUILD, EV_FRAME_FINISH}
)

#: Kinds rendered as duration ("X") trace events: (kind, display name).
_DURATION_KINDS = {EV_QUANTUM: "quantum", EV_SCANOUT: "scanout"}

#: Kinds rendered as instant ("i") events on the owning client's thread.
_CLIENT_INSTANT_KINDS = {
    EV_ADMISSION: "admission",
    EV_ADMISSION_REJECT: "admission_reject",
    EV_DEPARTURE: "departure",
    EV_FRAME_ABORT: "frame_abort",
    EV_TWIN_DEFER: "twin_defer",
    EV_FRAME_COMPLETE: "frame_complete",
    EV_SHED: "shed",
    EV_DEGRADE: "degrade",
}

#: Kinds rendered as instants on the shard's scheduler thread (tid 0).
_SCHED_INSTANT_KINDS = {
    EV_SERVE_START: "serve_start",
    EV_SERVE_END: "serve_end",
    EV_PREEMPTION: "preemption",
    EV_ROUTE: "route",
    EV_SCALE_OUT: "scale_out",
    EV_MIGRATION: "migration",
    EV_PLAN_CACHE: "plan_cache",
    EV_QUANTUM_TUNE: "quantum_tune",
}


# ----------------------------------------------------------------------
# JSONL (obs_events/v1)
# ----------------------------------------------------------------------
def events_header(
    clock_hz: Optional[float] = None, meta: Optional[Dict] = None
) -> Dict:
    """The ``obs_events/v1`` header object (the JSONL file's first line)."""
    return {
        "schema": OBS_EVENTS_SCHEMA,
        "clock_hz": clock_hz,
        "meta": dict(meta or {}),
    }


def write_events_jsonl(
    path,
    events: Sequence[Event],
    clock_hz: Optional[float] = None,
    meta: Optional[Dict] = None,
) -> None:
    """Write a header line plus one compact JSON object per event."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(events_header(clock_hz, meta), sort_keys=True) + "\n"
        )
        for ev in events:
            fh.write(json.dumps(ev.to_json_obj(), sort_keys=True) + "\n")


def read_events_jsonl(path) -> Tuple[Dict, List[Event]]:
    """Load ``(header, events)`` back from :func:`write_events_jsonl`.

    Raises:
        ConfigurationError: When the file is empty or its header does not
            carry the ``obs_events/v1`` schema tag.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ConfigurationError(f"{path}: empty event log")
    header = json.loads(lines[0])
    if header.get("schema") != OBS_EVENTS_SCHEMA:
        raise ConfigurationError(
            f"{path}: expected schema {OBS_EVENTS_SCHEMA!r}, got "
            f"{header.get('schema')!r}"
        )
    return header, [Event.from_json_obj(json.loads(l)) for l in lines[1:]]


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
class _TrackIds:
    """Stable shard→pid / (shard, client)→tid numbering.

    Ids are assigned in first-appearance order, so the same event stream
    always serialises to the same trace — the golden schema test depends
    on it.  tid 0 on every process is the shard's scheduler track.
    """

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[str, str], int] = {}

    def pid(self, shard: str) -> int:
        if shard not in self._pids:
            self._pids[shard] = len(self._pids) + 1
        return self._pids[shard]

    def tid(self, shard: str, client: str) -> int:
        key = (shard, client)
        if key not in self._tids:
            self._tids[key] = (
                sum(1 for (s, _) in self._tids if s == shard) + 1
            )
        return self._tids[key]

    def metadata_events(self) -> List[Dict]:
        out: List[Dict] = []
        for shard, pid in self._pids.items():
            out.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"shard {shard}"},
                }
            )
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": "scheduler"},
                }
            )
        for (shard, client), tid in self._tids.items():
            out.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": self.pid(shard),
                    "tid": tid,
                    "args": {"name": f"client {client}"},
                }
            )
        return out


def chrome_trace(
    events: Iterable[Event], clock_hz: Optional[float] = None
) -> Dict:
    """Build a Chrome trace-event object from serving-domain events.

    Virtual cycles map 1:1 to microsecond timestamps (``ts``/``dur``),
    so Perfetto's axis reads in virtual kilocycles per millisecond.
    Execution-domain events are skipped (different clock domain — see
    the module docstring).
    """
    tracks = _TrackIds()
    trace_events: List[Dict] = []
    for ev in events:
        if ev.kind in EXEC_DOMAIN_KINDS:
            continue
        shard = str(ev.fields.get("shard", "server"))
        pid = tracks.pid(shard)
        if ev.kind in _DURATION_KINDS:
            client = str(ev.fields.get("client", "?"))
            args = {
                k: v
                for k, v in ev.fields.items()
                if k not in ("shard", "client")
            }
            trace_events.append(
                {
                    "ph": "X",
                    "name": "{} f{}".format(
                        _DURATION_KINDS[ev.kind], ev.fields.get("frame", "?")
                    ),
                    "cat": ev.kind,
                    "pid": pid,
                    "tid": tracks.tid(shard, client),
                    "ts": int(ev.clock),
                    "dur": max(1, int(ev.fields.get("cycles", 1))),
                    "args": args,
                }
            )
        elif ev.kind == EV_SCHED:
            trace_events.append(
                {
                    "ph": "C",
                    "name": "queue depth",
                    "pid": pid,
                    "tid": 0,
                    "ts": int(ev.clock),
                    "args": {
                        "ready": int(ev.fields.get("ready", 0)),
                        "blocked": int(ev.fields.get("blocked", 0)),
                        "waiting": int(ev.fields.get("waiting", 0)),
                    },
                }
            )
        elif ev.kind in _CLIENT_INSTANT_KINDS:
            client = str(ev.fields.get("client", "?"))
            trace_events.append(
                {
                    "ph": "i",
                    "name": _CLIENT_INSTANT_KINDS[ev.kind],
                    "cat": ev.kind,
                    "pid": pid,
                    "tid": tracks.tid(shard, client),
                    "ts": int(ev.clock),
                    "s": "t",
                    "args": {
                        k: v for k, v in ev.fields.items() if k != "shard"
                    },
                }
            )
        elif ev.kind in _SCHED_INSTANT_KINDS:
            trace_events.append(
                {
                    "ph": "i",
                    "name": _SCHED_INSTANT_KINDS[ev.kind],
                    "cat": ev.kind,
                    "pid": pid,
                    "tid": 0,
                    "ts": int(ev.clock),
                    "s": "p",
                    "args": {
                        k: v for k, v in ev.fields.items() if k != "shard"
                    },
                }
            )
        # Remaining kinds (e.g. per-lookup temporal_cache) are high-rate
        # and carry no duration — they stay in the JSONL stream only.
    return {
        "traceEvents": tracks.metadata_events() + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "clock_hz": clock_hz,
            "time_unit": "1us == 1 virtual cycle",
        },
    }


def write_chrome_trace(
    path, events: Iterable[Event], clock_hz: Optional[float] = None
) -> None:
    """Serialise :func:`chrome_trace` to ``path`` (Perfetto-loadable)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(events, clock_hz=clock_hz), fh, indent=None)
        fh.write("\n")
