"""One validator for every machine-readable artefact this repo emits.

The CI smoke jobs, ``tools/validate_bench.py`` and the ``repro bench
run-all`` harness all validate through these functions, so a schema
change has exactly one place to go stale.  Each ``validate_*`` returns a
list of problem strings — empty means valid — mirroring the
``tools/check_docs.py`` idiom (callers print the problems and exit
non-zero).

Covered schemas:

* ``serving_bench/v1`` — :func:`repro.serving.report.bench_summary`
* ``engine_bench/v1``  — ``benchmarks/test_engine_throughput.py``
* ``cluster_bench/v1`` — ``benchmarks/test_cluster_serving.py``
* ``slo_bench/v1``     — ``benchmarks/test_slo_serving.py``
* ``video_bench/v1``   — ``benchmarks/test_video_reproject.py``
* ``obs_events/v1``    — :mod:`repro.obs.export` JSONL logs
* Chrome trace-event JSON — :func:`repro.obs.export.chrome_trace`
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.events import EVENT_KINDS, OBS_EVENTS_SCHEMA

#: Per-policy keys every ``serving_bench/v1`` entry must carry (the
#: former serve-smoke inline check).
SERVING_POLICY_KEYS = (
    "p50_ms",
    "p95_ms",
    "throughput_fps",
    "fairness",
    "context_switches",
    "busy_cycles",
    "back_to_back_cycles",
)

#: Per-router keys every ``cluster_bench/v1`` entry must carry.
CLUSTER_ROUTER_KEYS = (
    "router",
    "policy",
    "shards",
    "total_busy_cycles",
    "total_frames",
    "fairness",
    "p50_ms",
    "p95_ms",
    "migrations",
    "utilisation",
)

#: Chrome trace-event phases the exporter emits.
TRACE_PHASES = ("X", "M", "C", "i")

#: Keys both the baseline and the SLO run of an ``slo_bench/v1``
#: payload must carry.
SLO_RUN_KEYS = (
    "policy",
    "slo_attainment",
    "busy_cycles",
    "total_frames",
    "shed_frames",
    "degraded_frames",
)

#: The ``slo_bench/v1`` acceptance gates (also asserted inline by
#: ``benchmarks/test_slo_serving.py``): the SLO machinery must lift
#: interactive attainment to at least this …
SLO_INTERACTIVE_FLOOR = 0.95
#: … on an overload mix where the no-SLO baseline attains less than this.
SLO_BASELINE_CEILING = 0.7

#: The ``video_bench/v1`` headline gate (also asserted inline by
#: ``benchmarks/test_video_reproject.py``): amortised cycles of the
#: reprojected orbit vs independent per-frame ASDR simulation.
VIDEO_SPEEDUP_FLOOR = 1.5

#: Keys both scheduler runs of a ``video_bench/v1`` ``keyframes``
#: section must carry.
VIDEO_KEYFRAME_RUN_KEYS = ("probes", "min_psnr", "mean_psnr")


def validate_serving_bench(data: Dict) -> List[str]:
    """``serving_bench/v1``: schema tag, per-policy keys, preemptive
    coverage."""
    problems: List[str] = []
    if data.get("schema") != "serving_bench/v1":
        return [f"schema is {data.get('schema')!r}, want 'serving_bench/v1'"]
    policies = data.get("policies")
    if not isinstance(policies, dict) or not policies:
        return ["'policies' missing or empty"]
    for name, rep in policies.items():
        for key in SERVING_POLICY_KEYS:
            if key not in rep:
                problems.append(f"policy {name!r} missing {key!r}")
    if not any(n.endswith("_preemptive") for n in policies):
        problems.append("no *_preemptive policy in the run")
    return problems


def validate_engine_bench(data: Dict) -> List[str]:
    """``engine_bench/v1``: bit-identity gates true, timing keys present."""
    problems: List[str] = []
    if data.get("schema") != "engine_bench/v1":
        return [f"schema is {data.get('schema')!r}, want 'engine_bench/v1'"]
    serve = data.get("serve", {})
    if serve.get("identical_rows") is not True:
        problems.append("serve.identical_rows is not True")
    if data.get("frame_micro", {}).get("identical_reports") is not True:
        problems.append("frame_micro.identical_reports is not True")
    for key in ("scalar_seconds", "batched_seconds", "speedup"):
        if key not in serve:
            problems.append(f"serve missing {key!r}")
    return problems


def validate_cluster_bench(data: Dict) -> List[str]:
    """``cluster_bench/v1``: identity gate, router set, per-router keys
    and the affinity-beats-random ordering (the former inline check)."""
    problems: List[str] = []
    if data.get("schema") != "cluster_bench/v1":
        return [f"schema is {data.get('schema')!r}, want 'cluster_bench/v1'"]
    if data.get("single_shard_identical") is not True:
        problems.append("single_shard_identical is not True")
    routers = data.get("routers")
    if not isinstance(routers, dict):
        return problems + ["'routers' missing"]
    if set(routers) != {"affinity", "random"}:
        problems.append(
            f"routers are {sorted(routers)}, want ['affinity', 'random']"
        )
    for name, rep in routers.items():
        for key in CLUSTER_ROUTER_KEYS:
            if key not in rep:
                problems.append(f"router {name!r} missing {key!r}")
    aff, rnd = routers.get("affinity"), routers.get("random")
    if aff and rnd:
        if aff.get("total_frames") != rnd.get("total_frames"):
            problems.append("affinity/random delivered frame counts differ")
        if aff.get("total_busy_cycles", 0) > rnd.get("total_busy_cycles", 0):
            problems.append(
                "affinity routing costs more fleet cycles than random"
            )
    if "affinity_over_random_cycles" not in data:
        problems.append("missing 'affinity_over_random_cycles'")
    return problems


def validate_slo_bench(data: Dict) -> List[str]:
    """``slo_bench/v1``: the overload-control acceptance gates.

    The payload compares the same overload client mix served twice —
    ``baseline`` (no SLO machinery) and ``slo`` (admission control +
    shedding + degrade armed) — and the gates encode the PR's claim:
    interactive attainment ≥ :data:`SLO_INTERACTIVE_FLOOR` with the
    machinery on, < :data:`SLO_BASELINE_CEILING` without it, at equal or
    lower fleet cycles, with every degraded frame's PSNR at or above the
    configured guard and the control loops demonstrably exercised.
    """
    problems: List[str] = []
    if data.get("schema") != "slo_bench/v1":
        return [f"schema is {data.get('schema')!r}, want 'slo_bench/v1'"]
    for run_name in ("baseline", "slo"):
        run = data.get(run_name)
        if not isinstance(run, dict):
            problems.append(f"{run_name!r} run missing")
            continue
        for key in SLO_RUN_KEYS:
            if key not in run:
                problems.append(f"run {run_name!r} missing {key!r}")
    if problems:
        return problems
    baseline, slo = data["baseline"], data["slo"]
    base_int = baseline["slo_attainment"].get("interactive")
    slo_int = slo["slo_attainment"].get("interactive")
    if base_int is None or slo_int is None:
        return ["runs carry no 'interactive' class attainment"]
    if not base_int < SLO_BASELINE_CEILING:
        problems.append(
            f"baseline interactive attainment {base_int:.3f} is not an "
            f"overload (want < {SLO_BASELINE_CEILING})"
        )
    if not slo_int >= SLO_INTERACTIVE_FLOOR:
        problems.append(
            f"slo interactive attainment {slo_int:.3f} misses the "
            f"{SLO_INTERACTIVE_FLOOR} floor"
        )
    if slo["busy_cycles"] > baseline["busy_cycles"]:
        problems.append(
            "slo run burns more fleet cycles than the baseline "
            f"({slo['busy_cycles']} > {baseline['busy_cycles']})"
        )
    if not slo["shed_frames"] > 0:
        problems.append("slo run shed no frames (machinery not exercised)")
    if not data.get("admission_rejects", 0) > 0:
        problems.append("no admission rejects (machinery not exercised)")
    degraded = slo.get("degraded", [])
    if not degraded:
        problems.append("slo run degraded no frames (machinery not exercised)")
    guard = data.get("degrade_min_psnr")
    if guard is None:
        problems.append("missing 'degrade_min_psnr' guard")
    else:
        for i, d in enumerate(degraded):
            psnr = d.get("psnr")
            if psnr is None or psnr < guard:
                problems.append(
                    f"degraded[{i}] psnr {psnr!r} below the "
                    f"{guard} dB guard"
                )
    return problems


def validate_video_bench(data: Dict) -> List[str]:
    """``video_bench/v1``: the temporal-reprojection acceptance gates.

    The ``orbit`` section must show amortised speedup of at least
    :data:`VIDEO_SPEEDUP_FLOOR` over independent per-frame ASDR
    simulation with at least one frame actually reprojected, every
    reprojected frame's warp-guard PSNR at or above the configured
    ``psnr_guard`` and no guard fallback.  The ``keyframes`` section
    (an orbit broken by a camera cut) must show the adaptive scheduler
    spending strictly fewer Phase I probes than the fixed cadence at an
    equal-or-better worst-frame PSNR.
    """
    problems: List[str] = []
    if data.get("schema") != "video_bench/v1":
        return [f"schema is {data.get('schema')!r}, want 'video_bench/v1'"]
    orbit = data.get("orbit")
    keyframes = data.get("keyframes")
    if not isinstance(orbit, dict):
        problems.append("'orbit' section missing")
    if not isinstance(keyframes, dict):
        problems.append("'keyframes' section missing")
    guard = data.get("psnr_guard")
    if guard is None:
        problems.append("missing 'psnr_guard'")
    if problems:
        return problems
    for key in ("fresh_cycles", "reproject_cycles", "speedup_vs_fresh",
                "frames"):
        if key not in orbit:
            problems.append(f"orbit section missing {key!r}")
    for run_name in ("fixed", "adaptive"):
        run = keyframes.get(run_name)
        if not isinstance(run, dict):
            problems.append(f"keyframes run {run_name!r} missing")
            continue
        for key in VIDEO_KEYFRAME_RUN_KEYS:
            if key not in run:
                problems.append(f"keyframes run {run_name!r} missing {key!r}")
    if problems:
        return problems
    speedup = orbit["speedup_vs_fresh"]
    if not speedup >= VIDEO_SPEEDUP_FLOOR:
        problems.append(
            f"orbit speedup {speedup} misses the {VIDEO_SPEEDUP_FLOOR}x floor"
        )
    reprojected = [
        f for f in orbit["frames"] if f.get("reprojected", 0) > 0
    ]
    if not reprojected:
        problems.append("no frame reprojected (machinery not exercised)")
    for f in reprojected:
        g = f.get("guard_psnr")
        if g is None or g < guard:
            problems.append(
                f"frame {f.get('frame')} guard PSNR {g!r} below the "
                f"{guard} dB guard"
            )
        if f.get("fallback"):
            problems.append(
                f"frame {f.get('frame')} fell back to plan reuse"
            )
    fixed, adaptive = keyframes["fixed"], keyframes["adaptive"]
    if not adaptive["probes"] < fixed["probes"]:
        problems.append(
            f"adaptive probes {adaptive['probes']} not fewer than fixed "
            f"{fixed['probes']}"
        )
    if not adaptive["min_psnr"] >= fixed["min_psnr"]:
        problems.append(
            f"adaptive min PSNR {adaptive['min_psnr']} below fixed "
            f"{fixed['min_psnr']}"
        )
    return problems


def validate_obs_events(header: Dict, events: List[Dict]) -> List[str]:
    """``obs_events/v1``: header tag plus per-event shape.

    ``events`` are the parsed JSONL objects (``{"kind", "clock",
    "fields"}``), not :class:`~repro.obs.events.Event` instances.
    """
    problems: List[str] = []
    if header.get("schema") != OBS_EVENTS_SCHEMA:
        return [
            f"header schema is {header.get('schema')!r}, "
            f"want {OBS_EVENTS_SCHEMA!r}"
        ]
    for i, obj in enumerate(events):
        kind = obj.get("kind")
        if kind not in EVENT_KINDS:
            problems.append(f"event {i}: unknown kind {kind!r}")
        clock = obj.get("clock")
        if not isinstance(clock, int) or clock < 0:
            problems.append(f"event {i}: clock {clock!r} not a non-negative int")
        if not isinstance(obj.get("fields"), dict):
            problems.append(f"event {i}: 'fields' is not an object")
    return problems


def validate_trace_events(data: Dict) -> List[str]:
    """Chrome trace-event JSON as the exporter writes it (and as
    Perfetto requires it): known phases, integer pids/tids, ``ts``/
    ``dur`` on duration events, named metadata."""
    problems: List[str] = []
    trace = data.get("traceEvents")
    if not isinstance(trace, list) or not trace:
        return ["'traceEvents' missing or empty"]
    for i, ev in enumerate(trace):
        ph = ev.get("ph")
        if ph not in TRACE_PHASES:
            problems.append(f"traceEvents[{i}]: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("pid"), int):
            problems.append(f"traceEvents[{i}]: pid is not an int")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"traceEvents[{i}]: missing name")
        if ph in ("X", "C", "i") and not isinstance(ev.get("ts"), int):
            problems.append(f"traceEvents[{i}]: ts is not an int")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur <= 0:
                problems.append(
                    f"traceEvents[{i}]: dur {dur!r} not a positive int"
                )
        if ph == "M" and "name" not in ev.get("args", {}):
            problems.append(f"traceEvents[{i}]: metadata without args.name")
    if not any(ev.get("ph") == "X" for ev in trace):
        problems.append("no duration ('X') events — empty timeline")
    return problems


#: ``schema`` tag → validator for the JSON-object artefacts.
SCHEMA_VALIDATORS = {
    "serving_bench/v1": validate_serving_bench,
    "engine_bench/v1": validate_engine_bench,
    "cluster_bench/v1": validate_cluster_bench,
    "slo_bench/v1": validate_slo_bench,
    "video_bench/v1": validate_video_bench,
}


def validate_payload(data: Dict) -> List[str]:
    """Dispatch a parsed JSON object to its schema's validator.

    Trace-event files carry no ``schema`` tag; they are recognised by
    their ``traceEvents`` key.
    """
    if "traceEvents" in data:
        return validate_trace_events(data)
    tag = data.get("schema")
    validator = SCHEMA_VALIDATORS.get(tag)
    if validator is None:
        return [
            f"unknown schema {tag!r}; known: "
            + ", ".join(sorted(SCHEMA_VALIDATORS) + [OBS_EVENTS_SCHEMA])
        ]
    return validator(data)


def validate_file(path) -> List[str]:
    """Validate one artefact file (``.jsonl`` = event log, else JSON)."""
    text = open(path, "r", encoding="utf-8").read()
    if str(path).endswith(".jsonl"):
        lines = [l for l in text.splitlines() if l.strip()]
        if not lines:
            return ["empty event log"]
        try:
            objs = [json.loads(l) for l in lines]
        except json.JSONDecodeError as exc:
            return [f"bad JSONL: {exc}"]
        return validate_obs_events(objs[0], objs[1:])
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"bad JSON: {exc}"]
    if not isinstance(data, dict):
        return ["top-level JSON value is not an object"]
    return validate_payload(data)
