"""Terminal timeline dashboard rendered from the telemetry event stream.

Pure post-processing of recorded :class:`~repro.obs.events.Event`\\ s —
nothing here touches the simulator.  The renderer draws, over virtual
time:

* one lane per (shard, tenant) showing when its frames executed —
  ``#`` for fresh wavefront quanta, ``=`` for scan-out deliveries,
  ``!`` marking the quantum after which the tenant was preempted;
* one queue-depth lane per shard (digits, from scheduler decisions);
* per-engine busy percentages (encoding / MLP / render / bus) folded
  from frame-completion engine splits.

``repro serve --dashboard`` prints this after a run; ``repro timeline
events.jsonl`` renders it post-hoc from an exported JSONL log (one
section per ``serve_start`` — a multi-policy comparison file renders as
stacked dashboards).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import (
    EV_FRAME_COMPLETE,
    EV_PREEMPTION,
    EV_QUANTUM,
    EV_SCANOUT,
    EV_SCHED,
    EV_SERVE_END,
    EV_SERVE_START,
    Event,
)

#: Lane glyphs: fresh execution quantum / scan-out delivery / idle.
GLYPH_QUANTUM = "#"
GLYPH_SCANOUT = "="
GLYPH_PREEMPT = "!"
GLYPH_IDLE = "."


def split_runs(events: Sequence[Event]) -> List[List[Event]]:
    """Split a recorded stream into per-``serve()`` runs.

    Every ``serve_start`` opens a new segment; events before the first
    one (e.g. cluster routing, which happens at admission) attach to the
    first segment.  A stream with no ``serve_start`` is one segment.
    """
    runs: List[List[Event]] = []
    current: List[Event] = []
    for ev in events:
        if ev.kind == EV_SERVE_START and any(
            e.kind == EV_SERVE_START for e in current
        ):
            runs.append(current)
            current = []
        current.append(ev)
    if current:
        runs.append(current)
    return runs


def _lane_key(ev: Event) -> Tuple[str, str]:
    return (
        str(ev.fields.get("shard", "server")),
        str(ev.fields.get("client", "?")),
    )


def _bucket(clock: int, makespan: int, width: int) -> int:
    return min(width - 1, (clock * width) // max(1, makespan))


def render_timeline(
    events: Sequence[Event],
    width: int = 64,
    clock_hz: Optional[float] = None,
) -> str:
    """Render one serving run's events as a fixed-width ASCII dashboard.

    Deterministic for a fixed event list (lanes sort by shard then
    tenant), so the output is safe to pin in tests.
    """
    quanta = [e for e in events if e.kind in (EV_QUANTUM, EV_SCANOUT)]
    starts = [e for e in events if e.kind == EV_SERVE_START]
    ends = [e for e in events if e.kind == EV_SERVE_END]
    header = "timeline"
    if starts:
        f = starts[0].fields
        header += " policy={}".format(f.get("policy", "?"))
        if f.get("quantum") is not None:
            header += " quantum={}".format(f["quantum"])
    if not quanta:
        return header + "\n  (no executable events in this run)"
    makespan = max(int(e.clock) + int(e.fields.get("cycles", 0)) for e in quanta)
    if ends:
        makespan = max(makespan, int(ends[-1].clock))
    header += f" makespan={makespan} cycles"
    if clock_hz:
        header += f" ({makespan / clock_hz * 1e3:.3f} ms @ {clock_hz:.0f} Hz)"

    # Per-tenant execution lanes.
    lanes: Dict[Tuple[str, str], List[str]] = {}
    busy: Dict[Tuple[str, str], int] = {}
    frames: Dict[Tuple[str, str], int] = {}
    for ev in quanta:
        key = _lane_key(ev)
        lane = lanes.setdefault(key, [GLYPH_IDLE] * width)
        cycles = int(ev.fields.get("cycles", 0))
        busy[key] = busy.get(key, 0) + cycles
        lo = _bucket(int(ev.clock), makespan, width)
        hi = _bucket(int(ev.clock) + max(0, cycles - 1), makespan, width)
        glyph = GLYPH_QUANTUM if ev.kind == EV_QUANTUM else GLYPH_SCANOUT
        for i in range(lo, hi + 1):
            lane[i] = glyph
    for ev in events:
        if ev.kind == EV_FRAME_COMPLETE:
            key = _lane_key(ev)
            frames[key] = frames.get(key, 0) + 1
        elif ev.kind == EV_PREEMPTION:
            key = (
                str(ev.fields.get("shard", "server")),
                str(ev.fields.get("preempted", "?")),
            )
            if key in lanes:
                lanes[key][_bucket(int(ev.clock), makespan, width)] = (
                    GLYPH_PREEMPT
                )

    lines = [header]
    label_w = max(len(f"{s}/{c}") for s, c in lanes)
    for key in sorted(lanes):
        shard, client = key
        label = f"{shard}/{client}".ljust(label_w)
        pct = 100.0 * busy.get(key, 0) / makespan if makespan else 0.0
        lines.append(
            "  {} |{}| {:5.1f}% busy, {} frames".format(
                label, "".join(lanes[key]), pct, frames.get(key, 0)
            )
        )

    # Queue-depth lane(s) from scheduler decisions (latest sample wins
    # within a bucket — the lane reads like a downsampled counter track).
    scheds = [e for e in events if e.kind == EV_SCHED]
    by_shard: Dict[str, List[Event]] = {}
    for ev in scheds:
        by_shard.setdefault(str(ev.fields.get("shard", "server")), []).append(ev)
    for shard in sorted(by_shard):
        lane = [" "] * width
        for ev in by_shard[shard]:
            depth = int(ev.fields.get("ready", 0)) + int(
                ev.fields.get("waiting", 0)
            )
            lane[_bucket(int(ev.clock), makespan, width)] = str(min(depth, 9))
        lines.append(
            "  {} |{}| queue depth".format(
                f"{shard}/queue".ljust(label_w), "".join(lane)
            )
        )

    # Per-engine utilisation folded from frame-completion splits.
    engines = {"encoding": 0, "mlp": 0, "render": 0, "bus": 0}
    for ev in events:
        if ev.kind == EV_FRAME_COMPLETE:
            for name in engines:
                engines[name] += int(ev.fields.get(f"{name}_cycles", 0))
    if makespan and any(engines.values()):
        lines.append(
            "  engines: "
            + "  ".join(
                "{} {:.1f}%".format(name, 100.0 * cyc / makespan)
                for name, cyc in engines.items()
            )
        )
    return "\n".join(lines)


def render_dashboard(
    events: Sequence[Event],
    width: int = 64,
    clock_hz: Optional[float] = None,
) -> str:
    """Render every serving run in the stream, stacked in order."""
    sections = [
        render_timeline(run, width=width, clock_hz=clock_hz)
        for run in split_runs(events)
    ]
    return "\n\n".join(sections)
