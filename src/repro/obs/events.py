"""Typed telemetry events: the vocabulary of the ``obs_events/v1`` stream.

Every instrumented layer — the resumable execution engine, the serving
event loop, the cluster routing layer — describes what happened as one of
the event kinds below, stamped with the virtual clock it happened at.
Events are *observations of already-computed values*: an emitter may only
read state the simulation produced anyway, never compute anything the
disabled path would not (the zero-perturbation contract; see
:mod:`repro.obs.recorder`).

Two clock domains appear in the stream and are never mixed:

* **serving events** (quantum, scan-out, admission, …) carry the server's
  virtual clock — the timeline exporters key on these;
* **execution events** (``exec_step``, ``exec_batch``, ``frame_finish``)
  carry the *frame-local* cycle count of their ``FrameExecution`` cursor,
  because an execution does not know where the scheduler placed it.

The ``fields`` of each kind are pinned by the golden schema test
(``tests/golden/obs_schema.json``): adding a field is an additive schema
change, renaming or removing one is a break.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Schema identifier written into every exported event log.
OBS_EVENTS_SCHEMA = "obs_events/v1"

# --- serving-loop events (server virtual clock) -----------------------
EV_SERVE_START = "serve_start"  #: one serve() run begins (policy, clients)
EV_SERVE_END = "serve_end"  #: run complete (makespan, busy cycles)
EV_ADMISSION = "admission"  #: tenant admitted, partition created
EV_DEPARTURE = "departure"  #: tenant departed, pending frames aborted
EV_SCHED = "sched"  #: one scheduling decision (queue/blocked depth)
EV_QUANTUM = "quantum"  #: one execution quantum ran (duration event)
EV_SCANOUT = "scanout"  #: a frame delivered by scan-out (duration event)
EV_FRAME_COMPLETE = "frame_complete"  #: frame delivered (engine splits)
EV_FRAME_ABORT = "frame_abort"  #: in-flight frame abandoned (departure)
EV_PREEMPTION = "preemption"  #: engine state set aside for another tenant
EV_TWIN_DEFER = "twin_defer"  #: frame deferred behind its content leader
EV_PLAN_CACHE = "plan_cache"  #: batched-plan cache consulted (hit/miss)
EV_TEMPORAL_CACHE = "temporal_cache"  #: per-quantum vertex-cache delta

# --- SLO / overload-control events (server virtual clock; admission
# rejection happens at submit time, before the clock starts, so it is
# stamped 0 like the cluster admission-order events) --------------------
EV_ADMISSION_REJECT = "admission_reject"  #: submit refused (backlog cap)
EV_SHED = "shed"  #: batch-class frame dropped under overload
EV_DEGRADE = "degrade"  #: frame served at reduced sampling budget
EV_REPROJECT = "reproject"  #: frame's converged rays warped, not marched
EV_KEYFRAME_PROBE = "keyframe_probe"  #: Phase I keyframe started serving
EV_QUANTUM_TUNE = "quantum_tune"  #: auto-tuner resized the quantum

# --- cluster events (admission/serve wall order, no single clock) -----
EV_ROUTE = "route"  #: request placed on a shard (reason attached)
EV_SCALE_OUT = "scale_out"  #: spare accelerator joined the fleet
EV_MIGRATION = "migration"  #: tenant tail handed to another shard

# --- execution-engine events (frame-local cycles) ---------------------
EV_EXEC_STEP = "exec_step"  #: one stepped wavefront slice priced
EV_EXEC_BATCH = "exec_batch"  #: a run_vectorized() span priced
EV_PLAN_BUILD = "plan_build"  #: a FramePlan assembled for this execution
EV_FRAME_FINISH = "frame_finish"  #: finish(): engine totals + bus + energy

#: Every kind the exporters and the golden schema test recognise.
EVENT_KINDS = (
    EV_SERVE_START,
    EV_SERVE_END,
    EV_ADMISSION,
    EV_DEPARTURE,
    EV_SCHED,
    EV_QUANTUM,
    EV_SCANOUT,
    EV_FRAME_COMPLETE,
    EV_FRAME_ABORT,
    EV_PREEMPTION,
    EV_TWIN_DEFER,
    EV_PLAN_CACHE,
    EV_TEMPORAL_CACHE,
    EV_ADMISSION_REJECT,
    EV_SHED,
    EV_DEGRADE,
    EV_REPROJECT,
    EV_KEYFRAME_PROBE,
    EV_QUANTUM_TUNE,
    EV_ROUTE,
    EV_SCALE_OUT,
    EV_MIGRATION,
    EV_EXEC_STEP,
    EV_EXEC_BATCH,
    EV_PLAN_BUILD,
    EV_FRAME_FINISH,
)


@dataclass(frozen=True)
class Event:
    """One telemetry observation.

    Attributes:
        kind: One of the ``EV_*`` constants.
        clock: Virtual-clock stamp in cycles (server clock for serving
            events, frame-local cycles for execution events, 0 for
            admission-order cluster events).
        fields: Kind-specific payload — plain JSON-serialisable values
            only, so the JSONL exporter never needs custom encoders.
    """

    kind: str
    clock: int
    fields: Dict[str, object] = field(default_factory=dict)

    def to_json_obj(self) -> Dict[str, object]:
        """The JSONL line shape (``obs_events/v1`` body rows)."""
        return {"kind": self.kind, "clock": int(self.clock),
                "fields": dict(self.fields)}

    @classmethod
    def from_json_obj(cls, obj: Dict[str, object]) -> "Event":
        return cls(
            kind=str(obj["kind"]),
            clock=int(obj["clock"]),  # type: ignore[arg-type]
            fields=dict(obj.get("fields", {})),  # type: ignore[arg-type]
        )
