"""Pluggable telemetry recorders and the zero-perturbation contract.

A :class:`Recorder` receives :class:`~repro.obs.events.Event`\\ s from the
instrumented layers.  The contract every emit site honours:

1. **Observers never touch cycle accounting.**  An emit site may read
   values the simulation already computed (a charge, a report field, a
   cache counter) but may never compute, round, cache or mutate anything
   the un-instrumented path would not.  Telemetry-on and telemetry-off
   runs therefore produce bit-identical ``ServeReport``/``ClusterReport``
   dicts — pinned by ``tests/test_obs.py`` the same way stepped-vs-
   monolithic execution is pinned.
2. **Zero extra work when disabled.**  The default recorder is
   :data:`NULL_RECORDER`, whose ``enabled`` flag is ``False``; hot loops
   hoist the check (``rec = recorder if recorder.enabled else None``) so
   the disabled path costs one attribute read per loop, not per event.
3. **Emission is fire-and-forget.**  Recorders must not raise out of
   ``emit`` paths in normal operation; a recorder that buffers
   (:class:`MemoryRecorder`) owns its memory.

Use :class:`ScopedRecorder` to fan one sink out to several sources with
constant labels attached — the cluster wraps its recorder once per shard
so every shard-local event arrives tagged ``shard=<name>`` without the
single-box server knowing it lives in a fleet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.obs.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


class Recorder:
    """Base recorder: the emit interface instrumented layers call.

    Attributes:
        enabled: Emit sites skip all event assembly when ``False``.  The
            flag is class-level and constant per recorder type so hot
            loops can hoist the check out of the loop body.
    """

    enabled: bool = True

    def emit(self, kind: str, clock: int, **fields) -> None:
        """Record one observation.  Subclasses override."""
        raise NotImplementedError


class NullRecorder(Recorder):
    """The default: telemetry off, every hook short-circuits.

    ``emit`` is still safe to call (a no-op) so call sites that did not
    hoist the ``enabled`` check stay correct, just not free.
    """

    enabled = False

    def emit(self, kind: str, clock: int, **fields) -> None:  # noqa: D102
        pass


#: Shared default instance — recorders are stateless when disabled, so
#: every un-instrumented server can hold the same one.
NULL_RECORDER = NullRecorder()


class MemoryRecorder(Recorder):
    """Buffers events in order; optionally feeds a metrics registry.

    Args:
        metrics: A :class:`~repro.obs.metrics.MetricsRegistry` updated on
            every emit (event counters by kind plus a few derived
            aggregates).  ``None`` records events only.
    """

    def __init__(self, metrics: Optional["MetricsRegistry"] = None) -> None:
        self.events: List[Event] = []
        self.metrics = metrics

    def emit(self, kind: str, clock: int, **fields) -> None:
        self.events.append(Event(kind=kind, clock=int(clock), fields=fields))
        if self.metrics is not None:
            self.metrics.observe_event(kind, fields)

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()


class ScopedRecorder(Recorder):
    """Forward to another recorder with constant labels merged in.

    The wrapper inherits the target's ``enabled`` state at construction
    (recorders never flip at runtime), so a scope over the null recorder
    is itself free.  Scope labels lose to event fields on collision —
    an event that names its own ``shard`` knows better than the wrapper.
    """

    def __init__(self, target: Recorder, **scope) -> None:
        self._target = target
        self._scope = scope
        self.enabled = target.enabled

    def emit(self, kind: str, clock: int, **fields) -> None:
        if not self.enabled:
            return
        merged = dict(self._scope)
        merged.update(fields)
        self._target.emit(kind, clock, **merged)
