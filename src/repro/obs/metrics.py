"""Labelled metrics: counters, gauges and histograms over telemetry.

The registry is the aggregate face of the event stream: where
:class:`~repro.obs.recorder.MemoryRecorder` keeps every observation, a
:class:`MetricsRegistry` keeps the running totals a dashboard or a CI
check wants — event counts by kind, quantum-size distribution, delivered
frames per client — keyed by ``(metric name, sorted labels)`` so the same
name with different labels is a different time series, Prometheus-style.

All three instrument types are plain Python accumulation (no numpy, no
locks — the simulator is single-threaded) and serialise through
:meth:`MetricsRegistry.to_dict` into the ``results/`` summary the
``repro bench run-all`` harness writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import events as ev

#: Default histogram bucket upper bounds, in cycles — spans scan-out
#: deliveries (~1e2) through full-frame executions (~1e5) at smoke scale.
DEFAULT_BUCKETS = (100, 300, 1000, 3000, 10000, 30000, 100000)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only increase")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (plus the extremes seen)."""

    value: float = 0.0
    min_seen: Optional[float] = None
    max_seen: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        self.min_seen = value if self.min_seen is None else min(self.min_seen, value)
        self.max_seen = value if self.max_seen is None else max(self.max_seen, value)


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/sum (cumulative bucket counts).

    ``buckets`` are upper bounds; an implicit ``+inf`` bucket catches the
    tail, so ``bucket_counts`` has ``len(buckets) + 1`` entries.
    """

    buckets: Sequence[float] = DEFAULT_BUCKETS
    bucket_counts: List[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ConfigurationError("histogram buckets must be ascending")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Registry of labelled counters/gauges/histograms.

    Example:
        >>> reg = MetricsRegistry()
        >>> reg.counter("frames_delivered", client="c0").inc()
        >>> reg.counter("frames_delivered", client="c0").inc()
        >>> reg.counter("frames_delivered", client="c0").value
        2.0
        >>> reg.gauge("queue_depth", shard="shard0").set(3)
        >>> reg.histogram("quantum_cycles").observe(250)
        >>> sorted(reg.to_dict())
        ['counters', 'gauges', 'histograms']
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}

    # -- instrument accessors (create on first use) --------------------
    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        if key not in self._counters:
            self._counters[key] = Counter()
        return self._counters[key]

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        if key not in self._gauges:
            self._gauges[key] = Gauge()
        return self._gauges[key]

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        key = (name, _label_key(labels))
        if key not in self._histograms:
            self._histograms[key] = Histogram(buckets=tuple(buckets))
        return self._histograms[key]

    # -- event feed ----------------------------------------------------
    def observe_event(self, kind: str, fields: Dict[str, object]) -> None:
        """Fold one telemetry event into the standard aggregates.

        Called by :class:`~repro.obs.recorder.MemoryRecorder` on every
        emit; also usable post-hoc via :meth:`from_events`.
        """
        shard = fields.get("shard", "")
        self.counter("obs_events_total", kind=kind, shard=shard).inc()
        if kind in (ev.EV_QUANTUM, ev.EV_SCANOUT):
            self.histogram("quantum_cycles", shard=shard).observe(
                float(fields.get("cycles", 0))  # type: ignore[arg-type]
            )
        elif kind == ev.EV_FRAME_COMPLETE:
            self.counter(
                "frames_delivered",
                shard=shard,
                client=fields.get("client", ""),
                mode=fields.get("mode", ""),
            ).inc()
        elif kind == ev.EV_SCHED:
            self.gauge("queue_depth", shard=shard).set(
                float(fields.get("ready", 0))  # type: ignore[arg-type]
            )
        elif kind == ev.EV_PLAN_CACHE:
            outcome = str(fields.get("outcome", "miss"))
            self.counter("plan_cache_total", shard=shard, outcome=outcome).inc()
        elif kind == ev.EV_TEMPORAL_CACHE:
            self.counter("temporal_accesses_total", shard=shard).inc(
                float(fields.get("accesses", 0))  # type: ignore[arg-type]
            )
            self.counter("temporal_hits_total", shard=shard).inc(
                float(fields.get("hits", 0))  # type: ignore[arg-type]
            )
        elif kind == ev.EV_ADMISSION_REJECT:
            self.counter(
                "admission_rejects_total",
                shard=shard,
                slo_class=fields.get("slo_class", ""),
            ).inc()
        elif kind == ev.EV_SHED:
            self.counter(
                "shed_frames_total",
                shard=shard,
                client=fields.get("client", ""),
            ).inc()
        elif kind == ev.EV_DEGRADE:
            self.counter(
                "degraded_frames_total",
                shard=shard,
                client=fields.get("client", ""),
            ).inc()
        elif kind == ev.EV_QUANTUM_TUNE:
            self.gauge("quantum_steps", shard=shard).set(
                float(fields.get("quantum", 0))  # type: ignore[arg-type]
            )

    @classmethod
    def from_events(cls, events) -> "MetricsRegistry":
        """Aggregate an event list (e.g. a read-back JSONL log)."""
        reg = cls()
        for event in events:
            reg.observe_event(event.kind, event.fields)
        return reg

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, List[Dict[str, object]]]:
        """JSON-style dump: one row per labelled series, sorted."""

        def label_dict(key: _LabelKey) -> Dict[str, str]:
            return {k: v for k, v in key}

        counters = [
            {"name": name, "labels": label_dict(lk), "value": c.value}
            for (name, lk), c in sorted(self._counters.items())
        ]
        gauges = [
            {
                "name": name,
                "labels": label_dict(lk),
                "value": g.value,
                "min": g.min_seen,
                "max": g.max_seen,
            }
            for (name, lk), g in sorted(self._gauges.items())
        ]
        histograms = [
            {
                "name": name,
                "labels": label_dict(lk),
                "buckets": list(h.buckets),
                "bucket_counts": list(h.bucket_counts),
                "count": h.count,
                "sum": h.sum,
                "mean": h.mean,
            }
            for (name, lk), h in sorted(self._histograms.items())
        ]
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}
