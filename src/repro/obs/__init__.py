"""Zero-perturbation observability for the simulator's serving stack.

``repro.obs`` watches the execution engine, the serving event loop and
the cluster routing layer without ever touching what they compute: every
hook is observer-only (events carry values the instrumented code
computed anyway), a disabled recorder costs one pointer comparison per
site, and reports are **bit-identical** with telemetry on or off — the
invariant is test-pinned next to stepped-vs-monolithic in
``tests/test_obs.py``.

Layers:

* :mod:`~repro.obs.events` — the typed event vocabulary and the
  ``obs_events/v1`` record shape;
* :mod:`~repro.obs.recorder` — the pluggable sink contract
  (:class:`~repro.obs.recorder.NullRecorder` default,
  :class:`~repro.obs.recorder.MemoryRecorder` capture,
  :class:`~repro.obs.recorder.ScopedRecorder` label-scoping);
* :mod:`~repro.obs.metrics` — counters/gauges/histograms folded from
  the stream;
* :mod:`~repro.obs.export` — JSONL logs and Perfetto-loadable Chrome
  trace JSON;
* :mod:`~repro.obs.timeline` — the terminal dashboard;
* :mod:`~repro.obs.schemas` — the one validator every machine-readable
  artefact goes through.

``repro.obs.bench`` (the ``repro bench run-all`` harness) is
deliberately *not* imported here — it pulls in the experiment stack;
the CLI imports it lazily.
"""

from repro.obs.events import EVENT_KINDS, OBS_EVENTS_SCHEMA, Event
from repro.obs.export import (
    chrome_trace,
    read_events_jsonl,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import (
    NULL_RECORDER,
    MemoryRecorder,
    NullRecorder,
    Recorder,
    ScopedRecorder,
)
from repro.obs.schemas import validate_file, validate_payload
from repro.obs.timeline import render_dashboard, render_timeline, split_runs

__all__ = [
    "EVENT_KINDS",
    "OBS_EVENTS_SCHEMA",
    "Event",
    "MetricsRegistry",
    "NULL_RECORDER",
    "MemoryRecorder",
    "NullRecorder",
    "Recorder",
    "ScopedRecorder",
    "chrome_trace",
    "read_events_jsonl",
    "render_dashboard",
    "render_timeline",
    "split_runs",
    "validate_file",
    "validate_payload",
    "write_chrome_trace",
    "write_events_jsonl",
]
