"""The AE-style ``repro bench run-all`` harness.

One invocation reproduces every machine-readable benchmark snapshot this
repo publishes — the artifact-evaluation workflow of one command in,
one ``results/`` folder out:

* ``BENCH_serving.json`` (``serving_bench/v1``) — the policy comparison,
  recorded **with telemetry on**, so the same run also yields
* ``results/obs_events.jsonl`` (``obs_events/v1``) and
  ``results/trace_events.json`` (Perfetto-loadable) — the serving
  timeline of every policy run, plus ``results/metrics.json`` (the
  folded metrics registry);
* ``BENCH_engine.json`` (``engine_bench/v1``) — scalar vs batched
  engine, bit-identity gated;
* ``BENCH_cluster.json`` (``cluster_bench/v1``) — router comparison,
  single-shard identity gated;
* ``BENCH_slo.json`` (``slo_bench/v1``) — overload control (admission,
  shedding, PSNR-guarded degrade), attainment gated;
* ``BENCH_video.json`` (``video_bench/v1``) — temporal reprojection +
  adaptive keyframe scheduling, speedup/guard/probe gated;
* ``results/summary.json`` + a printed closing table — the headline
  numbers of all five.

Every artefact is validated through :mod:`repro.obs.schemas` before the
harness reports success, so a run that emits a malformed snapshot fails
loudly.  ``--smoke`` shrinks every dimension to the CI scale (tiny
scene, two frames, one timing round); defaults match the committed
full-scale snapshots.

The engine and cluster payload builders live in ``benchmarks/`` (they
are also pytest modules); they are loaded by file path, so the harness
works from a source checkout without installing anything.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.export import write_chrome_trace, write_events_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import MemoryRecorder
from repro.obs.schemas import validate_file

#: Repo root (``src/repro/obs/bench.py`` → three parents up).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Full-scale defaults — match the committed BENCH_*.json snapshots.
FULL_PRESET = dict(
    scene="palace",
    size=16,
    frames=4,
    serving_clients=3,
    engine_clients=6,
    cluster_clients=6,
    shards=2,
    quantum=2,
    rounds=3,
    slo_size=16,
    video_frames=6,
    video_size=16,
)

#: CI smoke scale — the same shapes the per-bench smoke jobs use.
SMOKE_PRESET = dict(
    scene="lego",
    size=8,
    frames=2,
    serving_clients=2,
    engine_clients=2,
    cluster_clients=6,
    shards=2,
    quantum=2,
    rounds=1,
    slo_size=8,
    video_frames=4,
    video_size=8,
)


def _load_benchmark(name: str):
    """Import a ``benchmarks/`` module by path (they are not a package)."""
    path = REPO_ROOT / "benchmarks" / f"{name}.py"
    if not path.exists():
        raise ConfigurationError(f"benchmark module not found: {path}")
    spec = importlib.util.spec_from_file_location(f"bench_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_json(path: Path, payload: Dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_all(
    out_dir=".",
    smoke: bool = False,
    progress: Optional[Callable[[str], None]] = print,
) -> Dict[str, object]:
    """Run the serving, engine, cluster, SLO and video benchmark suites
    end to end.

    Writes the five ``BENCH_*.json`` snapshots into ``out_dir`` and the
    telemetry/summary artefacts into ``out_dir/results/``, validates all
    of them, and returns a manifest ``{"artifacts": {name: path},
    "problems": {path: [...]}, "summary_rows": [...]}`` — empty
    ``problems`` means every schema checked out.
    """
    say = progress if progress is not None else (lambda _msg: None)
    preset = SMOKE_PRESET if smoke else FULL_PRESET
    out = Path(out_dir)
    results = out / "results"
    results.mkdir(parents=True, exist_ok=True)
    artifacts: Dict[str, Path] = {}
    payloads: Dict[str, Dict] = {}

    # ------------------------------------------------------------------
    # 1. Serving policy comparison, with telemetry on.
    # ------------------------------------------------------------------
    from repro.experiments.serving import default_client_mix, serve_reports
    from repro.experiments.workbench import Workbench
    from repro.serving.policies import ALL_POLICY_NAMES
    from repro.serving.report import bench_summary, bench_table_rows

    say(f"[1/5] serving bench ({'smoke' if smoke else 'full'} scale)")
    wb = Workbench()
    requests = default_client_mix(
        scene=preset["scene"],
        clients=preset["serving_clients"],
        frames=preset["frames"],
        size=preset["size"],
    )
    policies = (
        ("round_robin", "round_robin_preemptive") if smoke
        else tuple(ALL_POLICY_NAMES)
    )
    metrics = MetricsRegistry()
    recorder = MemoryRecorder(metrics=metrics)
    reports = serve_reports(
        wb,
        requests,
        policies=policies,
        quantum=preset["quantum"],
        recorder=recorder,
    )
    payloads["serving"] = bench_summary(reports)
    artifacts["serving"] = out / "BENCH_serving.json"
    _write_json(artifacts["serving"], payloads["serving"])

    clock_hz = next(iter(reports.values())).clock_hz
    artifacts["events"] = results / "obs_events.jsonl"
    write_events_jsonl(
        artifacts["events"],
        recorder.events,
        clock_hz=clock_hz,
        meta={"suite": "serving", "policies": list(policies), **preset},
    )
    artifacts["trace"] = results / "trace_events.json"
    write_chrome_trace(artifacts["trace"], recorder.events, clock_hz=clock_hz)
    artifacts["metrics"] = results / "metrics.json"
    _write_json(artifacts["metrics"], metrics.to_dict())
    say(
        f"      {len(recorder.events)} events -> "
        f"{artifacts['events'].name}, {artifacts['trace'].name}"
    )

    # ------------------------------------------------------------------
    # 2. Engine throughput (scalar vs batched, identity gated).
    # ------------------------------------------------------------------
    say("[2/5] engine bench")
    engine = _load_benchmark("test_engine_throughput")
    payloads["engine"] = engine.engine_bench_payload(
        scene=preset["scene"],
        clients=preset["engine_clients"],
        frames=preset["frames"],
        size=preset["size"],
        quantum=preset["quantum"],
        rounds=preset["rounds"],
    )
    artifacts["engine"] = out / "BENCH_engine.json"
    _write_json(artifacts["engine"], payloads["engine"])

    # ------------------------------------------------------------------
    # 3. Cluster serving (router comparison, identity gated).
    # ------------------------------------------------------------------
    say("[3/5] cluster bench")
    cluster = _load_benchmark("test_cluster_serving")
    payloads["cluster"] = cluster.cluster_bench_payload(
        scene=preset["scene"],
        clients=preset["cluster_clients"],
        frames=preset["frames"],
        size=preset["size"],
        shards=preset["shards"],
        rounds=preset["rounds"],
    )
    artifacts["cluster"] = out / "BENCH_cluster.json"
    _write_json(artifacts["cluster"], payloads["cluster"])

    # ------------------------------------------------------------------
    # 4. SLO overload control (attainment gated).  The mix is calibrated
    #    on the palace scene at 4 frames — the shape the gates were
    #    tuned against — so only the resolution follows the preset.
    # ------------------------------------------------------------------
    say("[4/5] slo bench")
    slo = _load_benchmark("test_slo_serving")
    payloads["slo"] = slo.timed_payload(
        scene="palace",
        frames=4,
        size=preset["slo_size"],
    )
    artifacts["slo"] = out / "BENCH_slo.json"
    _write_json(artifacts["slo"], payloads["slo"])

    # ------------------------------------------------------------------
    # 5. Temporal reprojection + adaptive keyframing (speedup/guard/probe
    #    gated).  Like the SLO mix, the gates were calibrated on the
    #    palace scene, so only the resolution/frames follow the preset.
    # ------------------------------------------------------------------
    say("[5/5] video bench")
    video = _load_benchmark("test_video_reproject")
    payloads["video"] = video.timed_payload(
        scene="palace",
        frames=preset["video_frames"],
        size=preset["video_size"],
    )
    artifacts["video"] = out / "BENCH_video.json"
    _write_json(artifacts["video"], payloads["video"])

    # ------------------------------------------------------------------
    # Summary table + one-validator pass over everything written.
    # ------------------------------------------------------------------
    summary_rows = bench_table_rows(payloads)
    artifacts["summary"] = results / "summary.json"
    _write_json(
        artifacts["summary"],
        {
            "schema": "bench_runall/v1",
            "preset": dict(preset),
            "smoke": smoke,
            "rows": summary_rows,
            "artifacts": {
                name: str(path) for name, path in artifacts.items()
            },
        },
    )

    problems: Dict[str, List[str]] = {}
    for name in (
        "serving", "engine", "cluster", "slo", "video", "events", "trace"
    ):
        errs = validate_file(artifacts[name])
        if errs:
            problems[str(artifacts[name])] = errs
    return {
        "artifacts": {n: str(p) for n, p in artifacts.items()},
        "problems": problems,
        "summary_rows": summary_rows,
    }
