"""Design-space exploration: Figures 21, 22 and 23."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.core.config import (
    AdaptiveSamplingConfig,
    ApproximationConfig,
    ASDRConfig,
)
from repro.experiments.harness import register
from repro.experiments.performance import _accelerator
from repro.experiments.workbench import EXPERIMENT_GRID, EXPERIMENT_MODEL, Workbench
from repro.metrics.image import psnr

SWEEP_SCENES = ("palace", "fountain", "family")
APPROX_SCENES = ("lego", "chair", "mic")


@register("fig21a", "Adaptive-sampling threshold sweep")
def fig21a_threshold(wb: Workbench) -> List[Dict[str, object]]:
    """Speedup/PSNR across delta (paper: delta=1/2048 ~6x, <0.3 dB loss)."""
    thresholds: List[Optional[float]] = [None, 0.0, 1.0 / 2048.0, 1.0 / 256.0]
    accelerator = _accelerator(ArchConfig.server())
    rows = []
    for scene in SWEEP_SCENES:
        camera = wb.dataset(scene).cameras[0]
        reference = wb.reference(scene)
        base_time = None
        for threshold in thresholds:
            if threshold is None:
                config = ASDRConfig(adaptive=None, approximation=None)
                label = "no adaptive sampling"
            else:
                config = ASDRConfig(
                    adaptive=AdaptiveSamplingConfig(threshold=threshold),
                    approximation=None,
                )
                label = f"delta={threshold:.6f}"
            result = wb.asdr_render(scene, asdr_config=config)
            report = accelerator.simulate_render(camera, result, group_size=1)
            if base_time is None:
                base_time = report.time_seconds
            rows.append(
                {
                    "scene": scene,
                    "config": label,
                    "speedup": base_time / report.time_seconds,
                    "psnr": psnr(result.image, reference),
                    "avg_points": result.average_samples_per_ray,
                }
            )
    return rows


@register("fig21b", "Rendering-approximation group-size sweep")
def fig21b_group_size(wb: Workbench) -> List[Dict[str, object]]:
    """Energy saving/PSNR across n (paper: n=4 saves ~2.7x, <0.3 dB)."""
    accelerator = _accelerator(ArchConfig.server())
    rows = []
    for scene in APPROX_SCENES:
        camera = wb.dataset(scene).cameras[0]
        reference = wb.reference(scene)
        base_energy = None
        for n in (1, 2, 3, 4):
            config = ASDRConfig(adaptive=None, approximation=ApproximationConfig(n))
            result = wb.asdr_render(scene, asdr_config=config)
            report = accelerator.simulate_render(camera, result, group_size=n)
            # Dynamic (engine) energy: the color-MLP reduction the paper's
            # Figure 21b measures; shared clock/buffer power would mask it.
            if base_energy is None:
                base_energy = report.dynamic_energy_joules
            rows.append(
                {
                    "scene": scene,
                    "group_size": n,
                    "energy_saving": base_energy / report.dynamic_energy_joules,
                    "psnr": psnr(result.image, reference),
                }
            )
    return rows


@register("fig22", "Register-cache size sweep")
def fig22_cache_size(wb: Workbench) -> List[Dict[str, object]]:
    """Encoding speedup vs cache size (paper: 8 items ~2.49x over none)."""
    rows = []
    for scene in ("palace", "fountain", "family", "fox", "mic"):
        camera = wb.dataset(scene).cameras[0]
        # The cache study uses the uniform-budget render: wavefronts then
        # hold raster-adjacent rays, the locality regime the register
        # cache (and the paper's profiling in Figure 15) targets.
        result = wb.baseline_render(scene)
        base_cycles = None
        for entries in (0, 2, 4, 8, 16):
            config = ArchConfig.server(cache_entries=entries)
            accelerator = _accelerator(config)
            report = accelerator.simulate_render(
                camera, result, group_size=wb.group_size()
            )
            # The cache relieves the memory-crossbar read stage.  Two
            # views: read-stage cycles (pipelined; bounded by the worst
            # level's misses) and raw crossbar accesses (the data-access
            # reduction the paper's 2.49x headline tracks).
            if base_cycles is None:
                base_cycles = report.encoding.read_cycles
                base_accesses = report.encoding.xbar_accesses
            rows.append(
                {
                    "scene": scene,
                    "cache_entries": entries,
                    "encoding_speedup": base_cycles / max(report.encoding.read_cycles, 1),
                    "access_reduction": base_accesses
                    / max(report.encoding.xbar_accesses, 1),
                    "cache_hit_rate": report.encoding.cache_hit_rate,
                }
            )
    return rows


@register("fig23", "Early termination x adaptive sampling")
def fig23_early_termination(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Figure 23 (paper: ET 3.67x, AS 4.4x, ET+AS 11.07x)."""
    configs = {
        "strawman": ASDRConfig(adaptive=None, approximation=None),
        "et": ASDRConfig(adaptive=None, approximation=None, early_termination=0.99),
        "as": ASDRConfig(approximation=None),
        "et+as": ASDRConfig(approximation=None, early_termination=0.99),
    }
    accelerator = _accelerator(ArchConfig.server())
    rows = []
    for scene in ("palace", "fountain", "family", "fox", "mic"):
        camera = wb.dataset(scene).cameras[0]
        times = {}
        for label, config in configs.items():
            result = wb.asdr_render(scene, asdr_config=config)
            report = accelerator.simulate_render(camera, result, group_size=1)
            times[label] = report.time_seconds
        rows.append(
            {
                "scene": scene,
                "et_speedup": times["strawman"] / times["et"],
                "as_speedup": times["strawman"] / times["as"],
                "et_as_speedup": times["strawman"] / times["et+as"],
            }
        )
    avg = {
        "scene": "average",
        **{
            k: float(np.mean([r[k] for r in rows]))
            for k in ("et_speedup", "as_speedup", "et_as_speedup")
        },
    }
    rows.append(avg)
    return rows
