"""Extension experiments beyond the paper's evaluation.

* ``ext_quant`` — quality vs CIM precision: the accelerator stores weights
  on 8-bit crossbar cells (Section 6.1); this ablation sweeps the weight/
  table bit width and measures rendering quality, validating the paper's
  implicit choice that 8 bits is quality-neutral.
* ``ext_gaussian`` — Section 8.2's proposed future work, adaptive Gaussian
  sampling, measured on the minimal 3DGS substrate in ``repro.gaussian``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.harness import register
from repro.experiments.workbench import Workbench
from repro.gaussian.adaptive import AdaptiveGaussianConfig, AdaptiveGaussianRenderer
from repro.gaussian.render import GaussianRenderer
from repro.gaussian.splats import fit_gaussians
from repro.metrics.image import psnr
from repro.nerf.quantization import QuantizedInstantNGP
from repro.nerf.renderer import BaselineRenderer


@register("ext_quant", "Extension: rendering quality vs CIM bit precision")
def ext_quantization(wb: Workbench) -> List[Dict[str, object]]:
    """Sweep crossbar weight/table precision on the lego scene."""
    model = wb.model("lego")
    camera = wb.dataset("lego").cameras[0]
    full = wb.baseline_render("lego").image
    rows = []
    for bits in (4, 6, 8, 10):
        quantized = QuantizedInstantNGP(model, weight_bits=bits, table_bits=bits)
        image = BaselineRenderer(
            quantized, num_samples=wb.config.num_samples
        ).render_image(camera).image
        rows.append(
            {
                "bits": bits,
                "psnr_vs_float": psnr(image, full),
            }
        )
    return rows


@register("ext_gaussian", "Extension: adaptive Gaussian sampling (Sec. 8.2)")
def ext_adaptive_gaussian(wb: Workbench) -> List[Dict[str, object]]:
    """Blend savings and quality of adaptive Gaussian sampling."""
    rows = []
    for scene_name in ("mic", "chair"):
        scene = wb.dataset(scene_name).scene
        cloud = fit_gaussians(scene, count=800, radius=0.025, seed=wb.config.seed)
        camera = wb.dataset(scene_name).cameras[0]
        renderer = GaussianRenderer(cloud)
        full = renderer.render_image(camera)
        adaptive = AdaptiveGaussianRenderer(
            renderer,
            AdaptiveGaussianConfig(probe_stride=4, threshold=1.0 / 512.0),
        )
        result, stats = adaptive.render_image(camera)
        rows.append(
            {
                "scene": scene_name,
                "gaussians": len(cloud),
                "full_blends": stats["full_blends"],
                "adaptive_blends": stats["adaptive_blends"],
                "blend_savings_pct": 100.0 * stats["savings"],
                "psnr_vs_full": psnr(result.image, full.image),
            }
        )
    return rows
