"""Rendering-quality experiments: Figure 16 and Table 3.

Baselines:

* **Instant-NGP** — the fixed-budget render (reference pipeline).
* **Re-NeRF (sw)** — naive uniform sample reduction to half the budget
  without difficulty awareness (the paper's Figure 9b comparison; Re-NeRF
  loses ~2 dB in Figure 16).
* **NeuRex (sw/hw)** — subgrid encoding with on-chip-friendly quantisation;
  modelled by quantising the hash-grid features to 8 bits (paper: -0.38 dB).
* **ASDR** — adaptive sampling + color decoupling (paper: -0.07 dB).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.harness import register
from repro.experiments.workbench import Workbench
from repro.metrics.image import lpips_proxy, psnr, ssim
from repro.nerf.renderer import BaselineRenderer
from repro.scenes.analytic import scene_names

TABLE3_SCENES = ("lego", "ship", "hotdog", "chair", "mic", "ficus")


class QuantizedEncodingModel:
    """Wraps a model, quantising its encoder features (NeuRex-style).

    NeuRex's subgrid scheme stores grid features in compact on-chip
    buffers; we reproduce its small quality cost by quantising the
    embedding tables to ``bits`` before rendering.
    """

    def __init__(self, model, bits: int = 8) -> None:
        self._model = model
        self.config = model.config
        scale = float(max(np.abs(t).max() for t in model.encoder.tables) or 1.0)
        self._step = 2.0 * scale / (2**bits - 1)

    def query_density(self, points):
        encoder = self._model.encoder
        original = encoder.tables
        try:
            encoder.tables = [
                np.round(t / self._step) * self._step for t in original
            ]
            return self._model.query_density(points)
        finally:
            encoder.tables = original

    def query_color(self, geo_feat, dirs):
        return self._model.query_color(geo_feat, dirs)

    def __getattr__(self, name):
        return getattr(self._model, name)


@register("fig16", "Rendering quality (PSNR) across scenes")
def fig16_quality(wb: Workbench) -> List[Dict[str, object]]:
    """PSNR of Instant-NGP / Re-NeRF / NeuRex / ASDR vs ground truth."""
    rows = []
    for scene in scene_names():
        model = wb.model(scene)
        camera = wb.dataset(scene).cameras[0]
        reference = wb.reference(scene)

        ingp = wb.baseline_render(scene).image
        # Re-NeRF-style uniform reduction: a quarter of the budget with no
        # difficulty awareness.  (At paper scale — 800x800, finer geometry —
        # this costs ~2 dB; our smoother small scenes compress the gap.)
        renerf = BaselineRenderer(
            model, num_samples=max(4, wb.config.num_samples // 4)
        ).render_image(camera).image
        neurex = BaselineRenderer(
            QuantizedEncodingModel(model, bits=8),
            num_samples=wb.config.num_samples,
        ).render_image(camera).image
        asdr = wb.asdr_render(scene).image

        rows.append(
            {
                "scene": scene,
                "instant_ngp": psnr(ingp, reference),
                "re_nerf_sw": psnr(renerf, reference),
                "neurex": psnr(neurex, reference),
                "asdr": psnr(asdr, reference),
                "asdr_delta": psnr(asdr, reference) - psnr(ingp, reference),
            }
        )
    avg = {
        "scene": "average",
        **{
            k: float(np.mean([r[k] for r in rows]))
            for k in ("instant_ngp", "re_nerf_sw", "neurex", "asdr", "asdr_delta")
        },
    }
    rows.append(avg)
    return rows


@register("table3", "SSIM / LPIPS comparison (Instant-NGP vs ASDR)")
def table3_ssim_lpips(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Table 3 (paper: average deltas ~0.002)."""
    rows = []
    for scene in TABLE3_SCENES:
        reference = wb.reference(scene)
        ingp = wb.baseline_render(scene).image
        asdr = wb.asdr_render(scene).image
        rows.append(
            {
                "scene": scene,
                "ssim_instant_ngp": ssim(ingp, reference),
                "ssim_asdr": ssim(asdr, reference),
                "lpips_instant_ngp": lpips_proxy(ingp, reference),
                "lpips_asdr": lpips_proxy(asdr, reference),
            }
        )
    avg = {
        "scene": "average",
        **{
            k: float(np.mean([r[k] for r in rows]))
            for k in rows[0]
            if k != "scene"
        },
    }
    rows.append(avg)
    return rows


@register("fig7", "Adaptive sampling visualisation statistics")
def fig7_adaptive_sampling(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Figure 7: near-lossless rendering with fewer samples."""
    reference = wb.reference("lego")
    base = wb.baseline_render("lego")
    asdr = wb.asdr_render("lego")
    budget_map = asdr.plan.budget_image(wb.config.height, wb.config.width)
    return [
        {
            "render": "fixed budget",
            "avg_points_per_pixel": float(base.points_total / base.num_rays),
            "psnr": psnr(base.image, reference),
        },
        {
            "render": "adaptive sampling",
            "avg_points_per_pixel": float(asdr.plan.average_budget),
            "psnr": psnr(asdr.image, reference),
        },
        {
            "render": "budget map stats",
            "avg_points_per_pixel": float(budget_map.mean()),
            "psnr": float("nan"),
        },
    ]


@register("fig9", "Volume-rendering approximation vs naive reduction")
def fig9_approximation(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Figure 9: decoupling beats naive half sampling."""
    from repro.core.config import ASDRConfig, ApproximationConfig

    model = wb.model("lego")
    camera = wb.dataset("lego").cameras[0]
    reference = wb.reference("lego")
    full = wb.baseline_render("lego")
    naive = BaselineRenderer(
        model, num_samples=max(4, wb.config.num_samples // 2)
    ).render_image(camera)
    ours = wb.asdr_render(
        "lego",
        asdr_config=ASDRConfig(adaptive=None, approximation=ApproximationConfig(2)),
    )
    total_full = full.total_flops
    return [
        {
            "render": "original (N densities + N colors)",
            "psnr": psnr(full.image, reference),
            "flops_pct": 100.0,
        },
        {
            "render": "naive reduction (N/2 + N/2)",
            "psnr": psnr(naive.image, reference),
            "flops_pct": 100.0 * naive.total_flops / total_full,
        },
        {
            "render": "ours (N densities + N/2 colors)",
            "psnr": psnr(ours.image, reference),
            "flops_pct": 100.0 * ours.total_flops / total_full,
        },
    ]
