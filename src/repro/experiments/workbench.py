"""Shared experiment workbench: scenes, trained models, renders — cached.

The paper's evaluation renders ten scenes at 800x800 with 192 samples from
trained Instant-NGP checkpoints.  The workbench reproduces that setup at a
laptop-friendly scale (see DESIGN.md "Workload scaling"): each scene is
distilled once into a model checkpoint cached on disk under
``.cache/models``, and renders are memoised per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import ASDRConfig
from repro.errors import ConfigurationError
from repro.core.pipeline import ASDRRenderer
from repro.core.stats import ASDRRenderResult
from repro.exec.sequence import SequenceRender, SequenceTrace, render_camera_path
from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.io import (
    load_instant_ngp,
    load_tensorf,
    save_instant_ngp,
    save_tensorf,
)
from repro.nerf.model import InstantNGPConfig, InstantNGPModel
from repro.nerf.renderer import BaselineRenderer, RenderResult
from repro.nerf.tensorf import TensoRFConfig, TensoRFModel
from repro.nerf.training import TrainingConfig, distill_scene
from repro.scenes.cameras import CameraPath
from repro.scenes.dataset import SceneDataset, load_dataset
from repro.utils.rng import derive_seed

#: Experiment-scale grid: 8 levels, 2^13 entries (the paper's 16 / 2^19
#: scaled down; the dense/hashed level split is preserved).
EXPERIMENT_GRID = HashGridConfig(
    num_levels=8, table_size=2**13, base_resolution=8, max_resolution=128
)

#: Experiment-scale model: widths chosen to preserve the paper's ~2/8/90
#: embedding/density/color FLOP split (Figure 5).
EXPERIMENT_MODEL = InstantNGPConfig(
    grid=EXPERIMENT_GRID,
    density_hidden_dim=32,
    color_hidden_dim=64,
    color_num_hidden=3,
)

EXPERIMENT_TENSORF = TensoRFConfig(
    resolution=48,
    num_components=8,
    density_hidden_dim=32,
    color_hidden_dim=64,
    color_num_hidden=3,
)


def experiment_accelerator(scale: str = "server"):
    """An :class:`~repro.arch.accelerator.ASDRAccelerator` for the
    experiment-scale model at the given design point (``server`` or
    ``edge``) — the single definition the video and serving experiments
    share, so a design-point change cannot diverge between them."""
    from repro.arch.accelerator import ASDRAccelerator
    from repro.arch.config import ArchConfig

    config = ArchConfig.server() if scale == "server" else ArchConfig.edge()
    return ASDRAccelerator(
        config,
        EXPERIMENT_GRID,
        EXPERIMENT_MODEL.density_mlp_config,
        EXPERIMENT_MODEL.color_mlp_config,
    )


@dataclass
class WorkbenchConfig:
    """Scale and caching knobs of the experiment workbench.

    Attributes:
        width / height: Render resolution.
        num_samples: Full per-ray budget ``ns``.
        train_steps / train_batch: Distillation effort per scene.
        seed: Master seed.
        cache_dir: Checkpoint directory (created on demand).
    """

    width: int = 56
    height: int = 56
    num_samples: int = 48
    train_steps: int = 250
    train_batch: int = 1024
    seed: int = 7
    cache_dir: str = ".cache/models"


class Workbench:
    """Builds and memoises datasets, models and renders for experiments."""

    def __init__(self, config: Optional[WorkbenchConfig] = None) -> None:
        self.config = config or WorkbenchConfig()
        self._datasets: Dict[str, SceneDataset] = {}
        self._models: Dict[str, InstantNGPModel] = {}
        self._tensorf_models: Dict[str, TensoRFModel] = {}
        self._renders: Dict[Tuple, object] = {}

    # ------------------------------------------------------------------
    def dataset(self, scene: str) -> SceneDataset:
        if scene not in self._datasets:
            self._datasets[scene] = load_dataset(
                scene, width=self.config.width, height=self.config.height
            )
        return self._datasets[scene]

    def reference(self, scene: str, view: int = 0) -> np.ndarray:
        return self.dataset(scene).reference_image(view, num_samples=192)

    # ------------------------------------------------------------------
    def _checkpoint_path(self, scene: str, kind: str) -> Path:
        cfg = self.config
        root = Path(cfg.cache_dir)
        root.mkdir(parents=True, exist_ok=True)
        tag = f"{kind}-{scene}-s{cfg.seed}-t{cfg.train_steps}x{cfg.train_batch}"
        return root / f"{tag}.npz"

    def model(self, scene: str) -> InstantNGPModel:
        """The scene's distilled Instant-NGP model (disk-cached)."""
        if scene in self._models:
            return self._models[scene]
        path = self._checkpoint_path(scene, "ingp")
        if path.exists():
            model = load_instant_ngp(path)
        else:
            model = InstantNGPModel(
                EXPERIMENT_MODEL, seed=derive_seed(self.config.seed, scene)
            )
            distill_scene(
                model,
                self.dataset(scene).scene,
                TrainingConfig(
                    steps=self.config.train_steps,
                    batch_size=self.config.train_batch,
                    seed=self.config.seed,
                ),
            )
            save_instant_ngp(model, path)
        self._models[scene] = model
        return model

    def tensorf_model(self, scene: str) -> TensoRFModel:
        """The scene's distilled TensoRF model (disk-cached)."""
        if scene in self._tensorf_models:
            return self._tensorf_models[scene]
        path = self._checkpoint_path(scene, "tensorf")
        if path.exists():
            model = load_tensorf(path)
        else:
            model = TensoRFModel(
                EXPERIMENT_TENSORF, seed=derive_seed(self.config.seed, scene, "t")
            )
            distill_scene(
                model,
                self.dataset(scene).scene,
                TrainingConfig(
                    steps=self.config.train_steps,
                    batch_size=self.config.train_batch,
                    seed=self.config.seed,
                ),
            )
            save_tensorf(model, path)
        self._tensorf_models[scene] = model
        return model

    # ------------------------------------------------------------------
    def baseline_render(
        self, scene: str, view: int = 0, tensorf: bool = False
    ) -> RenderResult:
        """Fixed-budget (original pipeline) render, memoised."""
        key = ("baseline", scene, view, tensorf)
        if key not in self._renders:
            model = self.tensorf_model(scene) if tensorf else self.model(scene)
            renderer = BaselineRenderer(model, num_samples=self.config.num_samples)
            self._renders[key] = renderer.render_image(self.dataset(scene).cameras[view])
        return self._renders[key]

    def asdr_render(
        self,
        scene: str,
        view: int = 0,
        asdr_config: Optional[ASDRConfig] = None,
        tensorf: bool = False,
    ) -> ASDRRenderResult:
        """ASDR two-phase render, memoised per configuration."""
        asdr_config = asdr_config or ASDRConfig()
        key = ("asdr", scene, view, tensorf, asdr_config.cache_key())
        if key not in self._renders:
            model = self.tensorf_model(scene) if tensorf else self.model(scene)
            renderer = ASDRRenderer(
                model, config=asdr_config, num_samples=self.config.num_samples
            )
            self._renders[key] = renderer.render_image(self.dataset(scene).cameras[view])
        return self._renders[key]

    def frame_trace(
        self,
        scene: str,
        view: int = 0,
        asdr_config: Optional[ASDRConfig] = None,
        tensorf: bool = False,
        baseline: bool = False,
    ):
        """The memoised render's :class:`~repro.exec.frame_trace.FrameTrace`.

        Render memoisation (keyed by the same canonical config key) makes
        the trace shared state: a render→simulate experiment pair, or the
        fig17/fig18/fig19 trio simulating one frame three times, replays
        one trace instead of re-deriving rays, samples and voxel corners.
        """
        result = (
            self.baseline_render(scene, view, tensorf)
            if baseline
            else self.asdr_render(scene, view, asdr_config, tensorf)
        )
        return result.trace

    def group_size(self, asdr_config: Optional[ASDRConfig] = None) -> int:
        asdr_config = asdr_config or ASDRConfig()
        approx = asdr_config.approximation
        return approx.group_size if approx else 1

    # ------------------------------------------------------------------
    def sequence_render(
        self,
        scene: str,
        path: CameraPath,
        asdr_config: Optional[ASDRConfig] = None,
        tensorf: bool = False,
        baseline: bool = False,
        probe_interval: int = 0,
        reuse_poses: bool = True,
        reproject=None,
        adaptive_overlap: Optional[float] = None,
    ) -> SequenceRender:
        """Render a whole camera-path sequence, memoised.

        Sequences are cached under
        ``(scene, CameraPath.cache_key(), config key, reuse knobs)`` — the
        sequence-level analogue of the per-frame render memo, so the video
        experiment, its benchmark and the CLI all replay one
        :class:`~repro.exec.sequence.SequenceTrace` (cross-frame memo
        state included) instead of re-rendering the path.

        Args:
            scene: Scene name.
            path: The camera trajectory (its resolution applies, not the
                workbench's).
            asdr_config: ASDR algorithm settings (ignored for baseline).
            tensorf: Use the TensoRF backend instead of Instant-NGP.
            baseline: Render the fixed-budget pipeline instead of ASDR
                (no plan reuse — the original pipeline has no Phase I).
            probe_interval: ASDR Phase I cadence (see
                :meth:`repro.core.pipeline.ASDRRenderer.render_sequence`);
                default ``0`` probes the first frame only.
            reuse_poses: Replay bit-identical poses.
            reproject: Optional
                :class:`~repro.core.reprojection.ReprojectionConfig` —
                arm temporal reprojection for non-keyframes (ASDR only).
            adaptive_overlap: Optional overlap threshold replacing the
                fixed ``probe_interval`` cadence (ASDR only).
        """
        if baseline and (reproject is not None or adaptive_overlap is not None):
            raise ConfigurationError(
                "reprojection/adaptive keyframing need Phase I plans; the "
                "baseline pipeline has none"
            )
        asdr_config = asdr_config or ASDRConfig()
        key = (
            "sequence",
            scene,
            path.cache_key(),
            tensorf,
            baseline,
            probe_interval,
            reuse_poses,
            None if baseline else asdr_config.cache_key(),
            None if reproject is None else reproject.cache_key(),
            adaptive_overlap,
        )
        if key not in self._renders:
            model = self.tensorf_model(scene) if tensorf else self.model(scene)
            cameras = path.cameras()
            if baseline:
                renderer = BaselineRenderer(
                    model, num_samples=self.config.num_samples
                )
                outcome = render_camera_path(
                    renderer.render_image,
                    cameras,
                    path_key=path.cache_key(),
                    kind="baseline",
                    reuse_poses=reuse_poses,
                )
            else:
                asdr = ASDRRenderer(
                    model, config=asdr_config, num_samples=self.config.num_samples
                )
                outcome = asdr.render_sequence(
                    cameras,
                    probe_interval=probe_interval,
                    reuse_poses=reuse_poses,
                    path_key=path.cache_key(),
                    reproject=reproject,
                    adaptive_overlap=adaptive_overlap,
                )
            self._renders[key] = outcome
        return self._renders[key]

    def client_sequence(self, request) -> SequenceRender:
        """The memoised sequence render for one serving client.

        Maps a :class:`~repro.serving.request.ClientRequest` onto
        :meth:`sequence_render`, so every serving run — any policy, any
        client mix — shares one rendered
        :class:`~repro.exec.sequence.SequenceTrace` per distinct
        ``(scene, path, probe_interval, backend)``: twin clients cost no
        extra rendering, and repeated ``repro serve`` invocations against
        one workbench replay warm traces."""
        return self.sequence_render(
            request.scene,
            request.path,
            tensorf=request.tensorf,
            probe_interval=request.probe_interval,
        )

    def sequence_trace(
        self,
        scene: str,
        path: CameraPath,
        asdr_config: Optional[ASDRConfig] = None,
        tensorf: bool = False,
        baseline: bool = False,
        probe_interval: int = 0,
        reuse_poses: bool = True,
    ) -> SequenceTrace:
        """The memoised sequence render's
        :class:`~repro.exec.sequence.SequenceTrace` (shared state, like
        :meth:`frame_trace` for single frames)."""
        return self.sequence_render(
            scene,
            path,
            asdr_config=asdr_config,
            tensorf=tensorf,
            baseline=baseline,
            probe_interval=probe_interval,
            reuse_poses=reuse_poses,
        ).trace
