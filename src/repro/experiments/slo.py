"""SLO-class serving under overload: admission, shedding, degrade.

The ``slo`` experiment offers one accelerator more work than it can
serve on time — one ``interactive`` tenant whose frame cadence is
*tighter than its own alone full-quality pace* (but within reach of the
degraded pace), one ``standard`` tenant near its fair share and a tail
of ``batch`` tenants — and serves the same offered load twice:

* **baseline** — the pre-SLO server (no admission cap, no shedding, no
  degrade) under preemptive round-robin: every class shares the box
  equally, so the interactive tenant blows through its deadlines;
* **slo** — the deadline-weighted preemptive policy with an
  :class:`~repro.serving.slo.SLOConfig` armed: the overflow batch tenant
  is rejected at submit, the doomed batch backlog is shed the moment the
  interactive deadline slips, and the interactive tenant's remaining
  reuse frames are served at a reduced sampling budget (PSNR-guarded) to
  claw its cadence back under the deadline.

Priority alone cannot pass the gates here: the deadline-weighted policy
already gives the interactive tenant the box whenever its slack is
tightest, but its full-quality pace *still* misses the cadence — only
the degrade path closes the gap, and only shedding stops the box from
burning cycles on batch frames that are already unmeetable.

The acceptance gates (validated by ``slo_bench/v1``) pin the trade: the
SLO run must lift interactive attainment to ≥ 0.95 where the baseline
attains < 0.7, at equal or lower busy cycles, with every degraded
frame's PSNR at or above the configured guard.

Deadlines are calibrated, not hard-coded: a scratch run measures each
tenant's alone pace, and per-class factors scale the *fair share* cadence
(alone pace × number of admitted tenants) — so the mix stays an overload
at any workbench scale or accelerator design point.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import ASDRRenderer
from repro.errors import ConfigurationError
from repro.exec.scheduler import WORK_REUSE, sequence_work_items
from repro.experiments.harness import register
from repro.experiments.workbench import Workbench, experiment_accelerator
from repro.metrics.image import psnr
from repro.obs.events import EV_ADMISSION_REJECT, EV_DEGRADE, EV_QUANTUM_TUNE, EV_SHED
from repro.obs.recorder import MemoryRecorder
from repro.scenes.cameras import camera_path
from repro.serving.policies import make_policy
from repro.serving.report import ServeReport
from repro.serving.request import ClientRequest
from repro.serving.server import SequenceServer
from repro.serving.slo import AUTO_QUANTUM, AdmissionError, SLOConfig

#: Acceptance-scale defaults (matching the ``serve`` experiment).
DEFAULT_SCENE = "palace"
DEFAULT_FRAMES = 4
DEFAULT_SIZE = 16

#: Degrade knobs the experiment arms: halve the per-ray budget, accept
#: the cut only where the re-rendered frame stays within 15 dB.
DEFAULT_DEGRADE_FRACTION = 0.5
DEFAULT_DEGRADE_MIN_PSNR = 15.0

#: Fair-share cadence multipliers per class.  The interactive factor is
#: the load-bearing one: at ``1/n`` the cadence equals the tenant's alone
#: full-quality pace, so a factor below ``1/n`` (0.13 vs 1/7 ≈ 0.143)
#: demands frames faster than the box can render them at full quality —
#: feasible only via the degraded-budget path.  Standard sits near its
#: fair share; batch deadlines trail far behind (they are the shed pool,
#: not the pressure source).
CLASS_CADENCE_FACTOR = {"interactive": 0.13, "standard": 1.5, "batch": 8.0}

#: ``--slo-mix`` preset names (the CLI's spelling of this module).
SLO_MIX_PRESETS = ("overload",)

#: The policies the two runs compare.
BASELINE_POLICY = "round_robin_preemptive"
SLO_POLICY = "deadline_preemptive"


def overload_mix(
    scene: str = DEFAULT_SCENE,
    frames: int = DEFAULT_FRAMES,
    size: int = DEFAULT_SIZE,
) -> Tuple[List[ClientRequest], ClientRequest]:
    """The overload client mix: ``(admitted, overflow)``.

    Six tenants with distinct trajectories (no twin shortcuts — every
    stream is real work): one ``interactive``, one ``standard``, four
    ``batch``; plus a seventh ``batch`` tenant whose job is to trip the
    admission cap.  Deadline cadences are attached later by
    :func:`calibrate_deadlines` (they depend on the measured alone pace).
    """
    # Distinct radii keep even the frame-0 poses distinct: the server
    # deduplicates bit-identical keyframe poses across tenants, and a
    # mix of pose-hit freeloaders would not be an overload.
    recipes = [
        ("int0", "interactive", lambda: camera_path("orbit", frames, size, size, arc=0.1, radius=1.40)),
        ("std0", "standard", lambda: camera_path("shake", frames, size, size, amplitude=0.05, period=2, radius=1.34)),
        ("bat0", "batch", lambda: camera_path("orbit", frames, size, size, arc=0.2, radius=1.28)),
        ("bat1", "batch", lambda: camera_path("dolly", frames, size, size, travel=0.5, radius=1.31)),
        ("bat2", "batch", lambda: camera_path("orbit", frames, size, size, arc=0.3, radius=1.37)),
        ("bat3", "batch", lambda: camera_path("dolly", frames, size, size, travel=0.3, radius=1.43)),
    ]
    admitted = [
        ClientRequest(client_id=cid, scene=scene, path=make(), slo_class=cls)
        for cid, cls, make in recipes
    ]
    overflow = ClientRequest(
        client_id="bat_overflow",
        scene=scene,
        path=camera_path("orbit", frames, size, size, arc=0.4, radius=1.46),
        slo_class="batch",
    )
    return admitted, overflow


def calibrate_deadlines(
    wb: Workbench,
    requests: Sequence[ClientRequest],
    scale: str = "server",
    factors: Optional[Dict[str, float]] = None,
) -> List[ClientRequest]:
    """Attach explicit per-class deadline cadences measured, not guessed.

    A scratch FIFO run yields every tenant's alone-reference cycles; the
    fair-share cadence is that pace stretched by the tenant count, and
    each class's cadence is ``fair share × CLASS_CADENCE_FACTOR[class]``.
    Both compared runs then schedule against *identical* deadlines — the
    policies differ, the obligations do not.
    """
    factors = factors or CLASS_CADENCE_FACTOR
    scratch = SequenceServer(
        experiment_accelerator(scale), group_size=wb.group_size()
    )
    for request in requests:
        scratch.submit(request, wb.client_sequence(request))
    report = scratch.serve("fifo")
    n = len(requests)
    out = []
    for request in requests:
        client = report.client(request.client_id)
        frames = max(1, client.frames)
        steady = client.alone_cycles / frames
        items = sequence_work_items(
            request.client_id, wb.client_sequence(request).trace
        )
        hints = [item.cost_hint for item in items]
        reuse_hints = [
            item.cost_hint for item in items if item.mode == WORK_REUSE
        ]
        if reuse_hints and sum(hints) > 0:
            # Apportion the alone reference by cost hints so the cadence
            # tracks the *steady* (reuse-frame) pace — the one-off Phase I
            # probe would otherwise inflate the mean and soften every
            # deadline, and a softened mix stops being an overload.
            steady = (
                client.alone_cycles
                * (sum(reuse_hints) / len(reuse_hints))
                / sum(hints)
            )
        fair = steady * n
        interval = max(1, int(fair * factors[request.slo_class]))
        out.append(replace(request, frame_interval_cycles=interval))
    return out


def degrade_psnr_map(
    wb: Workbench,
    requests: Sequence[ClientRequest],
    fraction: float = DEFAULT_DEGRADE_FRACTION,
) -> Dict[Tuple[str, int], float]:
    """``(client_id, frame) → PSNR`` for every degrade-eligible frame.

    The guard input of :class:`~repro.serving.slo.SLOConfig`: each reuse
    frame is re-rendered at the degraded per-ray budget and compared to
    the full-budget frame.  Memoised by content (twins share), clamped to
    99 dB so the artefact stays strict JSON.
    """
    out: Dict[Tuple[str, int], float] = {}
    memo: Dict[Tuple, float] = {}
    for request in requests:
        seq = wb.client_sequence(request)
        cameras = request.path.cameras()
        model = (
            wb.tensorf_model(request.scene)
            if request.tensorf
            else wb.model(request.scene)
        )
        budget = max(1, int(wb.config.num_samples * fraction))
        for item in sequence_work_items(request.client_id, seq.trace):
            if item.mode != WORK_REUSE:
                continue
            key = (request.content_key(), item.frame, budget)
            if key not in memo:
                full = seq.results[item.frame].image
                degraded = (
                    ASDRRenderer(model, num_samples=budget)
                    .render_image(cameras[item.frame])
                    .image
                )
                memo[key] = min(float(psnr(degraded, full)), 99.0)
            out[(request.client_id, item.frame)] = memo[key]
    return out


def slo_mix(
    wb: Workbench,
    preset: str = "overload",
    scene: str = DEFAULT_SCENE,
    frames: int = DEFAULT_FRAMES,
    size: int = DEFAULT_SIZE,
    scale: str = "server",
    degrade_fraction: float = DEFAULT_DEGRADE_FRACTION,
    degrade_min_psnr: float = DEFAULT_DEGRADE_MIN_PSNR,
) -> Tuple[List[ClientRequest], SLOConfig]:
    """``(requests, SLOConfig)`` for an ``--slo-mix`` preset.

    The CLI's entry point: the calibrated admitted mix (deadlines
    attached, overflow tenant excluded) plus an armed config — shedding
    and PSNR-guarded degrade on, no admission cap (the CLI serves only
    what it submits; the benchmark script owns the admission story).
    The calibration includes the overflow tenant, so the deadlines are
    bit-identical to the benchmark payload's.
    """
    if preset not in SLO_MIX_PRESETS:
        raise ConfigurationError(
            f"unknown SLO mix preset {preset!r}; choose from {SLO_MIX_PRESETS}"
        )
    admitted, overflow = overload_mix(scene=scene, frames=frames, size=size)
    admitted = calibrate_deadlines(
        wb, list(admitted) + [overflow], scale=scale
    )[:-1]
    config = SLOConfig(
        shed=True,
        degrade=True,
        degrade_fraction=degrade_fraction,
        degrade_min_psnr=degrade_min_psnr,
        degrade_psnr=degrade_psnr_map(wb, admitted, fraction=degrade_fraction),
    )
    return admitted, config


def _run_summary(report: ServeReport) -> Dict[str, object]:
    """The per-run block of an ``slo_bench/v1`` payload."""
    return {
        "policy": report.policy,
        "quantum": report.quantum,
        "slo_attainment": report.slo_attainment,
        "busy_cycles": int(report.busy_cycles),
        "total_frames": int(report.total_frames),
        "shed_frames": int(sum(c.shed_frames for c in report.clients)),
        "degraded_frames": int(sum(len(c.degraded) for c in report.clients)),
        "degraded": [
            dict(d, client=c.client_id)
            for c in report.clients
            for d in c.degraded
        ],
        "deadline_misses": int(sum(c.deadline_misses for c in report.clients)),
    }


def slo_bench_payload(
    wb: Optional[Workbench] = None,
    scene: str = DEFAULT_SCENE,
    frames: int = DEFAULT_FRAMES,
    size: int = DEFAULT_SIZE,
    scale: str = "server",
    degrade_fraction: float = DEFAULT_DEGRADE_FRACTION,
    degrade_min_psnr: float = DEFAULT_DEGRADE_MIN_PSNR,
) -> Dict[str, object]:
    """The full ``slo_bench/v1`` document (gates asserted inline).

    Serves the calibrated overload mix three ways on identical deadlines:
    the no-SLO baseline, the armed SLO run, and the SLO run again under
    ``quantum="auto"`` (reported, not gated — it shows the tuner working
    on the same mix).
    """
    wb = wb or Workbench()
    admitted, overflow = overload_mix(scene=scene, frames=frames, size=size)
    calibrated = calibrate_deadlines(
        wb, list(admitted) + [overflow], scale=scale
    )
    admitted, overflow = calibrated[:-1], calibrated[-1]
    psnr_map = degrade_psnr_map(wb, admitted, fraction=degrade_fraction)

    # Baseline: everything is admitted, nothing is controlled.
    baseline_server = SequenceServer(
        experiment_accelerator(scale), group_size=wb.group_size()
    )
    for request in admitted:
        baseline_server.submit(request, wb.client_sequence(request))
    # The cap sits just above the six admitted tenants' projected
    # backlog, so the overflow tenant — and only it — trips admission.
    admit_cycles = int(math.ceil(baseline_server.projected_backlog_cycles())) + 1
    baseline_server.submit(overflow, wb.client_sequence(overflow))
    baseline_report = baseline_server.serve(BASELINE_POLICY)

    # SLO run: same offered load, control loops armed.
    slo_config = SLOConfig(
        admit_cycles=admit_cycles,
        shed=True,
        degrade=True,
        degrade_fraction=degrade_fraction,
        degrade_min_psnr=degrade_min_psnr,
        degrade_psnr=psnr_map,
    )
    recorder = MemoryRecorder()
    slo_server = SequenceServer(
        experiment_accelerator(scale),
        group_size=wb.group_size(),
        slo=slo_config,
        recorder=recorder,
    )
    for request in admitted:
        slo_server.submit(request, wb.client_sequence(request))
    rejected: List[str] = []
    try:
        slo_server.submit(overflow, wb.client_sequence(overflow))
    except AdmissionError:
        rejected.append(overflow.client_id)
    slo_report = slo_server.serve(SLO_POLICY)
    auto_report = slo_server.serve(make_policy(SLO_POLICY, quantum=AUTO_QUANTUM))

    kinds = [e.kind for e in recorder.events]
    payload: Dict[str, object] = {
        "schema": "slo_bench/v1",
        "config": {
            "scene": scene,
            "frames": frames,
            "size": size,
            "scale": scale,
            "clients": len(admitted),
            "degrade_fraction": degrade_fraction,
        },
        "admit_cycles": admit_cycles,
        "admission_rejects": len(rejected),
        "rejected_clients": rejected,
        "degrade_min_psnr": degrade_min_psnr,
        "baseline": _run_summary(baseline_report),
        "slo": _run_summary(slo_report),
        "quantum_auto": dict(
            _run_summary(auto_report),
            quantum_tune_events=kinds.count(EV_QUANTUM_TUNE),
        ),
        "events": {
            "admission_reject": kinds.count(EV_ADMISSION_REJECT),
            "shed": kinds.count(EV_SHED),
            "degrade": kinds.count(EV_DEGRADE),
            "quantum_tune": kinds.count(EV_QUANTUM_TUNE),
        },
    }
    base_int = payload["baseline"]["slo_attainment"]["interactive"]
    slo_int = payload["slo"]["slo_attainment"]["interactive"]
    assert base_int < 0.7, (
        f"mix is not an overload: baseline interactive attainment "
        f"{base_int:.3f} (want < 0.7)"
    )
    assert slo_int >= 0.95, (
        f"SLO machinery missed the floor: interactive attainment "
        f"{slo_int:.3f} (want >= 0.95)"
    )
    assert payload["slo"]["busy_cycles"] <= payload["baseline"]["busy_cycles"], (
        "the SLO run burned more cycles than the baseline"
    )
    assert rejected and payload["slo"]["shed_frames"] > 0, (
        "overload control loops were not exercised"
    )
    assert all(
        d["psnr"] is not None and d["psnr"] >= degrade_min_psnr
        for d in payload["slo"]["degraded"]
    ), "a degraded frame slipped below the PSNR guard"
    return payload


@register("slo", "SLO-class serving under overload: baseline vs armed control")
def slo_experiment(wb: Workbench) -> List[Dict[str, object]]:
    """Acceptance-scale table: per-class attainment of the baseline, the
    armed SLO run and the ``quantum="auto"`` variant, with shed/degraded
    frame counts and busy cycles alongside."""
    payload = slo_bench_payload(wb)
    rows: List[Dict[str, object]] = []
    for run in ("baseline", "slo", "quantum_auto"):
        entry = payload[run]
        for cls, attainment in sorted(entry["slo_attainment"].items()):
            rows.append(
                {
                    "run": run,
                    "policy": entry["policy"],
                    "class": cls,
                    "attainment": f"{attainment:.3f}",
                    "shed": str(entry["shed_frames"]),
                    "degraded": str(entry["degraded_frames"]),
                    "busy_kc": entry["busy_cycles"] / 1e3,
                }
            )
    return rows
