"""Experiment harness regenerating every paper table and figure.

Each ``fig*``/``table*`` function renders the required workloads on the
shared :class:`~repro.experiments.workbench.Workbench` (which distills and
disk-caches one model per scene) and returns a list of row dictionaries the
harness can print in the paper's format.  DESIGN.md maps experiment ids to
paper artifacts; EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments.workbench import Workbench, WorkbenchConfig
from repro.experiments.harness import format_table, run_experiment, EXPERIMENTS
from repro.experiments import (
    profiling,
    quality,
    performance,
    sweeps,
    gpu_sw,
    tensorf_exp,
    hwconfigs,
    extensions,
)

__all__ = [
    "Workbench",
    "WorkbenchConfig",
    "format_table",
    "run_experiment",
    "EXPERIMENTS",
    "profiling",
    "quality",
    "performance",
    "sweeps",
    "gpu_sw",
    "tensorf_exp",
    "hwconfigs",
    "extensions",
]
