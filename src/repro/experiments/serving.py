"""Multi-tenant serving: scheduling policies vs back-to-back clients.

The ``serve`` experiment admits a deterministic mix of clients — all
watching one scene over short camera paths, including a "popular content"
twin pair — and serves them under each scheduling policy on one simulated
accelerator.  Per client it reports the executed frame-mode mix, service
cycles, makespan and delivery-latency percentiles; per policy it reports
aggregate throughput, Jain fairness over per-client slowdowns and the
aggregate busy cycles next to the back-to-back reference (each client
simulated alone, summed).  Cross-client content replay and per-tenant
temporal-cache partitioning mean the aggregate never exceeds back-to-back
and undercuts it whenever clients overlap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.harness import register
from repro.experiments.workbench import Workbench, experiment_accelerator
from repro.scenes.cameras import camera_path
from repro.serving.policies import (
    ALL_POLICY_NAMES,
    DEADLINE_POLICY_NAMES,
    POLICY_NAMES,
    PREEMPTIVE_POLICY_NAMES,
    make_policy,
)
from repro.serving.report import ServeReport
from repro.serving.request import ClientRequest
from repro.serving.server import SequenceServer
from repro.serving.slo import SLOConfig

#: Acceptance-scale defaults: three clients on palace, short 16x16 paths.
DEFAULT_SCENE = "palace"
DEFAULT_CLIENTS = 3
DEFAULT_FRAMES = 4
DEFAULT_SIZE = 16


def default_client_mix(
    scene: str = DEFAULT_SCENE,
    clients: int = DEFAULT_CLIENTS,
    frames: int = DEFAULT_FRAMES,
    size: int = DEFAULT_SIZE,
) -> List[ClientRequest]:
    """A deterministic serving mix exercising every sharing lever.

    The first client sweeps a short orbit; the second holds a hand-held
    shake whose poses repeat (in-sequence pose replays) and whose base
    pose is bit-identical to the orbit's first keyframe (cross-client
    pose replay); the third is the first's twin — same scene and path, a
    second viewer of popular content, served entirely from executed
    frames.  Further clients cycle through dolly moves and wider orbits
    so larger mixes stay distinct.
    """
    recipes = [
        lambda: camera_path("orbit", frames, size, size, arc=0.1),
        lambda: camera_path(
            "shake", frames, size, size, amplitude=0.05, period=2
        ),
        lambda: camera_path("orbit", frames, size, size, arc=0.1),  # twin of 0
        lambda: camera_path("dolly", frames, size, size, travel=0.3),
        lambda: camera_path("orbit", frames, size, size, arc=0.2),
    ]
    requests = []
    for i in range(clients):
        path = recipes[i % len(recipes)]()
        requests.append(
            ClientRequest(client_id=f"client{i}", scene=scene, path=path)
        )
    return requests


def serve_reports(
    wb: Workbench,
    requests: Optional[Sequence[ClientRequest]] = None,
    scale: str = "server",
    policies: Sequence[str] = POLICY_NAMES,
    group_size: Optional[int] = None,
    temporal_capacity: Optional[int] = None,
    shared_content: bool = True,
    quantum: Optional[Union[int, str]] = None,
    best_effort_slack: Optional[float] = None,
    slo: Optional[SLOConfig] = None,
    recorder=None,
) -> Dict[str, ServeReport]:
    """``{policy: ServeReport}`` for one client mix (the benchmark's entry
    point).  One server runs every policy — ``serve`` is re-entrant — so
    the policies share the memoised client traces *and* the per-client
    alone-cycles references.  ``quantum`` (wavefront steps, or ``"auto"``
    for measured-latency sizing) applies to the preemptive policies only;
    non-preemptive frames stay atomic.  ``best_effort_slack`` applies to
    the deadline-aware policies only (slack assigned to deadline-less
    frames).  ``slo`` (an :class:`~repro.serving.slo.SLOConfig`) arms the
    server's overload responses for every policy's run.  ``recorder`` (a
    :class:`~repro.obs.recorder.Recorder`) captures the telemetry stream
    of every policy's run back-to-back — observer-only, the reports are
    identical with or without it."""
    requests = list(requests) if requests is not None else default_client_mix()
    group = wb.group_size() if group_size is None else group_size
    server = SequenceServer(
        experiment_accelerator(scale),
        group_size=group,
        temporal_capacity=temporal_capacity,
        shared_content=shared_content,
        slo=slo,
        recorder=recorder,
    )
    for request in requests:
        server.submit(request, wb.client_sequence(request))
    return {
        policy: server.serve(
            make_policy(
                policy,
                quantum=quantum if policy in PREEMPTIVE_POLICY_NAMES else None,
                best_effort_slack=(
                    best_effort_slack
                    if policy in DEADLINE_POLICY_NAMES
                    else None
                ),
            )
        )
        for policy in policies
    }


def serving_rows(
    wb: Workbench,
    requests: Optional[Sequence[ClientRequest]] = None,
    scale: str = "server",
    policies: Sequence[str] = POLICY_NAMES,
    temporal_capacity: Optional[int] = None,
    shared_content: bool = True,
    quantum: Optional[Union[int, str]] = None,
    best_effort_slack: Optional[float] = None,
    slo: Optional[SLOConfig] = None,
) -> List[Dict[str, object]]:
    """Policy-comparison table: per-client rows plus one aggregate row
    per policy (fairness, throughput, busy vs back-to-back cycles)."""
    reports = serve_reports(
        wb,
        requests,
        scale=scale,
        policies=policies,
        temporal_capacity=temporal_capacity,
        shared_content=shared_content,
        quantum=quantum,
        best_effort_slack=best_effort_slack,
        slo=slo,
    )
    rows: List[Dict[str, object]] = []
    for policy in policies:
        rows.extend(reports[policy].to_rows())
    return rows


@register("serve", "Multi-tenant serving: scheduling policies vs back-to-back")
def serve_experiment(wb: Workbench) -> List[Dict[str, object]]:
    """The acceptance-scale configuration: three clients (orbit, shake and
    an orbit twin) on palace at 16x16, every policy — the three
    frame-atomic ones plus the two wavefront-granularity preemptive
    variants (default quantum)."""
    return serving_rows(wb, policies=ALL_POLICY_NAMES)
