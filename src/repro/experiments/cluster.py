"""Cluster serving: router policies vs placement-blind sharding.

The ``cluster`` experiment serves a **twin-heavy** client mix — popular
content watched by several tenants at once — across a small accelerator
fleet under each router policy.  Placement is the whole game: the serving
layer's sharing levers (cross-client content replay, temporal vertex
cache) only fire between tenants on the *same* shard, so the
content-affinity router delivers each twin pair's second stream at
scan-out cost while the placement-blind hash router re-executes it on
the other box.  Per router the table reports per-shard occupancy and the
fleet aggregates (busy cycles, fairness over merged slowdowns,
cross-shard latency percentiles); the aggregate-cycles gap between
``affinity`` and ``random`` *is* the value of content-aware placement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import register
from repro.experiments.serving import (
    DEFAULT_FRAMES,
    DEFAULT_SCENE,
    DEFAULT_SIZE,
)
from repro.experiments.workbench import Workbench, experiment_accelerator
from repro.scenes.cameras import camera_path
from repro.serving.cluster import ClusterReport, ClusterServer
from repro.serving.request import ClientRequest

#: Acceptance-scale fleet: two shards, six clients (two split twin pairs).
DEFAULT_SHARDS = 2
DEFAULT_CLUSTER_CLIENTS = 6
#: Routers the experiment compares (the placement claim needs exactly
#: the content-aware one and the placement-blind baseline).
COMPARED_ROUTERS = ("affinity", "random")


def twin_heavy_mix(
    scene: str = DEFAULT_SCENE,
    clients: int = DEFAULT_CLUSTER_CLIENTS,
    frames: int = DEFAULT_FRAMES,
    size: int = DEFAULT_SIZE,
) -> List[ClientRequest]:
    """A serving mix heavy on popular content: four trajectory recipes,
    cycled, so client ``fan{i}`` and ``fan{i+4}`` are twins (same scene,
    same path — one rendered sequence, two viewers).  With six or more
    clients at least two twin pairs exist, and the ``fan{i}`` ids are
    chosen so the placement-blind hash router splits each pair across a
    two-shard fleet — the worst case content-affinity routing repairs.
    """
    recipes = [
        lambda: camera_path("orbit", frames, size, size, arc=0.1),
        lambda: camera_path(
            "shake", frames, size, size, amplitude=0.05, period=2
        ),
        lambda: camera_path("orbit", frames, size, size, arc=0.2),
        lambda: camera_path("dolly", frames, size, size, travel=0.3),
    ]
    return [
        ClientRequest(
            client_id=f"fan{i}", scene=scene, path=recipes[i % len(recipes)]()
        )
        for i in range(clients)
    ]


def cluster_reports(
    wb: Workbench,
    requests: Optional[Sequence[ClientRequest]] = None,
    shards: int = DEFAULT_SHARDS,
    routers: Sequence[str] = COMPARED_ROUTERS,
    policy: str = "round_robin_preemptive",
    scale: str = "server",
    group_size: Optional[int] = None,
    temporal_capacity: Optional[int] = None,
    shared_content: bool = True,
) -> Dict[str, ClusterReport]:
    """``{router: ClusterReport}`` for one client mix on one fleet shape.

    Every router serves the *same* memoised client sequences on its own
    fleet of identical design points, so the only degree of freedom
    between entries is placement.
    """
    requests = (
        list(requests) if requests is not None else twin_heavy_mix()
    )
    group = wb.group_size() if group_size is None else group_size
    reports: Dict[str, ClusterReport] = {}
    for router in routers:
        cluster = ClusterServer(
            [experiment_accelerator(scale) for _ in range(shards)],
            router=router,
            group_size=group,
            temporal_capacity=temporal_capacity,
            shared_content=shared_content,
        )
        for request in requests:
            cluster.submit(request, wb.client_sequence(request))
        reports[router] = cluster.serve(policy)
    return reports


def cluster_rows(
    wb: Workbench,
    requests: Optional[Sequence[ClientRequest]] = None,
    shards: int = DEFAULT_SHARDS,
    routers: Sequence[str] = COMPARED_ROUTERS,
    policy: str = "round_robin_preemptive",
    scale: str = "server",
    temporal_capacity: Optional[int] = None,
    shared_content: bool = True,
) -> List[Dict[str, object]]:
    """Router-comparison table: per-shard rows plus one fleet aggregate
    row per router."""
    reports = cluster_reports(
        wb,
        requests,
        shards=shards,
        routers=routers,
        policy=policy,
        scale=scale,
        temporal_capacity=temporal_capacity,
        shared_content=shared_content,
    )
    rows: List[Dict[str, object]] = []
    for router in routers:
        for row in reports[router].to_rows():
            rows.append({"router": router, **row})
    return rows


@register(
    "cluster",
    "Cluster serving: content-affinity routing vs placement-blind sharding",
)
def cluster_experiment(wb: Workbench) -> List[Dict[str, object]]:
    """The acceptance-scale configuration: six clients (two split twin
    pairs) on a two-shard palace fleet, affinity vs random routing under
    the preemptive round-robin policy."""
    return cluster_rows(wb)
