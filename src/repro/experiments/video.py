"""Multi-frame video workloads: temporal reuse vs independent frames.

The ``video`` experiment renders a camera path (default: a 4-frame orbit
segment at workbench scale) three ways and simulates each on the ASDR
accelerator:

* **baseline** — the fixed-budget pipeline, every frame independent (the
  original-pipeline reference, no reuse hardware);
* **asdr** — the two-phase ASDR pipeline, every frame rendered and
  simulated independently (Phase I per frame, no temporal cache) — the
  per-frame state of the art this repo reproduced before the sequence
  layer;
* **video** — the sequence path: pose-identical frames replayed outright,
  Phase I only on keyframes (plan reuse), and the temporal vertex cache
  serving cross-frame corner fetches.

Two further levers ride on the sequence path (``--reproject`` on the
CLI): **temporal reprojection** warps the previous frame's delivered
pixels along the camera delta and skips converged rays entirely
(PSNR-guarded; see :mod:`repro.core.reprojection`), and **adaptive
keyframe scheduling** replaces the fixed Phase I cadence with an online
plan/keyframe overlap measurement that re-probes only when the plan has
demonstrably gone stale.  :func:`video_bench_payload` pins both behind
the committed ``BENCH_video.json`` gates.

Per-frame and amortised cycles/energy are reported, along with the
temporal-cache hit rate and the PSNR of each reused frame against its
independently rendered twin (the quality cost of plan reuse; ``inf`` for
bit-identical replays).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.arch.accelerator import SequenceSimReport
from repro.core.config import ASDRConfig
from repro.core.pipeline import ASDRRenderer
from repro.core.reprojection import ReprojectionConfig
from repro.experiments.harness import register
from repro.experiments.workbench import Workbench, experiment_accelerator
from repro.metrics.image import psnr
from repro.obs.schemas import VIDEO_SPEEDUP_FLOOR
from repro.scenes.cameras import CameraPath, camera_path

#: The acceptance-scale default: a 4-frame 56x56 orbit segment.
DEFAULT_SCENE = "palace"
DEFAULT_FRAMES = 4
DEFAULT_ARC = 0.1

#: The ``video_bench/v1`` shape: a slow orbit (high inter-frame
#: coherence — the regime temporal reprojection targets) …
BENCH_ARC = 0.05
#: … and the adaptive keyframe scheduler's re-probe threshold on the
#: measured plan/keyframe ray-budget overlap.
BENCH_OVERLAP = 0.8
#: Knobs the committed ``BENCH_video.json`` was generated with.  The
#: tight ``converged_px`` matters: at bench scale each orbit step costs
#: ~0.55px of parallax sensitivity, so 0.75 lets a ray warp once and
#: forces a refine render on the second step — bounding chained-warp
#: drift to one step between re-renders.
BENCH_REPROJECT = ReprojectionConfig(converged_px=0.75, refine_px=3.0)
#: Bit-identical frames score infinite PSNR; clamp for strict JSON.
_PSNR_CLAMP = 99.0


def _frame_mode(trace, k: int) -> str:
    if trace.replays[k] is not None:
        return "replay"
    return "probe" if trace.planned[k] else "reuse"


def _clamped_psnr(a: np.ndarray, b: np.ndarray) -> float:
    return float(min(psnr(a, b), _PSNR_CLAMP))


def video_rows(
    wb: Workbench,
    scene: str = DEFAULT_SCENE,
    path: Optional[CameraPath] = None,
    scale: str = "server",
    probe_interval: int = 0,
    temporal: bool = True,
    temporal_capacity: Optional[int] = None,
    reproject: Optional[ReprojectionConfig] = None,
    adaptive_overlap: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Render + simulate one camera-path sequence; returns table rows.

    The final ``amortised`` row carries the headline numbers: mean
    cycles/energy per delivered frame for all three pipelines and the
    sequence path's amortised speedup over independent per-frame ASDR
    simulation (``video_speedup``).  With ``reproject`` armed, non-
    keyframes warp converged rays instead of marching them (their mode
    column reads ``reproject``); ``adaptive_overlap`` swaps the fixed
    Phase I cadence for the measured-staleness scheduler.
    """
    if path is None:
        path = camera_path(
            "orbit",
            DEFAULT_FRAMES,
            wb.config.width,
            wb.config.height,
            arc=DEFAULT_ARC,
        )
    group = wb.group_size()
    acc = experiment_accelerator(scale)

    video = wb.sequence_render(
        scene,
        path,
        probe_interval=probe_interval,
        reproject=reproject,
        adaptive_overlap=adaptive_overlap,
    )
    fresh = wb.sequence_render(
        scene, path, probe_interval=1, reuse_poses=False
    )
    base = wb.sequence_render(scene, path, baseline=True, reuse_poses=False)

    video_rep = acc.simulate_sequence(
        video.trace,
        group_size=group,
        temporal=temporal,
        temporal_capacity=temporal_capacity,
    )
    fresh_rep = acc.simulate_sequence(fresh.trace, group_size=group, temporal=False)
    base_rep = acc.simulate_sequence(base.trace, group_size=1, temporal=False)

    rows: List[Dict[str, object]] = []
    for k in range(path.frames):
        v, f, b = video_rep.frames[k], fresh_rep.frames[k], base_rep.frames[k]
        mode = _frame_mode(video.trace, k)
        if mode == "reuse" and video.trace.frames[k].reprojected_pixels:
            mode = "reproject"
        rows.append(
            {
                "frame": str(k),
                "mode": mode,
                "baseline_kcycles": b.total_cycles / 1e3,
                "asdr_kcycles": f.total_cycles / 1e3,
                "video_kcycles": v.total_cycles / 1e3,
                "video_speedup": f.total_cycles / max(v.total_cycles, 1),
                "temporal_hit_pct": 100.0 * v.encoding.temporal_hit_rate,
                "baseline_uj": b.energy_joules * 1e6,
                "video_uj": v.energy_joules * 1e6,
                "psnr_vs_fresh": float(
                    psnr(video.results[k].image, fresh.results[k].image)
                ),
            }
        )
    finite = [
        r["psnr_vs_fresh"] for r in rows if np.isfinite(r["psnr_vs_fresh"])
    ]
    rows.append(
        {
            "frame": "amortised",
            "mode": "-",
            "baseline_kcycles": base_rep.amortised_cycles / 1e3,
            "asdr_kcycles": fresh_rep.amortised_cycles / 1e3,
            "video_kcycles": video_rep.amortised_cycles / 1e3,
            "video_speedup": fresh_rep.total_cycles
            / max(video_rep.total_cycles, 1),
            "temporal_hit_pct": 100.0 * video_rep.temporal_hit_rate,
            "baseline_uj": base_rep.energy_joules * 1e6 / path.frames,
            "video_uj": video_rep.energy_joules * 1e6 / path.frames,
            "psnr_vs_fresh": float(np.mean(finite)) if finite else float("inf"),
        }
    )
    return rows


def sequence_reports(
    wb: Workbench,
    scene: str,
    path: CameraPath,
    scale: str = "server",
    probe_interval: int = 0,
    temporal: bool = True,
) -> Dict[str, SequenceSimReport]:
    """``{"video", "asdr", "baseline"}`` sequence reports for one path
    (the benchmark's entry point — same renders/memos as the table)."""
    group = wb.group_size()
    acc = experiment_accelerator(scale)
    video = wb.sequence_trace(scene, path, probe_interval=probe_interval)
    fresh = wb.sequence_trace(scene, path, probe_interval=1, reuse_poses=False)
    base = wb.sequence_trace(scene, path, baseline=True, reuse_poses=False)
    return {
        "video": acc.simulate_sequence(video, group_size=group, temporal=temporal),
        "asdr": acc.simulate_sequence(fresh, group_size=group, temporal=False),
        "baseline": acc.simulate_sequence(base, group_size=1, temporal=False),
    }


def _cut_cameras(frames: int, size: int):
    """An orbit broken by a hard camera cut: ``frames + 1`` poses on one
    orbit, then ``frames`` poses on a different radius/elevation.  The
    odd-length first segment places the cut on a *reuse* frame of every
    even fixed probe cadence, so a fixed scheduler renders the cut with a
    stale plan while the adaptive scheduler's measured overlap collapses
    exactly there."""
    before = camera_path("orbit", frames + 1, size, size, arc=BENCH_ARC)
    after = camera_path(
        "orbit",
        frames,
        size,
        size,
        arc=BENCH_ARC,
        radius=1.1,
        elevation=0.65,
    )
    return before.cameras() + after.cameras(), before.frames


def _keyframe_run(render, reference) -> Dict[str, object]:
    """Probe count + quality summary of one scheduler's cut-sequence run
    against per-frame fresh renders."""
    psnrs = [
        _clamped_psnr(render.results[k].image, reference.results[k].image)
        for k in range(len(reference.results))
    ]
    overlaps = [
        r.reprojection.get("overlap")
        for r in render.results
        if r.reprojection is not None and "overlap" in r.reprojection
    ]
    return {
        "probes": int(sum(1 for p in render.trace.planned if p)),
        "min_psnr": min(psnrs),
        "mean_psnr": float(np.mean(psnrs)),
        "psnr": psnrs,
        "overlaps": [round(float(o), 4) for o in overlaps],
    }


def video_bench_payload(
    wb: Workbench,
    scene: str = DEFAULT_SCENE,
    frames: int = 6,
    size: int = 16,
    scale: str = "server",
    reproject: Optional[ReprojectionConfig] = None,
) -> Dict[str, object]:
    """The ``video_bench/v1`` payload behind ``BENCH_video.json``.

    Two sections, each gate also asserted inline so a regression fails
    at build time, not only at validation time:

    * ``orbit`` — a slow orbit rendered fresh per frame, with plain plan
      reuse, and with temporal reprojection armed.  Gates: amortised
      reprojected speedup over per-frame ASDR simulation at least
      :data:`~repro.obs.schemas.VIDEO_SPEEDUP_FLOOR`, and every
      reprojected frame's measured warp-guard PSNR at or above the
      configured ``min_psnr`` with no guard fallback.
    * ``keyframes`` — the same reprojection config on an orbit broken by
      a camera cut, scheduled by a fixed even cadence vs the adaptive
      overlap threshold.  Gates: the adaptive scheduler spends strictly
      fewer Phase I probes *and* its worst frame is no worse — it
      re-probes exactly where the measurement says the plan went stale,
      instead of on a clock.
    """
    cfg = reproject or BENCH_REPROJECT
    group = wb.group_size()
    acc = experiment_accelerator(scale)
    path = camera_path("orbit", frames, size, size, arc=BENCH_ARC)

    fresh = wb.sequence_render(scene, path, probe_interval=1, reuse_poses=False)
    plain = wb.sequence_render(scene, path, probe_interval=0)
    repro = wb.sequence_render(scene, path, probe_interval=0, reproject=cfg)

    fresh_rep = acc.simulate_sequence(
        fresh.trace, group_size=group, temporal=False
    )
    plain_rep = acc.simulate_sequence(plain.trace, group_size=group)
    repro_rep = acc.simulate_sequence(repro.trace, group_size=group)

    frame_rows: List[Dict[str, object]] = []
    for k in range(frames):
        rec = repro.results[k].reprojection or {}
        guard = rec.get("psnr")
        frame_rows.append(
            {
                "frame": k,
                "mode": (
                    "reproject"
                    if repro.trace.frames[k].reprojected_pixels
                    else _frame_mode(repro.trace, k)
                ),
                "reprojected": int(repro.trace.frames[k].reprojected_pixels),
                "guard_psnr": (
                    None if guard is None else min(float(guard), _PSNR_CLAMP)
                ),
                "fallback": bool(rec.get("fallback", False)),
                "psnr_vs_fresh": _clamped_psnr(
                    repro.results[k].image, fresh.results[k].image
                ),
            }
        )
    speedup = fresh_rep.total_cycles / max(repro_rep.total_cycles, 1)
    assert speedup >= VIDEO_SPEEDUP_FLOOR, (
        f"reprojected orbit speedup {speedup:.2f}x misses the "
        f"{VIDEO_SPEEDUP_FLOOR}x floor"
    )
    reprojected_rows = [r for r in frame_rows if r["reprojected"]]
    assert reprojected_rows, "no frame reprojected — thresholds too tight"
    for row in reprojected_rows:
        assert not row["fallback"], f"frame {row['frame']} hit the guard"
        assert row["guard_psnr"] is not None and (
            row["guard_psnr"] >= cfg.min_psnr
        ), f"frame {row['frame']} guard PSNR {row['guard_psnr']} below floor"

    # ------------------------------------------------------------------
    # Adaptive keyframe scheduling across a camera cut.
    # ------------------------------------------------------------------
    cameras, cut_frame = _cut_cameras(frames, size)
    asdr = ASDRRenderer(
        wb.model(scene),
        config=ASDRConfig(),
        num_samples=wb.config.num_samples,
    )
    reference = asdr.render_sequence(
        cameras, probe_interval=1, reuse_poses=False, path_key=("cut", "ref")
    )
    fixed = asdr.render_sequence(
        cameras,
        probe_interval=2,
        reproject=cfg,
        path_key=("cut", "fixed"),
    )
    adaptive = asdr.render_sequence(
        cameras,
        probe_interval=0,
        reproject=cfg,
        adaptive_overlap=BENCH_OVERLAP,
        path_key=("cut", "adaptive"),
    )
    fixed_run = _keyframe_run(fixed, reference)
    adaptive_run = _keyframe_run(adaptive, reference)
    fixed_run["probe_interval"] = 2
    adaptive_run["overlap_threshold"] = BENCH_OVERLAP
    assert adaptive_run["probes"] < fixed_run["probes"], (
        f"adaptive probed {adaptive_run['probes']}x, fixed "
        f"{fixed_run['probes']}x — no probe saving"
    )
    assert adaptive_run["min_psnr"] >= fixed_run["min_psnr"], (
        f"adaptive min PSNR {adaptive_run['min_psnr']:.2f} below fixed "
        f"{fixed_run['min_psnr']:.2f}"
    )

    return {
        "schema": "video_bench/v1",
        "scene": scene,
        "frames": frames,
        "size": size,
        "arc": BENCH_ARC,
        "psnr_guard": cfg.min_psnr,
        "reproject": {
            "converged_px": cfg.converged_px,
            "refine_px": cfg.refine_px,
            "refine_fraction": cfg.refine_fraction,
            "validation_stride": cfg.validation_stride,
            "min_psnr": cfg.min_psnr,
        },
        "orbit": {
            "fresh_cycles": int(fresh_rep.total_cycles),
            "plain_cycles": int(plain_rep.total_cycles),
            "reproject_cycles": int(repro_rep.total_cycles),
            "speedup_vs_fresh": round(float(speedup), 3),
            "speedup_vs_plain": round(
                plain_rep.total_cycles / max(repro_rep.total_cycles, 1), 3
            ),
            "frames": frame_rows,
        },
        "keyframes": {
            "cut_frame": int(cut_frame),
            "total_frames": len(cameras),
            "fixed": fixed_run,
            "adaptive": adaptive_run,
        },
    }


@register("video", "Video sequences: temporal reuse vs independent frames")
def video_experiment(wb: Workbench) -> List[Dict[str, object]]:
    """The acceptance-scale configuration: 4-frame 56x56 orbit, Phase I on
    the first frame only, temporal vertex cache enabled."""
    return video_rows(wb)
