"""Multi-frame video workloads: temporal reuse vs independent frames.

The ``video`` experiment renders a camera path (default: a 4-frame orbit
segment at workbench scale) three ways and simulates each on the ASDR
accelerator:

* **baseline** — the fixed-budget pipeline, every frame independent (the
  original-pipeline reference, no reuse hardware);
* **asdr** — the two-phase ASDR pipeline, every frame rendered and
  simulated independently (Phase I per frame, no temporal cache) — the
  per-frame state of the art this repo reproduced before the sequence
  layer;
* **video** — the sequence path: pose-identical frames replayed outright,
  Phase I only on keyframes (plan reuse), and the temporal vertex cache
  serving cross-frame corner fetches.

Per-frame and amortised cycles/energy are reported, along with the
temporal-cache hit rate and the PSNR of each reused frame against its
independently rendered twin (the quality cost of plan reuse; ``inf`` for
bit-identical replays).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.arch.accelerator import SequenceSimReport
from repro.experiments.harness import register
from repro.experiments.workbench import Workbench, experiment_accelerator
from repro.metrics.image import psnr
from repro.scenes.cameras import CameraPath, camera_path

#: The acceptance-scale default: a 4-frame 56x56 orbit segment.
DEFAULT_SCENE = "palace"
DEFAULT_FRAMES = 4
DEFAULT_ARC = 0.1


def _frame_mode(trace, k: int) -> str:
    if trace.replays[k] is not None:
        return "replay"
    return "probe" if trace.planned[k] else "reuse"


def video_rows(
    wb: Workbench,
    scene: str = DEFAULT_SCENE,
    path: Optional[CameraPath] = None,
    scale: str = "server",
    probe_interval: int = 0,
    temporal: bool = True,
    temporal_capacity: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Render + simulate one camera-path sequence; returns table rows.

    The final ``amortised`` row carries the headline numbers: mean
    cycles/energy per delivered frame for all three pipelines and the
    sequence path's amortised speedup over independent per-frame ASDR
    simulation (``video_speedup``).
    """
    if path is None:
        path = camera_path(
            "orbit",
            DEFAULT_FRAMES,
            wb.config.width,
            wb.config.height,
            arc=DEFAULT_ARC,
        )
    group = wb.group_size()
    acc = experiment_accelerator(scale)

    video = wb.sequence_render(scene, path, probe_interval=probe_interval)
    fresh = wb.sequence_render(
        scene, path, probe_interval=1, reuse_poses=False
    )
    base = wb.sequence_render(scene, path, baseline=True, reuse_poses=False)

    video_rep = acc.simulate_sequence(
        video.trace,
        group_size=group,
        temporal=temporal,
        temporal_capacity=temporal_capacity,
    )
    fresh_rep = acc.simulate_sequence(fresh.trace, group_size=group, temporal=False)
    base_rep = acc.simulate_sequence(base.trace, group_size=1, temporal=False)

    rows: List[Dict[str, object]] = []
    for k in range(path.frames):
        v, f, b = video_rep.frames[k], fresh_rep.frames[k], base_rep.frames[k]
        rows.append(
            {
                "frame": str(k),
                "mode": _frame_mode(video.trace, k),
                "baseline_kcycles": b.total_cycles / 1e3,
                "asdr_kcycles": f.total_cycles / 1e3,
                "video_kcycles": v.total_cycles / 1e3,
                "video_speedup": f.total_cycles / max(v.total_cycles, 1),
                "temporal_hit_pct": 100.0 * v.encoding.temporal_hit_rate,
                "baseline_uj": b.energy_joules * 1e6,
                "video_uj": v.energy_joules * 1e6,
                "psnr_vs_fresh": float(
                    psnr(video.results[k].image, fresh.results[k].image)
                ),
            }
        )
    finite = [
        r["psnr_vs_fresh"] for r in rows if np.isfinite(r["psnr_vs_fresh"])
    ]
    rows.append(
        {
            "frame": "amortised",
            "mode": "-",
            "baseline_kcycles": base_rep.amortised_cycles / 1e3,
            "asdr_kcycles": fresh_rep.amortised_cycles / 1e3,
            "video_kcycles": video_rep.amortised_cycles / 1e3,
            "video_speedup": fresh_rep.total_cycles
            / max(video_rep.total_cycles, 1),
            "temporal_hit_pct": 100.0 * video_rep.temporal_hit_rate,
            "baseline_uj": base_rep.energy_joules * 1e6 / path.frames,
            "video_uj": video_rep.energy_joules * 1e6 / path.frames,
            "psnr_vs_fresh": float(np.mean(finite)) if finite else float("inf"),
        }
    )
    return rows


def sequence_reports(
    wb: Workbench,
    scene: str,
    path: CameraPath,
    scale: str = "server",
    probe_interval: int = 0,
    temporal: bool = True,
) -> Dict[str, SequenceSimReport]:
    """``{"video", "asdr", "baseline"}`` sequence reports for one path
    (the benchmark's entry point — same renders/memos as the table)."""
    group = wb.group_size()
    acc = experiment_accelerator(scale)
    video = wb.sequence_trace(scene, path, probe_interval=probe_interval)
    fresh = wb.sequence_trace(scene, path, probe_interval=1, reuse_poses=False)
    base = wb.sequence_trace(scene, path, baseline=True, reuse_poses=False)
    return {
        "video": acc.simulate_sequence(video, group_size=group, temporal=temporal),
        "asdr": acc.simulate_sequence(fresh, group_size=group, temporal=False),
        "baseline": acc.simulate_sequence(base, group_size=1, temporal=False),
    }


@register("video", "Video sequences: temporal reuse vs independent frames")
def video_experiment(wb: Workbench) -> List[Dict[str, object]]:
    """The acceptance-scale configuration: 4-frame 56x56 orbit, Phase I on
    the first frame only, temporal vertex cache enabled."""
    return video_rows(wb)
