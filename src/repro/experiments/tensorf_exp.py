"""TensoRF generality experiments: Figure 25 and Table 4 (Section 6.8).

ASDR's adaptive sampling and color decoupling are model-agnostic — they
operate on the sampling/compositing stages shared by all parametric-
encoding NeRFs.  These experiments run the full algorithm on the TensoRF
substrate and price the results on the GPU roofline and the accelerator.

TensoRF's encoding fetches 3 plane (bilinear, 4 entries) + 3 line (linear,
2 entries) lookups per point instead of the hash grid's ``8 x levels``;
the accelerator's encoding traffic is scaled accordingly (see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.baselines.gpu import GPUModel, RTX3070
from repro.baselines.platform import Workload
from repro.experiments.harness import register
from repro.experiments.workbench import (
    EXPERIMENT_GRID,
    EXPERIMENT_TENSORF,
    Workbench,
)
from repro.metrics.image import lpips_proxy, psnr, ssim
from repro.scenes.analytic import scene_names

FIG25_SCENES = ("palace", "fountain", "family", "fox", "mic")

#: TensoRF lookups per point (3 planes x 4 + 3 lines x 2) relative to the
#: hash grid's 8 x num_levels — scales the encoding-engine busy cycles.
_TENSORF_LOOKUP_SCALE = (3 * 4 + 3 * 2) / (8 * EXPERIMENT_GRID.num_levels)


@register("fig25", "ASDR on TensoRF: GPU software and accelerator speedups")
def fig25_tensorf(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Figure 25 (paper: sw 1.27x, architecture ~29.98x)."""
    gpu = GPUModel(RTX3070)
    accelerator = ASDRAccelerator(
        ArchConfig.server(),
        EXPERIMENT_GRID,
        EXPERIMENT_TENSORF.density_mlp_config,
        EXPERIMENT_TENSORF.color_mlp_config,
    )
    rows = []
    for scene in FIG25_SCENES:
        model = wb.tensorf_model(scene)
        camera = wb.dataset(scene).cameras[0]
        base = wb.baseline_render(scene, tensorf=True)
        asdr_result = wb.asdr_render(scene, tensorf=True)
        base_wl = Workload.from_render_result(base, model)
        asdr_wl = Workload.from_render_result(asdr_result, model)
        t_gpu = gpu.run(base_wl).time_seconds
        t_sw = gpu.run(asdr_wl).time_seconds
        report = accelerator.simulate_render(
            camera, asdr_result, group_size=wb.group_size()
        )
        # Scale encoding busy time to TensoRF's lighter lookup traffic.
        enc_scaled = report.encoding.cycles * _TENSORF_LOOKUP_SCALE
        arch_cycles = (
            report.total_cycles
            - report.encoding.cycles * (1.0 - _TENSORF_LOOKUP_SCALE)
        )
        arch_cycles = max(arch_cycles, report.mlp.cycles, int(enc_scaled))
        t_arch = arch_cycles / report.clock_hz
        rows.append(
            {
                "scene": scene,
                "gpu_sw_speedup": t_gpu / t_sw,
                "architecture_speedup": t_gpu / t_arch,
            }
        )
    rows.append(
        {
            "scene": "average",
            "gpu_sw_speedup": float(np.mean([r["gpu_sw_speedup"] for r in rows])),
            "architecture_speedup": float(
                np.mean([r["architecture_speedup"] for r in rows])
            ),
        }
    )
    return rows


@register("table4", "Rendering quality of ASDR on TensoRF")
def table4_tensorf_quality(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Table 4 (paper: nearly lossless across all metrics)."""
    rows = []
    for scene in scene_names():
        reference = wb.reference(scene)
        base = wb.baseline_render(scene, tensorf=True).image
        asdr = wb.asdr_render(scene, tensorf=True).image
        rows.append(
            {
                "scene": scene,
                "psnr_tensorf": psnr(base, reference),
                "psnr_asdr": psnr(asdr, reference),
                "ssim_tensorf": ssim(base, reference),
                "ssim_asdr": ssim(asdr, reference),
                "lpips_tensorf": lpips_proxy(base, reference),
                "lpips_asdr": lpips_proxy(asdr, reference),
            }
        )
    avg = {
        "scene": "average",
        **{
            k: float(np.mean([r[k] for r in rows]))
            for k in rows[0]
            if k != "scene"
        },
    }
    rows.append(avg)
    return rows
