"""Hardware-configuration generality: Figures 26 and 27 (Section 6.9)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.gpu import GPUModel, RTX3070, XAVIER_NX
from repro.baselines.platform import Workload
from repro.baselines.variants import VARIANTS, simulate_variant
from repro.experiments.harness import register
from repro.experiments.workbench import EXPERIMENT_GRID, EXPERIMENT_MODEL, Workbench

HW_SCENES = ("palace", "fountain", "family", "fox", "mic")


def _variant_rows(wb: Workbench, scale: str, metric: str) -> List[Dict[str, object]]:
    gpu = GPUModel(RTX3070 if scale == "server" else XAVIER_NX)
    rows = []
    for scene in HW_SCENES:
        model = wb.model(scene)
        camera = wb.dataset(scene).cameras[0]
        base_wl = Workload.from_render_result(wb.baseline_render(scene), model)
        gpu_report = gpu.run(base_wl)
        asdr_result = wb.asdr_render(scene)
        row: Dict[str, object] = {"scene": scene}
        for key in ("sa", "sram", "reram"):
            report = simulate_variant(
                key,
                scale,
                EXPERIMENT_GRID,
                EXPERIMENT_MODEL.density_mlp_config,
                EXPERIMENT_MODEL.color_mlp_config,
                camera,
                asdr_result,
                group_size=wb.group_size(),
            )
            if metric == "speedup":
                row[VARIANTS[key].label] = (
                    gpu_report.time_seconds / report.time_seconds
                )
            else:
                row[VARIANTS[key].label] = (
                    gpu_report.energy_joules / report.energy_joules
                )
        rows.append(row)
    avg: Dict[str, object] = {"scene": "average"}
    for key in ("sa", "sram", "reram"):
        label = VARIANTS[key].label
        avg[label] = float(np.mean([r[label] for r in rows]))
    rows.append(avg)
    return rows


@register("fig26a", "Speedup of hardware variants (server)")
def fig26_server(wb: Workbench) -> List[Dict[str, object]]:
    return _variant_rows(wb, "server", "speedup")


@register("fig26b", "Speedup of hardware variants (edge)")
def fig26_edge(wb: Workbench) -> List[Dict[str, object]]:
    return _variant_rows(wb, "edge", "speedup")


@register("fig27a", "Energy efficiency of hardware variants (server)")
def fig27_server(wb: Workbench) -> List[Dict[str, object]]:
    return _variant_rows(wb, "server", "energy")


@register("fig27b", "Energy efficiency of hardware variants (edge)")
def fig27_edge(wb: Workbench) -> List[Dict[str, object]]:
    return _variant_rows(wb, "edge", "energy")
