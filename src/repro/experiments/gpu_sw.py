"""Software-only acceleration on GPUs: Figure 24.

The paper implements adaptive sampling (AS) and rendering approximation
(RA) in CUDA and measures them on the RTX 3070 with no hardware support.
We price the workload each variant produces through the same GPU roofline,
so the speedups come purely from the algorithm's reduction in work — the
exact quantity Figure 24 isolates.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.gpu import GPUModel, RTX3070
from repro.baselines.platform import Workload
from repro.core.config import ASDRConfig, AdaptiveSamplingConfig, ApproximationConfig
from repro.experiments.harness import register
from repro.experiments.workbench import Workbench
from repro.scenes.analytic import scene_names


@register("fig24", "GPU software-level speedups (AS and AS+RA)")
def fig24_gpu_software(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Figure 24 (paper: AS 1.84x, AS+RA 2.75x on average)."""
    gpu = GPUModel(RTX3070)
    as_only = ASDRConfig(approximation=None)
    as_ra = ASDRConfig()  # adaptive + approximation defaults
    rows = []
    for scene in scene_names():
        model = wb.model(scene)
        base_wl = Workload.from_render_result(wb.baseline_render(scene), model)
        as_wl = Workload.from_render_result(
            wb.asdr_render(scene, asdr_config=as_only), model
        )
        asra_wl = Workload.from_render_result(
            wb.asdr_render(scene, asdr_config=as_ra), model
        )
        t_base = gpu.run(base_wl).time_seconds
        rows.append(
            {
                "scene": scene,
                "as_speedup": t_base / gpu.run(as_wl).time_seconds,
                "as_ra_speedup": t_base / gpu.run(asra_wl).time_seconds,
            }
        )
    rows.append(
        {
            "scene": "average",
            "as_speedup": float(np.mean([r["as_speedup"] for r in rows])),
            "as_ra_speedup": float(np.mean([r["as_ra_speedup"] for r in rows])),
        }
    )
    return rows
