"""Performance experiments: Figures 17-20 and Table 2.

The baseline platforms always execute the *original* fixed-budget pipeline
(that is what the paper measures on GPUs and NeuRex); ASDR executes its
two-phase algorithm on the simulated accelerator.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.arch.accelerator import ASDRAccelerator, SimReport
from repro.arch.config import ArchConfig
from repro.arch.energy import COMPONENT_TABLE, AreaPowerModel, TOTALS
from repro.baselines.gpu import GPUModel, RTX3070, XAVIER_NX
from repro.baselines.neurex import NEUREX_EDGE, NEUREX_SERVER, NeurexModel
from repro.baselines.platform import PlatformReport, Workload
from repro.core.config import ASDRConfig
from repro.experiments.harness import register
from repro.experiments.workbench import EXPERIMENT_GRID, EXPERIMENT_MODEL, Workbench

PERF_SCENES = ("palace", "fountain", "family", "fox", "mic")
ABLATION_SCENES = ("palace", "fountain", "family")


def _accelerator(config: ArchConfig) -> ASDRAccelerator:
    return ASDRAccelerator(
        config,
        EXPERIMENT_GRID,
        EXPERIMENT_MODEL.density_mlp_config,
        EXPERIMENT_MODEL.color_mlp_config,
    )


def _platforms(scale: str) -> Tuple[GPUModel, NeurexModel, ArchConfig]:
    if scale == "server":
        return GPUModel(RTX3070), NeurexModel(NEUREX_SERVER), ArchConfig.server()
    return GPUModel(XAVIER_NX), NeurexModel(NEUREX_EDGE), ArchConfig.edge()


def scene_platform_reports(
    wb: Workbench, scene: str, scale: str
) -> Tuple[PlatformReport, PlatformReport, SimReport]:
    """(gpu, neurex, asdr) reports for one scene at one design scale."""
    gpu, neurex, arch = _platforms(scale)
    base = wb.baseline_render(scene)
    workload = Workload.from_render_result(base, wb.model(scene))
    asdr_result = wb.asdr_render(scene)
    asdr = _accelerator(arch).simulate_render(
        wb.dataset(scene).cameras[0], asdr_result, group_size=wb.group_size()
    )
    return gpu.run(workload), neurex.run(workload), asdr


def _speedup_rows(wb: Workbench, scale: str) -> List[Dict[str, object]]:
    rows = []
    for scene in PERF_SCENES:
        g, n, a = scene_platform_reports(wb, scene, scale)
        rows.append(
            {
                "scene": scene,
                "gpu_ms": g.time_seconds * 1e3,
                "neurex_speedup": g.time_seconds / n.time_seconds,
                "asdr_speedup": g.time_seconds / a.time_seconds,
                "asdr_vs_neurex": n.time_seconds / a.time_seconds,
            }
        )
    rows.append(
        {
            "scene": "average",
            "gpu_ms": float(np.mean([r["gpu_ms"] for r in rows])),
            "neurex_speedup": float(np.mean([r["neurex_speedup"] for r in rows])),
            "asdr_speedup": float(np.mean([r["asdr_speedup"] for r in rows])),
            "asdr_vs_neurex": float(np.mean([r["asdr_vs_neurex"] for r in rows])),
        }
    )
    return rows


@register("fig17a", "Speedup over RTX 3070 and NeuRex (server)")
def fig17_server(wb: Workbench) -> List[Dict[str, object]]:
    return _speedup_rows(wb, "server")


@register("fig17b", "Speedup over Xavier NX and NeuRex (edge)")
def fig17_edge(wb: Workbench) -> List[Dict[str, object]]:
    return _speedup_rows(wb, "edge")


def _phase_rows(wb: Workbench, scale: str) -> List[Dict[str, object]]:
    rows = []
    for scene in PERF_SCENES:
        g, n, a = scene_platform_reports(wb, scene, scale)
        rows.append(
            {
                "scene": scene,
                "enc_speedup_vs_gpu": g.encoding_seconds / max(a.encoding_seconds, 1e-12),
                "enc_speedup_vs_neurex": n.encoding_seconds / max(a.encoding_seconds, 1e-12),
                "mlp_speedup_vs_gpu": g.mlp_seconds / max(a.mlp_seconds, 1e-12),
                "mlp_speedup_vs_neurex": n.mlp_seconds / max(a.mlp_seconds, 1e-12),
            }
        )
    return rows


@register("fig18a", "Per-phase speedup (server)")
def fig18_server(wb: Workbench) -> List[Dict[str, object]]:
    return _phase_rows(wb, "server")


@register("fig18b", "Per-phase speedup (edge)")
def fig18_edge(wb: Workbench) -> List[Dict[str, object]]:
    return _phase_rows(wb, "edge")


def _energy_rows(wb: Workbench, scale: str) -> List[Dict[str, object]]:
    rows = []
    for scene in PERF_SCENES:
        g, n, a = scene_platform_reports(wb, scene, scale)
        rows.append(
            {
                "scene": scene,
                "gpu_mj": g.energy_joules * 1e3,
                "neurex_efficiency": g.energy_joules / n.energy_joules,
                "asdr_efficiency": g.energy_joules / a.energy_joules,
            }
        )
    rows.append(
        {
            "scene": "average",
            "gpu_mj": float(np.mean([r["gpu_mj"] for r in rows])),
            "neurex_efficiency": float(np.mean([r["neurex_efficiency"] for r in rows])),
            "asdr_efficiency": float(np.mean([r["asdr_efficiency"] for r in rows])),
        }
    )
    return rows


@register("fig19a", "Energy efficiency vs RTX 3070 (server)")
def fig19_server(wb: Workbench) -> List[Dict[str, object]]:
    return _energy_rows(wb, "server")


@register("fig19b", "Energy efficiency vs Xavier NX (edge)")
def fig19_edge(wb: Workbench) -> List[Dict[str, object]]:
    return _energy_rows(wb, "edge")


@register("fig20", "Ablation: strawman / SW-only / HW-only / ASDR")
def fig20_ablation(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Figure 20 (normalised to the Xavier NX GPU)."""
    gpu = GPUModel(XAVIER_NX)
    rows = []
    for scene in ABLATION_SCENES:
        camera = wb.dataset(scene).cameras[0]
        base = wb.baseline_render(scene)
        asdr_result = wb.asdr_render(scene)
        workload = Workload.from_render_result(base, wb.model(scene))
        gpu_time = gpu.run(workload).time_seconds

        strawman = _accelerator(ArchConfig.strawman("edge"))
        full_hw = _accelerator(ArchConfig.edge())
        t_strawman = strawman.simulate_render(camera, base).time_seconds
        t_sw = strawman.simulate_render(
            camera, asdr_result, group_size=wb.group_size()
        ).time_seconds
        t_hw = full_hw.simulate_render(camera, base).time_seconds
        t_asdr = full_hw.simulate_render(
            camera, asdr_result, group_size=wb.group_size()
        ).time_seconds
        rows.append(
            {
                "scene": scene,
                "strawman": gpu_time / t_strawman,
                "sw_only": gpu_time / t_sw,
                "hw_only": gpu_time / t_hw,
                "asdr": gpu_time / t_asdr,
            }
        )
    return rows


@register("table2", "Area / power budget of ASDR components")
def table2_area_power(wb: Workbench) -> List[Dict[str, object]]:
    """Print the embedded Table 2 model and its totals."""
    rows = []
    for component, entries in COMPONENT_TABLE.items():
        rows.append(
            {
                "component": component,
                "server_area_mm2": entries["server"][0],
                "server_power_mw": entries["server"][1],
                "edge_area_mm2": entries["edge"][0],
                "edge_power_mw": entries["edge"][1],
            }
        )
    server = AreaPowerModel("server")
    edge = AreaPowerModel("edge")
    rows.append(
        {
            "component": "total (paper: %.2f mm2 / %.2f W, %.2f mm2 / %.2f W)"
            % (TOTALS["server"] + TOTALS["edge"]),
            "server_area_mm2": server.total_area_mm2(),
            "server_power_mw": server.total_power_w() * 1e3,
            "edge_area_mm2": edge.total_area_mm2(),
            "edge_power_mw": edge.total_power_w() * 1e3,
        }
    )
    return rows
