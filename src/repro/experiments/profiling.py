"""Motivation/profiling experiments: Figures 4, 5, 8, 13 and 15."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.arch.trace import hash_address_trace, repetition_profile
from repro.cim.mapping import (
    average_utilization,
    hybrid_utilization,
    storage_utilization,
)
from repro.experiments.harness import register
from repro.experiments.workbench import EXPERIMENT_GRID, Workbench
from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.renderer import BaselineRenderer
from repro.utils.math import normalize_rows

#: Paper-scale grid used by the storage-utilisation analysis (Figure 13
#: plots all 16 levels of the 2^19-entry configuration).
PAPER_GRID = HashGridConfig(
    num_levels=16, table_size=2**19, base_resolution=16, max_resolution=512
)


@register("fig4", "Data access visualisation: hash addresses of consecutive samples")
def fig4_access_trace(wb: Workbench) -> List[Dict[str, object]]:
    """Quantify the scatter of hashed addresses (paper: Figure 4).

    The paper plots 1,500 consecutive sample addresses; we report summary
    statistics of the same trace: consecutive-address jump magnitude and
    the fraction of jumps leaving a 64-entry crossbar row range.
    """
    camera = wb.dataset("lego").cameras[0]
    # The baseline render's FrameTrace supplies the sample stream, so the
    # profiler shares geometry with the render instead of re-tracing rays.
    trace = hash_address_trace(
        camera,
        EXPERIMENT_GRID,
        wb.config.num_samples,
        trace=wb.frame_trace("lego", baseline=True),
    )
    jumps = np.abs(np.diff(trace.astype(np.int64)))
    return [
        {
            "trace": "hashed (finest level)",
            "samples": int(len(trace)),
            "mean_jump": float(jumps.mean()),
            "median_jump": float(np.median(jumps)),
            "pct_jumps_beyond_xbar": float((jumps > 64).mean() * 100.0),
            "address_space": int(EXPERIMENT_GRID.table_size),
        }
    ]


@register("fig5", "FLOPs breakdown: embedding / density MLP / color MLP")
def fig5_flops_breakdown(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce the Figure 5 FLOP shares (paper: 2.1 / ~8 / ~92 split)."""
    result = wb.baseline_render("lego")
    total = result.total_flops
    mlp_total = (
        result.phase_counts["density"].flops + result.phase_counts["color"].flops
    )
    return [
        {
            "phase": name,
            "flops": result.phase_counts[name].flops,
            "pct_of_total": 100.0 * result.phase_counts[name].flops / total,
            "pct_of_mlp": (
                100.0 * result.phase_counts[name].flops / mlp_total
                if name in ("density", "color")
                else float("nan")
            ),
        }
        for name in ("embedding", "density", "color", "volume")
    ]


@register("fig8", "Cosine similarity of adjacent sample colors along rays")
def fig8_color_similarity(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Figure 8: adjacent-point color similarity (>=95% near 1)."""
    rows = []
    for scene in ("mic", "lego", "palace"):
        model = wb.model(scene)
        camera = wb.dataset(scene).cameras[0]
        renderer = BaselineRenderer(model, num_samples=wb.config.num_samples)
        origins, dirs = camera.pixel_rays()
        keep = slice(0, 1024)
        _, sigmas, colors, _, hit = renderer.render_rays(origins[keep], dirs[keep])
        colors = colors[hit]
        a = normalize_rows(colors[:, :-1, :] + 1e-6)
        b = normalize_rows(colors[:, 1:, :] + 1e-6)
        cos = np.sum(a * b, axis=-1).reshape(-1)
        rows.append(
            {
                "scene": scene,
                "p5_similarity": float(np.percentile(cos, 5)),
                "frac_above_0.99": float((cos >= 0.99).mean()),
                "mean_similarity": float(cos.mean()),
            }
        )
    return rows


@register("fig13", "Storage utilisation: all-hash vs hybrid mapping")
def fig13_storage_utilization(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Figure 13 (paper: 62.20% -> 85.95% average)."""
    original = storage_utilization(PAPER_GRID)
    hybrid = hybrid_utilization(PAPER_GRID)
    rows = [
        {
            "level": level,
            "resolution": int(PAPER_GRID.level_resolutions[level]),
            "original_pct": 100.0 * original[level],
            "hybrid_pct": 100.0 * hybrid[level],
        }
        for level in range(PAPER_GRID.num_levels)
    ]
    rows.append(
        {
            "level": "avg",
            "resolution": "-",
            "original_pct": 100.0 * average_utilization(original),
            "hybrid_pct": 100.0 * average_utilization(hybrid),
        }
    )
    return rows


@register("fig15", "Inter-ray / intra-ray sample-point repetition rates")
def fig15_repetition(wb: Workbench) -> List[Dict[str, object]]:
    """Reproduce Figure 15's locality profile."""
    camera = wb.dataset("lego").cameras[0]
    inter, intra = repetition_profile(
        camera,
        EXPERIMENT_GRID,
        wb.config.num_samples,
        max_ray_pairs=128,
        trace=wb.frame_trace("lego", baseline=True),
    )
    return [
        {
            "level": level,
            "resolution": int(EXPERIMENT_GRID.level_resolutions[level]),
            "inter_ray_repetition_pct": 100.0 * inter[level],
            "intra_ray_max_points_in_voxel": intra[level],
        }
        for level in range(EXPERIMENT_GRID.num_levels)
    ]
