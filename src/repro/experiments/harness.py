"""Experiment registry and table formatting.

``run_experiment("fig17")`` renders the workloads, simulates the platforms
and prints the paper-style rows; every experiment returns its rows so tests
and benchmarks can assert on the numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.experiments.workbench import Workbench

Rows = List[Dict[str, object]]

#: Experiment id -> (title, function(workbench) -> rows).  Populated by
#: :func:`register`; the experiment modules register themselves on import.
EXPERIMENTS: Dict[str, Tuple[str, Callable[[Workbench], Rows]]] = {}


def register(exp_id: str, title: str):
    """Decorator adding an experiment function to the registry."""

    def wrap(fn: Callable[[Workbench], Rows]):
        EXPERIMENTS[exp_id] = (title, fn)
        return fn

    return wrap


def format_table(rows: Rows, floatfmt: str = "{:.3f}") -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered = []
    for row in rows:
        rendered.append(
            [
                floatfmt.format(v) if isinstance(v, float) else str(v)
                for v in (row.get(c, "") for c in columns)
            ]
        )
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(columns)
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def load_experiments() -> Dict[str, Tuple[str, Callable[[Workbench], Rows]]]:
    """The fully-populated experiment registry.

    Importing the experiment modules populates the registry lazily,
    avoiding a circular import at package-import time.
    """
    from repro.experiments import (  # noqa: F401
        cluster,
        extensions,
        gpu_sw,
        hwconfigs,
        performance,
        profiling,
        quality,
        serving,
        sweeps,
        tensorf_exp,
        video,
    )

    return EXPERIMENTS


def list_experiments() -> List[Tuple[str, str]]:
    """``(experiment id, title)`` pairs of every registered experiment,
    sorted by id — nothing is rendered or simulated."""
    registry = load_experiments()
    return [(exp_id, registry[exp_id][0]) for exp_id in sorted(registry)]


def run_experiment(
    exp_id: str,
    workbench: Optional[Workbench] = None,
    print_output: bool = True,
) -> Rows:
    """Run one registered experiment and (optionally) print its table."""
    load_experiments()
    if exp_id not in EXPERIMENTS:
        raise ReproError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    title, fn = EXPERIMENTS[exp_id]
    rows = fn(workbench or Workbench())
    if print_output:
        print(f"== {exp_id}: {title} ==")
        print(format_table(rows))
    return rows
