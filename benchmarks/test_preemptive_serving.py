"""Preemptive serving: wavefront-granularity ESF tightens p95 under skew.

The motivating pathology for the resumable execution engine: one
probe-heavy tenant (every frame runs Phase I at large, varied budgets —
expensive multi-wavefront frames) shares the accelerator with a stream of
replay-heavy viewers (shake paths: after two fresh frames everything is a
pose replay at scan-out cost) who keep arriving mid-run.  Under the
frame-atomic deadline policy a viewer landing inside a probe frame waits
the frame out — tens of thousands of cycles for a delivery that costs
dozens — while the preemptive variant suspends the probe at the next
quantum boundary and slots the scan-out in.

Pinned claims, on a mix with no shared content (so totals must match):

* **equal work** — both policies execute exactly the same cycles
  (suspend/resume changes *when* wavefronts run, never what they cost),
  and the conservation invariant holds: interleaved total == sum of
  per-client service cycles;
* **p95 win** — preemptive earliest-slack-first delivers a strictly
  lower p95 frame latency than frame-atomic earliest-slack-first, and
  the viewers' own p95 collapses by well over 2x;
* **mechanism** — the probe-heavy tenant is the one preempted, and
  context switches only occur under the preemptive policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.frame_trace import FrameTrace
from repro.exec.sequence import SequenceTrace, pose_key
from repro.experiments.workbench import experiment_accelerator
from repro.scenes.cameras import camera_path
from repro.serving.policies import make_policy
from repro.serving.request import ClientRequest
from repro.serving.server import SequenceServer

PROBE_FRAMES = 3
PROBE_SIZE = 24
VIEWERS = 5
VIEWER_FRAMES = 14
VIEWER_SIZE = 8
QUANTUM = 2


def _probe_heavy_sequence():
    """Every frame a Phase I probe over ten budget groups — the expensive
    tenant whose frames span many wavefront steps."""
    path = camera_path("orbit", PROBE_FRAMES, PROBE_SIZE, PROBE_SIZE, arc=0.5)
    n = PROBE_SIZE * PROBE_SIZE
    budgets = (4 + (np.arange(n) % 10) * 3).astype(np.int64)
    traces = [FrameTrace.from_budgets(cam, budgets) for cam in path.cameras()]
    return path, SequenceTrace(
        frames=traces,
        path_key=path.cache_key(),
        kind="asdr",
        planned=[True] * PROBE_FRAMES,
    )


def _replay_heavy_sequence(salt: int):
    """A shake path with period 2: two fresh low-budget frames, then pose
    replays only — the cheap streaming viewer."""
    path = camera_path(
        "shake", VIEWER_FRAMES, VIEWER_SIZE, VIEWER_SIZE,
        amplitude=0.03 + 0.01 * salt, period=2,
    )
    frames, replays, seen = [], [], {}
    for cam in path.cameras():
        key = pose_key(cam)
        if key in seen:
            frames.append(frames[seen[key]])
            replays.append(seen[key])
            continue
        budgets = np.full(VIEWER_SIZE * VIEWER_SIZE, 2, dtype=np.int64)
        seen[key] = len(frames)
        frames.append(FrameTrace.from_budgets(cam, budgets))
        replays.append(None)
    planned = [k == 0 and r is None for k, r in enumerate(replays)]
    return path, SequenceTrace(
        frames=frames,
        path_key=path.cache_key(),
        kind="asdr",
        replays=replays,
        planned=planned,
    )


@pytest.fixture(scope="module")
def skewed_reports():
    """Both deadline policies on one server (shared traces, shared alone
    references); viewers arrive staggered through the probe-heavy run."""
    accelerator = experiment_accelerator("server")
    server = SequenceServer(accelerator, shared_content=False)
    path, seq = _probe_heavy_sequence()
    server.submit(
        ClientRequest(client_id="probe_heavy", scene="bench", path=path), seq
    )
    for i in range(VIEWERS):
        vpath, vseq = _replay_heavy_sequence(i)
        server.submit(
            ClientRequest(
                client_id=f"viewer{i}",
                scene="bench",
                path=vpath,
                arrival_cycle=3_000 + 9_000 * i,
            ),
            vseq,
        )
    return {
        "deadline": server.serve("deadline"),
        "deadline_preemptive": server.serve(
            make_policy("deadline_preemptive", quantum=QUANTUM)
        ),
    }


def _viewer_p95(report) -> float:
    lats = [
        lat
        for c in report.clients
        if c.client_id.startswith("viewer")
        for lat in c.latencies_cycles
    ]
    return float(np.percentile(np.asarray(lats), 95))


def test_equal_total_cycles_and_conservation(skewed_reports):
    atomic = skewed_reports["deadline"]
    preemptive = skewed_reports["deadline_preemptive"]
    assert atomic.busy_cycles == preemptive.busy_cycles, (
        "preemption must not change what the frames cost"
    )
    for report in skewed_reports.values():
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )
    for a, b in zip(atomic.clients, preemptive.clients):
        assert a.service_cycles == b.service_cycles


def test_preemptive_esf_lowers_p95_on_skewed_mix(skewed_reports):
    atomic = skewed_reports["deadline"]
    preemptive = skewed_reports["deadline_preemptive"]
    p95_atomic = atomic.latency_percentile(95)
    p95_preemptive = preemptive.latency_percentile(95)
    assert p95_preemptive < p95_atomic, (
        f"preemptive ESF p95 {p95_preemptive:.0f} must undercut "
        f"frame-atomic ESF {p95_atomic:.0f}"
    )
    viewer_atomic = _viewer_p95(atomic)
    viewer_preemptive = _viewer_p95(preemptive)
    assert viewer_preemptive * 2 < viewer_atomic, (
        "head-of-line blocking should dominate the viewers' tail latency"
    )
    print(
        f"\npreemptive serving (1 probe-heavy + {VIEWERS} replay-heavy, "
        f"quantum {QUANTUM}): aggregate p95 {p95_atomic:.0f} -> "
        f"{p95_preemptive:.0f} cycles, viewer p95 {viewer_atomic:.0f} -> "
        f"{viewer_preemptive:.0f} cycles "
        f"({viewer_atomic / viewer_preemptive:.1f}x) at equal "
        f"{atomic.busy_cycles / 1e3:.0f} kcycles total; "
        f"{preemptive.context_switches} context switches"
    )


def test_probe_heavy_tenant_is_the_one_preempted(skewed_reports):
    atomic = skewed_reports["deadline"]
    preemptive = skewed_reports["deadline_preemptive"]
    assert atomic.context_switches == 0
    assert preemptive.context_switches > 0
    assert preemptive.client("probe_heavy").preemptions > 0
    for c in preemptive.clients:
        if c.client_id.startswith("viewer"):
            assert c.preemptions == 0, "scan-out viewers have nothing to preempt"
