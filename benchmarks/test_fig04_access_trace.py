"""Figure 4: hash address scatter of consecutive sample points."""

from benchmarks.conftest import run_and_report


def test_fig4_access_trace(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig4", wb,
        "hashed accesses show poor spatial locality across a 2^19 table",
    )
    row = rows[0]
    # The Figure 4 claim: a large share of consecutive accesses scatter
    # beyond any crossbar row range.
    assert row["pct_jumps_beyond_xbar"] > 10.0
    assert row["mean_jump"] > 32.0
