"""Figure 15: inter-ray and intra-ray voxel repetition rates
(paper: >=90% inter-ray repetition for 12/16 levels, >70% at the finest;
98/192 points in one voxel at the coarsest level)."""

from benchmarks.conftest import run_and_report


def test_fig15_repetition(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig15", wb,
        "inter-ray repetition >=90% at coarse levels; strong intra-ray "
        "voxel concentration",
    )
    coarse, fine = rows[0], rows[-1]
    assert coarse["inter_ray_repetition_pct"] > 80.0
    assert coarse["inter_ray_repetition_pct"] >= fine["inter_ray_repetition_pct"]
    assert coarse["intra_ray_max_points_in_voxel"] >= 4
    assert coarse["intra_ray_max_points_in_voxel"] >= fine[
        "intra_ray_max_points_in_voxel"
    ]
