"""Shared benchmark fixtures.

All benchmarks run their paper experiment through one shared
:class:`Workbench` whose distilled models are cached on disk under
``.cache/models`` — the first run trains ten small models (~3 minutes),
subsequent runs load checkpoints.

Each benchmark both *times* the experiment (pytest-benchmark) and *checks*
the paper's qualitative claim (who wins, by roughly what factor), then
prints the measured rows next to the paper's numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import format_table, run_experiment
from repro.experiments.workbench import Workbench


@pytest.fixture(scope="session")
def wb() -> Workbench:
    return Workbench()


def run_and_report(benchmark, exp_id: str, wb: Workbench, paper_note: str):
    """Benchmark one experiment once and print its table with paper refs."""
    rows = benchmark.pedantic(
        lambda: run_experiment(exp_id, wb, print_output=False),
        rounds=1,
        iterations=1,
    )
    print(f"\n== {exp_id} | paper: {paper_note}")
    print(format_table(rows))
    return rows
