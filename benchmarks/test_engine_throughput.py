"""Engine throughput: the batched wavefront engine vs the stepped path.

The before/after artefact of the profile-guided batching work.  Two
measurements, both stated against the *same* workload so the numbers are
comparable run to run:

* **serve wall-clock** — the full ``repro serve`` client mix, timed once
  with the batched engine forced off (:func:`scalar_engine`, the PR-5
  one-``step()``-per-wavefront spelling) and once with it on.  Each mode
  gets its own :class:`Workbench` and its own untimed warmup run, so
  neither mode is flattered by memo caches the other populated.
* **frame microbench** — wavefront steps per second through one
  multi-step :class:`FrameExecution`, stepped vs ``run()``.

Speed claims are only meaningful if the fast path computes the same
thing, so the serve measurement *asserts bit-identity* — every
``ServeReport.to_rows()`` row, every policy — between the two modes
before it reports a speedup.  A divergence fails the benchmark (and the
CI smoke job) rather than shipping a fast wrong number.

Runs two ways:

* under pytest (with ``pytest-benchmark``) at smoke scale, as part of
  the tier-1 suite;
* as a script (numpy-only, no pytest needed) emitting the
  machine-readable ``BENCH_engine.json`` (schema ``engine_bench/v1``)::

      PYTHONPATH=src python benchmarks/test_engine_throughput.py \
          --clients 6 --frames 4 --size 16 --out BENCH_engine.json

The committed ``BENCH_engine.json`` snapshots the full six-client palace
mix; CI regenerates a small-config one per push and fails on divergence.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.exec.batch import cold_plan_point_limit
from repro.exec.execution import scalar_engine
from repro.exec.frame_trace import FrameTrace
from repro.experiments.serving import default_client_mix, serve_reports
from repro.experiments.workbench import Workbench, experiment_accelerator
from repro.scenes.cameras import camera_path

try:  # CI's serve-smoke job runs script mode on a bare numpy install
    import pytest
except ImportError:  # pragma: no cover
    pytest = None  # type: ignore[assignment]


def _best_of(fn: Callable[[], object], rounds: int) -> float:
    """Best wall-clock of ``rounds`` calls — the standard noise filter
    for a shared machine (the minimum estimates the undisturbed cost)."""
    best = float("inf")
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _serve_rows(
    wb: Workbench, requests: Sequence, quantum: int
) -> Dict[str, List[Dict[str, object]]]:
    reports = serve_reports(wb, requests, quantum=quantum)
    return {policy: report.to_rows() for policy, report in reports.items()}


def serve_benchmark(
    scene: str = "palace",
    clients: int = 6,
    frames: int = 4,
    size: int = 16,
    quantum: int = 2,
    rounds: int = 3,
) -> Dict[str, object]:
    """Time the serving mix scalar vs batched; assert bit-identity.

    Each mode builds a fresh :class:`Workbench`, pre-renders every client
    sequence (rendering is outside the engine being measured), runs one
    untimed warmup pass, then keeps the best of ``rounds`` timed passes.
    """
    results: Dict[str, object] = {}
    rows_by_mode: Dict[str, Dict[str, List[Dict[str, object]]]] = {}
    for mode in ("scalar", "batched"):
        wb = Workbench()
        requests = default_client_mix(
            scene=scene, clients=clients, frames=frames, size=size
        )
        for request in requests:
            wb.client_sequence(request)  # pre-render, untimed

        def run() -> None:
            rows_by_mode[mode] = _serve_rows(wb, requests, quantum)

        if mode == "scalar":
            with scalar_engine():
                run()  # warmup
                seconds = _best_of(run, rounds)
        else:
            run()  # warmup
            seconds = _best_of(run, rounds)
        results[f"{mode}_seconds"] = round(seconds, 4)

    identical = rows_by_mode["scalar"] == rows_by_mode["batched"]
    assert identical, (
        "batched serving diverged from the scalar engine — the batched "
        "path must be bit-identical before its speed means anything"
    )
    results["identical_rows"] = identical
    results["policies"] = sorted(rows_by_mode["batched"])
    results["speedup"] = round(
        results["scalar_seconds"] / max(results["batched_seconds"], 1e-9), 2
    )
    return results


def _report_key(report) -> tuple:
    return (
        report.total_cycles,
        report.encoding.cycles,
        report.mlp.cycles,
        report.render.cycles,
        tuple(sorted(report.energy_by_component.items())),
    )


def frame_microbenchmark(
    size: int = 16, groups: int = 8, rounds: int = 3
) -> Dict[str, object]:
    """Wavefront steps per second through one serving-scale frame,
    stepped vs batched, on the acceptance-scale accelerator.

    Sized like the frames the serve mix actually schedules (16x16,
    a handful of budget groups): that is the regime the batched engine
    was profiled against.  On much larger cold frames the per-execution
    plan assembly can eat the fused-pass win — the serving speedup comes
    from modest frames plus cross-execution plan/stream reuse, which the
    serve benchmark above measures directly."""
    acc = experiment_accelerator("server")
    cam = camera_path("orbit", 1, size, size, arc=0.4).cameras()[0]
    budgets = (1 + (np.arange(size * size) % groups) * 3).astype(np.int64)
    trace = FrameTrace.from_budgets(cam, budgets)

    state: Dict[str, object] = {}

    def run_stepped() -> None:
        with scalar_engine():
            ex = acc.trace_execution(trace)
            while not ex.done:
                ex.step()
            state["stepped"] = _report_key(ex.finish())
        state["n"] = ex.steps_done

    def run_batched() -> None:
        ex = acc.trace_execution(trace)
        while not ex.done:
            ex.run()
        state["batched"] = _report_key(ex.finish())
        state["n"] = ex.steps_done

    run_stepped()  # warmup
    stepped_s = _best_of(run_stepped, rounds)
    run_batched()  # warmup
    batched_s = _best_of(run_batched, rounds)
    assert state["stepped"] == state["batched"], (
        "batched frame pricing diverged from the stepped engine"
    )
    return {
        "steps": int(state["n"]),
        "identical_reports": True,
        "stepped_seconds": round(stepped_s, 5),
        "batched_seconds": round(batched_s, 5),
        "stepped_steps_per_s": round(state["n"] / stepped_s, 1),
        "batched_steps_per_s": round(state["n"] / batched_s, 1),
        "speedup": round(stepped_s / max(batched_s, 1e-9), 2),
    }


def cold_plan_benchmark(
    sizes: Sequence[int] = (16, 32),
    budget_scale: int = 1,
    rounds: int = 2,
) -> Dict[str, object]:
    """Stepped vs planned wall-clock on *cold* frames — the measurement
    behind :data:`repro.exec.batch.COLD_PLAN_POINT_LIMIT`.

    Every timed pass builds a **fresh** trace (no memoised streams, no
    plan — the genuinely cold case a one-shot large frame hits), so the
    numbers show where plan assembly stops paying for itself.  ``run()``
    consults :func:`~repro.exec.batch.plan_build_worthwhile` and falls
    back to the stepped engine above the limit; both paths price
    bit-identically (asserted here), so the heuristic is purely a
    wall-clock choice.  The committed full sweep put the crossover
    between ~47k and ~94k density points; the smoke sizes here stay
    below it so CI never pays the slow side.
    """
    acc = experiment_accelerator("server")
    points_list: List[Dict[str, object]] = []
    for size in sizes:
        def make_trace() -> FrameTrace:
            cam = camera_path("orbit", 1, size, size, arc=0.4).cameras()[0]
            budgets = (
                (1 + (np.arange(size * size) % 8) * 3) * budget_scale
            ).astype(np.int64)
            return FrameTrace.from_budgets(cam, budgets)

        state: Dict[str, object] = {}

        def run_cold(mode: str) -> None:
            trace = make_trace()  # fresh: cold memo, cold setup cache
            ex = acc.trace_execution(trace)
            if mode == "stepped":
                with scalar_engine():
                    state["stepped"] = _report_key(ex.finish())
            else:
                ex.run_vectorized()
                state["planned"] = _report_key(ex.finish())
            state["points"] = ex._total_points

        stepped_s = _best_of(lambda: run_cold("stepped"), rounds)
        planned_s = _best_of(lambda: run_cold("planned"), rounds)
        assert state["stepped"] == state["planned"], (
            "planned cold-frame pricing diverged from the stepped engine"
        )
        points_list.append(
            {
                "size": size,
                "points": int(state["points"]),
                "stepped_seconds": round(stepped_s, 5),
                "planned_seconds": round(planned_s, 5),
                "planned_over_stepped": round(
                    planned_s / max(stepped_s, 1e-9), 3
                ),
            }
        )
    return {
        "cold_plan_point_limit": cold_plan_point_limit(),
        "frames": points_list,
    }


def engine_bench_payload(
    scene: str = "palace",
    clients: int = 6,
    frames: int = 4,
    size: int = 16,
    quantum: int = 2,
    rounds: int = 3,
) -> Dict[str, object]:
    """The full ``engine_bench/v1`` document."""
    return {
        "schema": "engine_bench/v1",
        "config": {
            "scene": scene,
            "clients": clients,
            "frames": frames,
            "size": size,
            "quantum": quantum,
            "rounds": rounds,
        },
        "serve": serve_benchmark(
            scene=scene,
            clients=clients,
            frames=frames,
            size=size,
            quantum=quantum,
            rounds=rounds,
        ),
        "frame_micro": frame_microbenchmark(rounds=rounds),
        "cold_plan": cold_plan_benchmark(rounds=rounds),
    }


if pytest is not None:

    @pytest.mark.parametrize("quantum", [2])
    def test_serve_bit_identity_and_speedup(benchmark, quantum):
        """Smoke scale: batched serving is bit-identical to scalar and
        not slower.  The hard >=5x claim lives in the committed
        full-scale ``BENCH_engine.json``; at 2 clients x 2 frames x 8x8
        fixed overheads dominate, so only direction is asserted here."""
        wb = Workbench()
        requests = default_client_mix(clients=2, frames=2, size=8)
        for request in requests:
            wb.client_sequence(request)
        with scalar_engine():
            scalar_rows = _serve_rows(wb, requests, quantum)
        rows = benchmark.pedantic(
            lambda: _serve_rows(wb, requests, quantum),
            rounds=1,
            iterations=1,
        )
        assert rows == scalar_rows

    def test_cold_plan_fallback_is_bit_identical(monkeypatch):
        """Above ``REPRO_COLD_PLAN_LIMIT`` a cold `run()` falls back to
        the stepped engine (no plan is built) and still prices
        bit-identically to forcing the planner."""
        acc = experiment_accelerator("server")
        cam = camera_path("orbit", 1, 16, 16, arc=0.4).cameras()[0]
        budgets = (1 + (np.arange(16 * 16) % 8) * 3).astype(np.int64)

        monkeypatch.setenv("REPRO_COLD_PLAN_LIMIT", "1")
        ex = acc.trace_execution(FrameTrace.from_budgets(cam, budgets))
        fallback = _report_key(ex.finish())
        assert ex._plan is None, "cold fallback must not build a plan"

        monkeypatch.delenv("REPRO_COLD_PLAN_LIMIT")
        ex = acc.trace_execution(FrameTrace.from_budgets(cam, budgets))
        planned = _report_key(ex.finish())
        assert ex._plan is not None
        assert fallback == planned

    def test_frame_micro_identity(benchmark):
        """The single-frame hot loop: batched pricing matches stepping
        bit-for-bit (asserted inside the microbenchmark); the speedup is
        reported, not thresholded — wall-clock gates live in the
        committed snapshot, not in CI-noise territory."""
        micro = benchmark.pedantic(
            lambda: frame_microbenchmark(size=16, groups=8, rounds=1),
            rounds=1,
            iterations=1,
        )
        print(
            f"\n== engine micro | {micro['steps']} steps: "
            f"stepped {micro['stepped_steps_per_s']}/s vs "
            f"batched {micro['batched_steps_per_s']}/s "
            f"({micro['speedup']}x)"
        )
        assert micro["identical_reports"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Engine throughput benchmark (emits engine_bench/v1)"
    )
    parser.add_argument("--scene", default="palace")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--size", type=int, default=16)
    parser.add_argument("--quantum", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    payload = engine_bench_payload(
        scene=args.scene,
        clients=args.clients,
        frames=args.frames,
        size=args.size,
        quantum=args.quantum,
        rounds=args.rounds,
    )
    serve = payload["serve"]
    micro = payload["frame_micro"]
    print(
        f"serve   : scalar {serve['scalar_seconds']}s -> "
        f"batched {serve['batched_seconds']}s "
        f"({serve['speedup']}x, identical rows)"
    )
    print(
        f"frame   : {micro['stepped_steps_per_s']}/s -> "
        f"{micro['batched_steps_per_s']}/s steps ({micro['speedup']}x)"
    )
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
