"""SLO-class serving under overload: baseline vs armed control loops.

The artefact of the SLO work: the calibrated overload mix (one
``interactive`` tenant paced faster than its own full-quality alone
pace, one ``standard`` tenant near fair share, four ``batch`` tenants
plus an overflow tenant) served twice on identical deadlines — once by
the pre-SLO server under class-blind preemptive round-robin, once by the
deadline-weighted policy with an :class:`~repro.serving.slo.SLOConfig`
armed (admission control, batch shedding, PSNR-guarded degrade) — plus a
third run under ``--quantum auto`` to exercise the tuner.

The acceptance gates run inside
:func:`repro.experiments.slo.slo_bench_payload` and again in the
``slo_bench/v1`` validator (:mod:`repro.obs.schemas`):

* interactive attainment ≥ 0.95 with the machinery on, < 0.7 without it;
* the SLO run burns no more fleet cycles than the baseline;
* admission rejected the overflow tenant, at least one batch frame was
  shed, at least one frame was degraded, and every degraded frame's
  PSNR sits at or above the configured guard.

Runs two ways:

* under pytest (with ``pytest-benchmark``) at smoke scale, as part of
  the tier-1 suite;
* as a script (numpy-only, no pytest needed) emitting the
  machine-readable ``BENCH_slo.json`` (schema ``slo_bench/v1``)::

      PYTHONPATH=src python benchmarks/test_slo_serving.py \
          --frames 4 --size 16 --out BENCH_slo.json

The committed ``BENCH_slo.json`` snapshots the full palace mix; CI's
``slo-smoke`` job regenerates a small-config one per push and validates
it through ``tools/validate_bench.py``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional, Sequence

from repro.experiments.slo import slo_bench_payload

try:  # CI's slo-smoke job runs script mode on a bare numpy install
    import pytest
except ImportError:  # pragma: no cover
    pytest = None  # type: ignore[assignment]


def timed_payload(
    scene: str = "palace",
    frames: int = 4,
    size: int = 16,
    scale: str = "server",
) -> Dict[str, object]:
    """Build the ``slo_bench/v1`` document with its wall-clock attached.

    The gates are asserted inside the builder; rendering dominates the
    first call, so the reported time covers calibration + three serves,
    not scene setup (the workbench memoises sequences internally).
    """
    t0 = time.perf_counter()
    payload = slo_bench_payload(
        scene=scene, frames=frames, size=size, scale=scale
    )
    payload["build_seconds"] = round(time.perf_counter() - t0, 4)
    return payload


if pytest is not None:

    def test_slo_gates_hold_at_smoke_scale(benchmark):
        """Smoke scale: the attainment/cycles/shed/degrade gates run
        inside the payload builder; the committed full-scale
        ``BENCH_slo.json`` carries the headline numbers."""
        payload = benchmark.pedantic(
            lambda: timed_payload(frames=4, size=8),
            rounds=1,
            iterations=1,
        )
        assert payload["schema"] == "slo_bench/v1"
        assert payload["admission_rejects"] > 0
        assert payload["slo"]["slo_attainment"]["interactive"] >= 0.95
        assert payload["baseline"]["slo_attainment"]["interactive"] < 0.7
        # The validator must agree with the inline gates.
        from repro.obs.schemas import validate_slo_bench

        assert validate_slo_bench(payload) == []


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="SLO overload-control benchmark (emits slo_bench/v1)"
    )
    parser.add_argument("--scene", default="palace")
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--size", type=int, default=16)
    parser.add_argument("--scale", default="server")
    parser.add_argument("--out", default="BENCH_slo.json")
    args = parser.parse_args(argv)

    payload = timed_payload(
        scene=args.scene, frames=args.frames, size=args.size, scale=args.scale
    )
    for run in ("baseline", "slo", "quantum_auto"):
        entry = payload[run]
        attain = ", ".join(
            f"{cls}={val:.2f}"
            for cls, val in sorted(entry["slo_attainment"].items())
        )
        print(
            f"{run:12s}: {attain}; busy {entry['busy_cycles']} cycles, "
            f"shed {entry['shed_frames']}, degraded {entry['degraded_frames']}"
        )
    print(
        f"admission rejected {payload['admission_rejects']} tenant(s) at a "
        f"{payload['admit_cycles']}-cycle cap; built in "
        f"{payload['build_seconds']}s"
    )
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
