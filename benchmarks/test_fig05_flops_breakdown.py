"""Figure 5: FLOPs breakdown (paper: 2.10 embedding, density ~8% of MLP,
color ~92% of MLP)."""

from benchmarks.conftest import run_and_report


def test_fig5_flops_breakdown(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig5", wb,
        "embedding 2.10%, density ~8% / color ~92% of MLP FLOPs",
    )
    shares = {r["phase"]: r for r in rows}
    assert shares["embedding"]["pct_of_total"] < 10.0
    assert 3.0 < shares["density"]["pct_of_mlp"] < 20.0
    assert shares["color"]["pct_of_mlp"] > 80.0
