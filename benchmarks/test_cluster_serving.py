"""Cluster serving: content-affinity routing vs placement-blind sharding.

The artefact of the fleet work: the same twin-heavy client mix (popular
content watched by several tenants) served on the same fleet shape under
the content-affinity router and the placement-blind ``random`` hash
router.  Placement is the only degree of freedom, so the aggregate-cycle
gap *is* the value of content-aware routing — the affinity fleet serves
each twin pair's second stream at scan-out cost, the hash fleet
re-executes it on the other box.

Correctness gates ride along, mirroring the engine benchmark:

* **single-shard identity** — a one-shard cluster's nested ``ServeReport``
  must be bit-identical to serving the same submissions on a bare
  :class:`SequenceServer` (the cluster layer adds placement, not cycles);
* **ordering** — ``affinity`` must not lose to ``random`` on fleet busy
  cycles for the twin-heavy mix (the PR's acceptance criterion), with
  both routers delivering the same frames.

Runs two ways:

* under pytest (with ``pytest-benchmark``) at smoke scale, as part of
  the tier-1 suite;
* as a script (numpy-only, no pytest needed) emitting the
  machine-readable ``BENCH_cluster.json`` (schema ``cluster_bench/v1``)::

      PYTHONPATH=src python benchmarks/test_cluster_serving.py \
          --clients 6 --frames 4 --size 16 --shards 2 \
          --out BENCH_cluster.json

The committed ``BENCH_cluster.json`` snapshots the full six-client palace
mix on two shards; CI regenerates a small-config one per push and fails
on divergence.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Optional, Sequence

from repro.experiments.cluster import cluster_reports, twin_heavy_mix
from repro.experiments.workbench import Workbench, experiment_accelerator
from repro.serving.cluster import ClusterServer, cluster_bench_summary
from repro.serving.server import SequenceServer

try:  # CI's cluster-smoke job runs script mode on a bare numpy install
    import pytest
except ImportError:  # pragma: no cover
    pytest = None  # type: ignore[assignment]


def _best_of(fn: Callable[[], object], rounds: int) -> float:
    """Best wall-clock of ``rounds`` calls — the standard noise filter
    for a shared machine (the minimum estimates the undisturbed cost)."""
    best = float("inf")
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def single_shard_identity(
    wb: Workbench, requests: Sequence, policy: str
) -> bool:
    """Whether a one-shard cluster's report is bit-identical to a bare
    :class:`SequenceServer` serving the same submissions."""
    cluster = ClusterServer(
        [experiment_accelerator("server")],
        router="affinity",
        group_size=wb.group_size(),
    )
    bare = SequenceServer(
        experiment_accelerator("server"), group_size=wb.group_size()
    )
    for request in requests:
        sequence = wb.client_sequence(request)
        cluster.submit(request, sequence)
        bare.submit(request, sequence)
    fleet = cluster.serve(policy)
    return fleet.shards[0].to_dict() == bare.serve(policy).to_dict()


def cluster_bench_payload(
    scene: str = "palace",
    clients: int = 6,
    frames: int = 4,
    size: int = 16,
    shards: int = 2,
    policy: str = "round_robin_preemptive",
    rounds: int = 3,
) -> Dict[str, object]:
    """The full ``cluster_bench/v1`` document.

    Serves the twin-heavy mix under each compared router (pre-rendered,
    so the timings cover placement + serving, not scene rendering),
    asserts the identity and ordering gates, and wraps the per-router
    fleet summaries with the run's config and headline comparison.
    """
    wb = Workbench()
    requests = twin_heavy_mix(
        scene=scene, clients=clients, frames=frames, size=size
    )
    for request in requests:
        wb.client_sequence(request)  # pre-render, untimed

    reports: Dict[str, object] = {}
    timings: Dict[str, float] = {}
    for router in ("affinity", "random"):

        def run() -> None:
            reports[router] = cluster_reports(
                wb,
                requests,
                shards=shards,
                routers=(router,),
                policy=policy,
            )[router]

        run()  # warmup (and the reported placement)
        timings[router] = round(_best_of(run, rounds), 4)

    affinity, random_ = reports["affinity"], reports["random"]
    assert affinity.total_frames == random_.total_frames, (
        "routers must deliver the same frames before cycles compare"
    )
    assert affinity.total_busy_cycles <= random_.total_busy_cycles, (
        "content-affinity routing lost to the placement-blind hash "
        "router on the twin-heavy mix — placement stopped paying"
    )
    identical = single_shard_identity(wb, requests, policy)
    assert identical, (
        "a one-shard cluster diverged from the bare SequenceServer — "
        "the cluster layer must add placement, not cycles"
    )
    payload = cluster_bench_summary(reports)
    payload["config"] = {
        "scene": scene,
        "clients": clients,
        "frames": frames,
        "size": size,
        "shards": shards,
        "policy": policy,
        "rounds": rounds,
    }
    payload["serve_seconds"] = timings
    payload["single_shard_identical"] = identical
    payload["affinity_over_random_cycles"] = round(
        affinity.total_busy_cycles / max(random_.total_busy_cycles, 1), 3
    )
    return payload


if pytest is not None:

    def test_affinity_beats_random_and_single_shard_identity(benchmark):
        """Smoke scale: the ordering and identity gates run inside the
        payload builder; the committed full-scale ``BENCH_cluster.json``
        carries the headline numbers."""
        payload = benchmark.pedantic(
            lambda: cluster_bench_payload(
                clients=6, frames=2, size=8, shards=2, rounds=1
            ),
            rounds=1,
            iterations=1,
        )
        assert payload["schema"] == "cluster_bench/v1"
        assert payload["single_shard_identical"]
        assert payload["affinity_over_random_cycles"] <= 1.0
        assert set(payload["routers"]) == {"affinity", "random"}


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Cluster serving benchmark (emits cluster_bench/v1)"
    )
    parser.add_argument("--scene", default="palace")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--frames", type=int, default=4)
    parser.add_argument("--size", type=int, default=16)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--policy", default="round_robin_preemptive")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--out", default="BENCH_cluster.json")
    args = parser.parse_args(argv)

    payload = cluster_bench_payload(
        scene=args.scene,
        clients=args.clients,
        frames=args.frames,
        size=args.size,
        shards=args.shards,
        policy=args.policy,
        rounds=args.rounds,
    )
    for router in ("affinity", "random"):
        entry = payload["routers"][router]
        print(
            f"{router:9s}: {entry['total_busy_cycles']} busy cycles over "
            f"{entry['shards']} shards ({entry['total_frames']} frames), "
            f"fairness {entry['fairness']:.3f}, "
            f"serve {payload['serve_seconds'][router]}s"
        )
    print(
        f"affinity/random cycles: {payload['affinity_over_random_cycles']} "
        f"(single-shard identity: {payload['single_shard_identical']})"
    )
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
