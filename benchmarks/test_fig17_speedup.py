"""Figure 17: end-to-end speedup over GPUs and NeuRex
(paper: server ASDR 11.84x vs RTX 3070, NeuRex 2.89x;
edge ASDR 49.61x vs Xavier NX, NeuRex 9.21x)."""

from benchmarks.conftest import run_and_report


def test_fig17a_server_speedup(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig17a", wb,
        "server avg: NeuRex 2.89x, ASDR 11.84x over RTX 3070",
    )
    avg = rows[-1]
    assert avg["asdr_speedup"] > avg["neurex_speedup"] > 1.0
    assert avg["asdr_speedup"] > 4.0
    assert avg["asdr_vs_neurex"] > 1.5  # paper: 4.11x


def test_fig17b_edge_speedup(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig17b", wb,
        "edge avg: NeuRex 9.21x, ASDR 49.61x over Xavier NX",
    )
    avg = rows[-1]
    assert avg["asdr_speedup"] > avg["neurex_speedup"] > 1.0
    assert avg["asdr_speedup"] > 10.0
    assert avg["asdr_vs_neurex"] > 1.5  # paper: 5.38x
