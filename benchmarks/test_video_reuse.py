"""Video sequences: temporal reuse vs independent per-frame simulation.

Two claims are pinned on the acceptance configuration (a 4-frame 56x56
orbit segment, server design):

* **cycles** — the sequence path (Phase I on the first frame only +
  temporal vertex cache) delivers a measurable amortised speedup in
  simulated cycles over simulating every frame independently, and both
  ASDR variants beat the fixed-budget baseline;
* **wall clock** — warm sequence simulation (SequenceTrace memo caches
  populated) beats re-simulating the same frames one by one from cold
  traces, which pay corner/gap re-derivation every time.
"""

from __future__ import annotations

import time

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.exec.sequence import SequenceTrace
from repro.experiments.video import sequence_reports
from repro.experiments.workbench import EXPERIMENT_GRID, EXPERIMENT_MODEL
from repro.scenes.cameras import camera_path

SCENE = "palace"


def _acceptance_path(wb):
    return camera_path("orbit", 4, wb.config.width, wb.config.height, arc=0.1)


def _best_of(fn, rounds: int = 3) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_temporal_reuse_amortised_cycle_speedup(wb):
    reports = sequence_reports(wb, SCENE, _acceptance_path(wb))
    video, fresh, base = reports["video"], reports["asdr"], reports["baseline"]
    speedup = fresh.total_cycles / video.total_cycles
    print(
        f"\nvideo({SCENE}, 4x{wb.config.width}x{wb.config.height} orbit): "
        f"amortised {video.amortised_cycles / 1e3:.1f} kcycles/frame vs "
        f"{fresh.amortised_cycles / 1e3:.1f} independent ({speedup:.3f}x; "
        f"temporal hit rate {100 * video.temporal_hit_rate:.1f}%, "
        f"baseline {base.amortised_cycles / 1e3:.1f})"
    )
    # Measurable amortised win from temporal reuse (deterministic cycle
    # arithmetic — no timing noise in this assertion).
    assert speedup > 1.01, (
        f"temporal reuse should beat independent per-frame simulation, got "
        f"{speedup:.4f}x"
    )
    assert video.temporal_hits > 0
    # Reuse only on the non-keyframes: frame 0 prices identically.
    assert video.frames[0].total_cycles == fresh.frames[0].total_cycles
    # Both ASDR variants beat the fixed-budget baseline.
    assert video.total_cycles < base.total_cycles
    assert fresh.total_cycles < base.total_cycles


def test_warm_sequence_simulation_beats_per_frame_resimulation(wb):
    accelerator = ASDRAccelerator(
        ArchConfig.server(),
        EXPERIMENT_GRID,
        EXPERIMENT_MODEL.density_mlp_config,
        EXPERIMENT_MODEL.color_mlp_config,
    )
    group = wb.group_size()
    seq = wb.sequence_trace(SCENE, _acceptance_path(wb))

    def warm_sequence():
        return accelerator.simulate_sequence(seq, group_size=group)

    warm_sequence()  # populate the sequence/frame memo caches

    # Cold per-frame traces pay ray-corner and gap derivation every round;
    # clones are prebuilt so (de)serialisation stays out of the timing.
    rounds = 3
    cold_rounds = [
        [
            trace if replay is None else None
            for trace, replay in zip(
                SequenceTrace.from_dict(seq.to_dict()).frames, seq.replays
            )
        ]
        for _ in range(rounds)
    ]

    def per_frame_resimulation():
        frames = cold_rounds.pop()
        return [
            accelerator.simulate_trace(trace, group_size=group)
            for trace in frames
            if trace is not None
        ]

    t_warm = _best_of(warm_sequence, rounds=rounds)
    t_cold = _best_of(per_frame_resimulation, rounds=rounds)
    print(
        f"\nsequence simulation ({SCENE}): warm {t_warm * 1e3:.0f} ms vs "
        f"per-frame re-simulation {t_cold * 1e3:.0f} ms "
        f"({t_cold / t_warm:.2f}x)"
    )
    assert t_warm < t_cold, (
        f"warm sequence simulation ({t_warm:.3f}s) should beat per-frame "
        f"re-simulation ({t_cold:.3f}s)"
    )
