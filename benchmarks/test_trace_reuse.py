"""Timing: FrameTrace reuse vs budget-map re-derivation.

The seed pipeline rendered a frame, then ``simulate_render`` re-derived
every ray, sample point and voxel corner from ``(camera, budgets)`` before
charging the engines.  That implicit path is retired — trace-less results
are rejected — but the cost it paid is still reachable explicitly through
``simulate_pass``, which synthesises a fresh ``FrameTrace`` from a budget
map on every call.  This benchmark pins the win of replaying the
renderer's memoised trace (corner/gap caches warm) over that
re-derivation, on the fig17 experiment path (one scene, server design).
"""

from __future__ import annotations

import time

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.experiments.workbench import EXPERIMENT_GRID, EXPERIMENT_MODEL


def _best_of(fn, rounds: int = 3) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_trace_reuse_faster_than_recompute(wb):
    scene = "palace"
    camera = wb.dataset(scene).cameras[0]
    result = wb.asdr_render(scene)
    accelerator = ASDRAccelerator(
        ArchConfig.server(),
        EXPERIMENT_GRID,
        EXPERIMENT_MODEL.density_mlp_config,
        EXPERIMENT_MODEL.color_mlp_config,
    )
    group = wb.group_size()

    def traced():
        return accelerator.simulate_render(None, result, group_size=group)

    def recomputed():
        # The explicit budget-map path re-traces rays, re-samples points
        # and re-derives corners on every call (what the seed's implicit
        # legacy path used to do inside simulate_render).
        return accelerator.simulate_pass(camera, result.sample_counts)

    # Warm both paths (numpy, model caches, trace corner memo).
    traced(), recomputed()
    t_trace = _best_of(traced)
    t_legacy = _best_of(recomputed)
    print(
        f"\nsimulate_render on {scene}: trace replay {t_trace * 1e3:.0f} ms "
        f"vs budget-map re-derivation {t_legacy * 1e3:.0f} ms "
        f"({t_legacy / t_trace:.2f}x)"
    )
    assert t_trace < t_legacy, (
        f"trace replay ({t_trace:.3f}s) should beat ray/corner re-derivation "
        f"({t_legacy:.3f}s)"
    )
    # Both paths must price the same density workload (color pricing
    # differs: the trace carries per-ray anchor counts, the budget map a
    # uniform fraction).
    assert traced().mlp.density_points == recomputed().mlp.density_points
