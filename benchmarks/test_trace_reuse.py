"""Timing: FrameTrace reuse vs the seed's render→simulate double computation.

The seed pipeline rendered a frame, then ``simulate_render`` re-derived
every ray, sample point and voxel corner from ``(camera, budgets)`` before
charging the engines — the fig17/fig18/fig19 experiment trio paid that
re-derivation once per experiment.  With the shared execution layer the
simulator replays the renderer's FrameTrace instead; this benchmark pins
the win down on the fig17 experiment path (one scene, server design).
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.experiments.workbench import EXPERIMENT_GRID, EXPERIMENT_MODEL


def _best_of(fn, rounds: int = 3) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_trace_reuse_faster_than_recompute(wb):
    scene = "palace"
    camera = wb.dataset(scene).cameras[0]
    result = wb.asdr_render(scene)
    legacy_result = replace(result, trace=None)  # force the seed path
    accelerator = ASDRAccelerator(
        ArchConfig.server(),
        EXPERIMENT_GRID,
        EXPERIMENT_MODEL.density_mlp_config,
        EXPERIMENT_MODEL.color_mlp_config,
    )
    group = wb.group_size()

    def traced():
        return accelerator.simulate_render(camera, result, group_size=group)

    def recomputed():
        return accelerator.simulate_render(camera, legacy_result, group_size=group)

    # Warm both paths (numpy, model caches, trace corner memo).
    traced(), recomputed()
    t_trace = _best_of(traced)
    t_legacy = _best_of(recomputed)
    print(
        f"\nsimulate_render on {scene}: trace replay {t_trace * 1e3:.0f} ms "
        f"vs re-derivation {t_legacy * 1e3:.0f} ms "
        f"({t_legacy / t_trace:.2f}x)"
    )
    assert t_trace < t_legacy, (
        f"trace replay ({t_trace:.3f}s) should beat ray/corner re-derivation "
        f"({t_legacy:.3f}s)"
    )
    # Both paths must price the same workload.
    assert traced().mlp.density_points == recomputed().mlp.density_points
