"""Figure 22: register-cache size sweep
(paper: an 8-item cache per table gives ~2.49x over no cache)."""

from benchmarks.conftest import run_and_report


def test_fig22_cache_size(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig22", wb, "8-item cache ~2.49x encoding speedup"
    )
    by_scene = {}
    for row in rows:
        by_scene.setdefault(row["scene"], {})[row["cache_entries"]] = row
    for scene, sizes in by_scene.items():
        # Monotone improvement with diminishing returns; the 8-entry design
        # point removes a large share of crossbar traffic.
        assert sizes[8]["encoding_speedup"] >= sizes[2]["encoding_speedup"] * 0.99
        assert sizes[8]["encoding_speedup"] > 1.02
        assert sizes[8]["access_reduction"] > 1.5
        assert sizes[8]["cache_hit_rate"] > sizes[0]["cache_hit_rate"]
