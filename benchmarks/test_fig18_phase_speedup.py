"""Figure 18: per-phase (encoding / MLP) speedups
(paper server: ENC ~3.9x, MLP ~2.8x; edge: ENC ~17.4x, MLP ~7.5x vs
baselines)."""

import numpy as np

from benchmarks.conftest import run_and_report


def test_fig18a_server_phases(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig18a", wb,
        "server: encoding ~3.9x, MLP ~2.8x over baselines",
    )
    enc = np.mean([r["enc_speedup_vs_gpu"] for r in rows])
    mlp = np.mean([r["mlp_speedup_vs_gpu"] for r in rows])
    assert enc > 1.0
    assert mlp > 1.0


def test_fig18b_edge_phases(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig18b", wb,
        "edge: encoding ~17.4x, MLP ~7.5x over baselines",
    )
    enc = np.mean([r["enc_speedup_vs_gpu"] for r in rows])
    mlp = np.mean([r["mlp_speedup_vs_gpu"] for r in rows])
    assert enc > 2.0
    assert mlp > 2.0
    # The encoding phase gains more than the MLP phase (the paper's
    # explanation: mapping/reuse optimisations target encoding).
    assert enc > mlp * 0.8
