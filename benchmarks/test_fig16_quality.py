"""Figure 16: rendering quality across ten scenes
(paper: ASDR within 0.07 dB of Instant-NGP on average; Re-NeRF -2.06 dB,
NeuRex -0.38 dB)."""

from benchmarks.conftest import run_and_report


def test_fig16_quality(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig16", wb,
        "ASDR ~lossless (-0.07 dB avg); Re-NeRF -2.06; NeuRex -0.38",
    )
    avg = rows[-1]
    assert avg["scene"] == "average"
    # ASDR stays within half a dB of Instant-NGP on average.
    assert abs(avg["asdr_delta"]) < 0.5
    # Naive reduction (Re-NeRF-like) loses clearly more than ASDR.
    assert avg["re_nerf_sw"] < avg["asdr"]
    # NeuRex's quantised encoding sits between the two.
    assert avg["neurex"] <= avg["instant_ngp"] + 0.1
