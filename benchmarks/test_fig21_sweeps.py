"""Figure 21: design-space sweeps of delta and n
(paper: delta=1/2048 gives ~6x speedup with <0.3 dB loss; n=4 saves ~2.7x
energy with <0.3 dB loss)."""

from benchmarks.conftest import run_and_report


def test_fig21a_threshold_sweep(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig21a", wb,
        "delta=1/2048: ~6x speedup, <0.3 dB PSNR loss; diminishing beyond",
    )
    by_scene = {}
    for row in rows:
        by_scene.setdefault(row["scene"], {})[row["config"]] = row
    for scene, configs in by_scene.items():
        base = configs["no adaptive sampling"]
        chosen = configs["delta=0.000488"]
        assert chosen["speedup"] > 1.2
        assert abs(chosen["psnr"] - base["psnr"]) < 0.5


def test_fig21b_group_sweep(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig21b", wb,
        "n=4 saves ~2.7x energy with <0.3 dB loss (lego/chair/mic)",
    )
    by_scene = {}
    for row in rows:
        by_scene.setdefault(row["scene"], {})[row["group_size"]] = row
    for scene, groups in by_scene.items():
        assert groups[4]["energy_saving"] > groups[2]["energy_saving"] * 0.95
        assert groups[4]["energy_saving"] > 1.05
        assert abs(groups[4]["psnr"] - groups[1]["psnr"]) < 1.0
