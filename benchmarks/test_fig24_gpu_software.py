"""Figure 24: software-only GPU speedups
(paper: AS 1.84x, AS+RA 2.75x on average across ten scenes)."""

from benchmarks.conftest import run_and_report


def test_fig24_gpu_software(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig24", wb, "avg: AS 1.84x, AS+RA 2.75x on RTX 3070"
    )
    avg = rows[-1]
    assert avg["scene"] == "average"
    assert avg["as_speedup"] > 1.1
    assert avg["as_ra_speedup"] > avg["as_speedup"]
