"""Multi-tenant serving: sharing beats back-to-back clients.

The acceptance configuration (three clients on palace over short 16x16
paths — an orbit, a hand-held shake sharing the orbit's first pose, and
an orbit twin "watching the same content") pins three claims:

* **sharing** — aggregate simulated cycles under every policy stay at or
  below the back-to-back sum (each client simulated alone), and strictly
  below it here because the mix overlaps: the twin is served from
  executed frames and the shake's keyframe pose-hits the orbit's;
* **reporting** — the serve report carries per-client latency
  percentiles, aggregate throughput and Jain fairness, and the
  deadline-aware policy is at least as fair as FIFO on this mix (it gets
  the cheap clients out from behind the expensive one);
* **responsiveness** — round-robin delivers the median frame no later
  than FIFO, which makes every client wait behind the first.
"""

from __future__ import annotations

from repro.experiments.serving import default_client_mix, serve_reports

SCENE = "palace"
CLIENTS = 3


def _reports(wb):
    requests = default_client_mix(scene=SCENE, clients=CLIENTS)
    return serve_reports(wb, requests)


def test_serving_aggregate_beats_back_to_back(wb):
    reports = _reports(wb)
    for policy, report in reports.items():
        assert report.back_to_back_cycles > 0
        assert report.busy_cycles <= report.back_to_back_cycles, (
            f"{policy}: serving ({report.busy_cycles} cycles) must not "
            f"exceed back-to-back ({report.back_to_back_cycles})"
        )
        # The default mix overlaps (twin + shared keyframe pose), so the
        # saving is strict, and cross-client replays are the mechanism.
        assert report.busy_cycles < report.back_to_back_cycles
        assert sum(c.cross_replays for c in report.clients) > 0
    fifo = reports["fifo"]
    print(
        f"\nserve({SCENE}, {CLIENTS} clients): "
        f"{fifo.busy_cycles / 1e3:.1f} kcycles aggregate vs "
        f"{fifo.back_to_back_cycles / 1e3:.1f} back-to-back "
        f"({100 * fifo.sharing_saving:.1f}% saved), "
        f"fairness fifo {fifo.fairness:.3f} / "
        f"deadline {reports['deadline'].fairness:.3f}"
    )


def test_serving_reports_latency_throughput_fairness(wb):
    reports = _reports(wb)
    for report in reports.values():
        assert len(report.clients) == CLIENTS
        for client in report.clients:
            assert client.frames == 4
            assert client.latency_percentile(50) > 0
            assert client.latency_percentile(95) >= client.latency_percentile(50)
        assert report.throughput_fps > 0
        assert 0.0 < report.fairness <= 1.0
        # Conservation: attribution covers exactly the interleaved total.
        assert report.busy_cycles == sum(
            c.service_cycles for c in report.clients
        )
    # Quality-aware scheduling should not be less fair than FIFO, which
    # serves whole clients in arrival order.
    assert reports["deadline"].fairness >= reports["fifo"].fairness
    # Fair-share interleaving delivers the median frame no later than
    # FIFO's head-of-line blocking does.
    def p50(report):
        lats = [lat for c in report.clients for lat in c.latencies_cycles]
        lats.sort()
        return lats[len(lats) // 2]

    assert p50(reports["round_robin"]) <= p50(reports["fifo"])


def test_serving_deterministic_under_fixed_arrival_order(wb):
    first = _reports(wb)
    second = _reports(wb)
    for policy in first:
        assert first[policy].to_dict() == second[policy].to_dict()
