"""Table 4: rendering quality of ASDR on TensoRF
(paper: PSNR delta 0.14 dB avg; SSIM/LPIPS deltas ~0.005)."""

from benchmarks.conftest import run_and_report


def test_table4_tensorf_quality(benchmark, wb):
    rows = run_and_report(
        benchmark, "table4", wb, "TensoRF vs ASDR: near-lossless across metrics"
    )
    avg = rows[-1]
    assert abs(avg["psnr_tensorf"] - avg["psnr_asdr"]) < 0.5
    assert abs(avg["ssim_tensorf"] - avg["ssim_asdr"]) < 0.02
    assert abs(avg["lpips_tensorf"] - avg["lpips_asdr"]) < 0.02
