"""Temporal reprojection + adaptive keyframe scheduling benchmark.

The artefact of the video-reprojection work: the same slow orbit that
``test_video_reuse.py`` prices is rendered three ways (fresh per frame,
plain plan reuse, reprojection armed), then the reprojection config is
replayed over an orbit broken by a hard camera cut under two Phase I
schedulers — a fixed even cadence and the adaptive plan/keyframe
overlap threshold.

The acceptance gates run inside
:func:`repro.experiments.video.video_bench_payload` and again in the
``video_bench/v1`` validator (:mod:`repro.obs.schemas`):

* amortised reprojected-orbit speedup over independent per-frame ASDR
  simulation at least ``VIDEO_SPEEDUP_FLOOR`` (1.5x);
* every reprojected frame's warp-guard PSNR at or above the configured
  ``min_psnr``, with no guard fallback;
* the adaptive scheduler spends strictly fewer Phase I probes than the
  fixed cadence on the cut sequence at an equal-or-better worst-frame
  PSNR.

Runs two ways:

* under pytest (with ``pytest-benchmark``) at smoke scale, as part of
  the tier-1 suite;
* as a script (numpy-only, no pytest needed) emitting the
  machine-readable ``BENCH_video.json`` (schema ``video_bench/v1``)::

      PYTHONPATH=src python benchmarks/test_video_reproject.py \
          --frames 6 --size 16 --out BENCH_video.json

The committed ``BENCH_video.json`` snapshots the full palace orbit;
CI's ``video-smoke`` job regenerates a small-config one per push and
validates it through ``tools/validate_bench.py``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional, Sequence

from repro.experiments.video import video_bench_payload
from repro.experiments.workbench import Workbench

try:  # CI's video-smoke job runs script mode on a bare numpy install
    import pytest
except ImportError:  # pragma: no cover
    pytest = None  # type: ignore[assignment]


def timed_payload(
    scene: str = "palace",
    frames: int = 6,
    size: int = 16,
    scale: str = "server",
) -> Dict[str, object]:
    """Build the ``video_bench/v1`` document with its wall-clock attached.

    The gates are asserted inside the builder; the reported time covers
    the three orbit renders plus the three cut-sequence renders (the
    workbench memoises repeated configurations internally).
    """
    wb = Workbench()
    t0 = time.perf_counter()
    payload = video_bench_payload(
        wb, scene=scene, frames=frames, size=size, scale=scale
    )
    payload["build_seconds"] = round(time.perf_counter() - t0, 4)
    return payload


if pytest is not None:

    def test_video_gates_hold_at_smoke_scale(benchmark):
        """Smoke scale: the speedup/guard/probe gates run inside the
        payload builder; the committed full-scale ``BENCH_video.json``
        carries the headline numbers."""
        payload = benchmark.pedantic(
            lambda: timed_payload(frames=4, size=8),
            rounds=1,
            iterations=1,
        )
        assert payload["schema"] == "video_bench/v1"
        assert payload["orbit"]["speedup_vs_fresh"] >= 1.5
        kf = payload["keyframes"]
        assert kf["adaptive"]["probes"] < kf["fixed"]["probes"]
        assert kf["adaptive"]["min_psnr"] >= kf["fixed"]["min_psnr"]
        # The validator must agree with the inline gates.
        from repro.obs.schemas import validate_video_bench

        assert validate_video_bench(payload) == []


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description=(
            "Temporal-reprojection video benchmark (emits video_bench/v1)"
        )
    )
    parser.add_argument("--scene", default="palace")
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--size", type=int, default=16)
    parser.add_argument("--scale", default="server")
    parser.add_argument("--out", default="BENCH_video.json")
    args = parser.parse_args(argv)

    payload = timed_payload(
        scene=args.scene, frames=args.frames, size=args.size, scale=args.scale
    )
    orbit = payload["orbit"]
    print(
        f"orbit       : {orbit['speedup_vs_fresh']}x vs fresh "
        f"({orbit['reproject_cycles']} vs {orbit['fresh_cycles']} cycles), "
        f"{orbit['speedup_vs_plain']}x vs plain plan reuse"
    )
    for run in ("fixed", "adaptive"):
        entry = payload["keyframes"][run]
        print(
            f"{run:12s}: {entry['probes']} Phase I probes, "
            f"min PSNR {entry['min_psnr']:.2f} dB, "
            f"mean {entry['mean_psnr']:.2f} dB"
        )
    print(
        f"cut at frame {payload['keyframes']['cut_frame']}; built in "
        f"{payload['build_seconds']}s"
    )
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
