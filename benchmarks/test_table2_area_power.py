"""Table 2: area/power budget of the ASDR design points
(paper: server 15.09 mm^2 / 5.77 W, edge 3.77 mm^2 / 1.44 W)."""

import pytest

from benchmarks.conftest import run_and_report


def test_table2_area_power(benchmark, wb):
    rows = run_and_report(
        benchmark, "table2", wb,
        "totals: 15.09 mm2 / 5.77 W (server), 3.77 mm2 / 1.44 W (edge)",
    )
    total = rows[-1]
    assert total["server_area_mm2"] == pytest.approx(15.09, rel=0.02)
    assert total["server_power_mw"] == pytest.approx(5770.0, rel=0.02)
    assert total["edge_area_mm2"] == pytest.approx(3.77, rel=0.02)
    assert total["edge_power_mw"] == pytest.approx(1440.0, rel=0.02)
