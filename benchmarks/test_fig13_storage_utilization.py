"""Figure 13: storage utilisation, all-hash vs hybrid mapping
(paper: 62.20% -> 85.95% average over 16 levels)."""

from benchmarks.conftest import run_and_report


def test_fig13_storage_utilization(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig13", wb, "average utilisation 62.20% -> 85.95%"
    )
    avg = rows[-1]
    assert avg["level"] == "avg"
    assert 45.0 < avg["original_pct"] < 75.0
    assert avg["hybrid_pct"] > 78.0
    assert avg["hybrid_pct"] - avg["original_pct"] > 15.0
