"""Figure 19: energy efficiency vs GPUs and NeuRex
(paper: server ASDR 36.06x / NeuRex 12.70x over RTX 3070;
edge ASDR 82.39x / NeuRex 14.56x over Xavier NX).

Our honest busy-time energy model gives ASDR a larger margin than the
paper reports (see EXPERIMENTS.md); the checked property is the ordering
ASDR > NeuRex > GPU."""

from benchmarks.conftest import run_and_report


def test_fig19a_server_energy(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig19a", wb,
        "server avg: NeuRex 12.70x, ASDR 36.06x over RTX 3070",
    )
    avg = rows[-1]
    assert avg["asdr_efficiency"] > avg["neurex_efficiency"] > 1.0


def test_fig19b_edge_energy(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig19b", wb,
        "edge avg: NeuRex 14.56x, ASDR 82.39x over Xavier NX",
    )
    avg = rows[-1]
    assert avg["asdr_efficiency"] > avg["neurex_efficiency"] > 1.0
