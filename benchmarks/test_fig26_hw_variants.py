"""Figures 26-27: hardware-configuration variants
(paper server speedups: SA 8.90x, SRAM 9.53x, ReRAM 11.84x; energy
efficiency ordered the same way)."""

from benchmarks.conftest import run_and_report


def _check_ordering(rows):
    avg = rows[-1]
    assert avg["ASDR (SA)"] <= avg["ASDR (SRAM)"] * 1.02
    assert avg["ASDR (SRAM)"] <= avg["ASDR (ReRAM)"] * 1.02
    assert avg["ASDR (ReRAM)"] > 1.0


def test_fig26a_server_variants(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig26a", wb, "server: SA 8.90x < SRAM 9.53x < ReRAM 11.84x"
    )
    _check_ordering(rows)


def test_fig26b_edge_variants(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig26b", wb, "edge: SA 37.29x < SRAM 39.91x < ReRAM 49.61x"
    )
    _check_ordering(rows)


def test_fig27a_server_energy_variants(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig27a", wb,
        "server energy: SA 18.22x < SRAM 27.45x < ReRAM 36.06x",
    )
    _check_ordering(rows)


def test_fig27b_edge_energy_variants(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig27b", wb,
        "edge energy: SA 41.63x < SRAM 62.70x < ReRAM 82.39x",
    )
    _check_ordering(rows)
