"""Figure 23: early termination composes with adaptive sampling
(paper: ET 3.67x, AS 4.40x, ET+AS 11.07x over the strawman)."""

from benchmarks.conftest import run_and_report


def test_fig23_early_termination(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig23", wb,
        "avg: ET 3.67x, AS 4.40x, ET+AS 11.07x over no-opt",
    )
    avg = rows[-1]
    assert avg["scene"] == "average"
    assert avg["et_speedup"] > 1.0
    assert avg["as_speedup"] > 1.0
    # Combination beats each individual technique (orthogonality claim).
    assert avg["et_as_speedup"] > avg["et_speedup"]
    assert avg["et_as_speedup"] > avg["as_speedup"]
