"""Figure 20: contribution analysis
(paper, vs Xavier NX: strawman 2.49x, SW-only 12.86x, HW-only 10.60x,
full ASDR 44.31x on family)."""

from benchmarks.conftest import run_and_report


def test_fig20_ablation(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig20", wb,
        "strawman 2.49x < SW 12.86x, HW 10.60x < ASDR 44.31x (family)",
    )
    for row in rows:
        # Both single-sided optimisations beat the strawman ...
        assert row["sw_only"] > row["strawman"]
        assert row["hw_only"] > row["strawman"]
        # ... and the combination beats either alone.
        assert row["asdr"] > row["sw_only"]
        assert row["asdr"] > row["hw_only"]
