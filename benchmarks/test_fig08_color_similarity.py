"""Figure 8: adjacent sample colors along rays are highly similar
(paper: 95% of cosine similarities >= 0.996 across mic/lego/palace)."""

from benchmarks.conftest import run_and_report


def test_fig8_color_similarity(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig8", wb,
        "95% of adjacent-point cosine similarities ~1 in mic/lego/palace",
    )
    for row in rows:
        assert row["p5_similarity"] > 0.9
        assert row["frac_above_0.99"] > 0.7
