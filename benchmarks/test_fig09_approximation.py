"""Figure 9: color/density decoupling beats naive sample reduction
(paper: ours 35.03 dB @54% FLOPs vs naive 33.32 dB @50% FLOPs)."""

from benchmarks.conftest import run_and_report


def test_fig9_approximation(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig9", wb,
        "approximation ~= original PSNR, ~1.7 dB above naive half sampling",
    )
    original, naive, ours = rows
    assert ours["psnr"] >= naive["psnr"] - 0.1
    assert ours["flops_pct"] < 80.0
    assert abs(ours["psnr"] - original["psnr"]) < 0.5
