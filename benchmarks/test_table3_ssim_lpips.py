"""Table 3: SSIM / LPIPS of ASDR vs Instant-NGP
(paper: average deltas ~0.002 in both metrics)."""

from benchmarks.conftest import run_and_report


def test_table3_ssim_lpips(benchmark, wb):
    rows = run_and_report(
        benchmark, "table3", wb, "SSIM/LPIPS deltas ~0.002 on average"
    )
    avg = rows[-1]
    assert abs(avg["ssim_instant_ngp"] - avg["ssim_asdr"]) < 0.02
    assert abs(avg["lpips_instant_ngp"] - avg["lpips_asdr"]) < 0.02
