"""Figure 7: adaptive sampling achieves near-original quality with far
fewer sample points (paper: 192 -> ~120 average, PSNR 36.37 -> 36.29)."""

from benchmarks.conftest import run_and_report


def test_fig7_adaptive_sampling(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig7", wb,
        "192 -> ~120 points/pixel at ~0.1 dB loss (lego)",
    )
    fixed, adaptive = rows[0], rows[1]
    assert adaptive["avg_points_per_pixel"] < 0.8 * fixed["avg_points_per_pixel"]
    assert abs(adaptive["psnr"] - fixed["psnr"]) < 0.5
