"""Figure 25: ASDR on TensoRF
(paper: GPU software 1.27x, ASDR architecture ~29.98x over RTX 3070)."""

from benchmarks.conftest import run_and_report


def test_fig25_tensorf(benchmark, wb):
    rows = run_and_report(
        benchmark, "fig25", wb,
        "TensoRF: sw 1.27x, architecture 29.98x over RTX 3070",
    )
    avg = rows[-1]
    assert avg["gpu_sw_speedup"] > 1.0
    assert avg["architecture_speedup"] > avg["gpu_sw_speedup"]
    assert avg["architecture_speedup"] > 3.0
