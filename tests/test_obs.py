"""Observability layer: neutrality, schemas, exporters, tools.

The headline invariant is **zero perturbation**: serving with a live
recorder produces bit-identical reports to serving with the default
no-op recorder — across scalar and batched engines, frame-atomic and
preemptive policies, single servers and clusters.  It is pinned here
the same way stepped-vs-monolithic execution is pinned in
``tests/test_execution.py``: full ``to_dict()`` equality.

The ``obs_events/v1`` record shape and the Chrome trace-event structure
are pinned against ``tests/golden/obs_schema.json`` — field *names*
per event kind, not cycle values, so pricing changes do not churn the
golden while schema drift still fails loudly.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.arch.accelerator import ASDRAccelerator
from repro.arch.config import ArchConfig
from repro.errors import ConfigurationError
from repro.exec.execution import scalar_engine
from repro.obs import (
    EVENT_KINDS,
    Event,
    MemoryRecorder,
    MetricsRegistry,
    NullRecorder,
    ScopedRecorder,
    chrome_trace,
    read_events_jsonl,
    render_dashboard,
    render_timeline,
    split_runs,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.events import (
    EV_MIGRATION,
    EV_QUANTUM,
    EV_ROUTE,
    EV_SCALE_OUT,
    EV_SCHED,
    EV_SERVE_START,
)
from repro.obs.schemas import (
    validate_cluster_bench,
    validate_engine_bench,
    validate_file,
    validate_obs_events,
    validate_serving_bench,
    validate_slo_bench,
    validate_trace_events,
    validate_video_bench,
)
from repro.serving.cluster import ClusterServer, Migration
from repro.serving.policies import make_policy
from repro.serving.profiler import ServeProfile, profile_serve
from repro.serving.report import bench_table_rows
from repro.serving.server import SequenceServer
from repro.serving.slo import AUTO_QUANTUM, AdmissionError, SLOConfig
from repro.scenes.cameras import camera_path
from tests.conftest import TEST_GRID, TEST_MODEL_CONFIG
from tests.test_serving import (
    _distinct_paths,
    _request,
    synthetic_sequence,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN = REPO_ROOT / "tests" / "golden" / "obs_schema.json"

SIZE = 8
FRAMES = 4


@pytest.fixture(scope="module")
def accelerator():
    return ASDRAccelerator(
        ArchConfig.server(),
        TEST_GRID,
        TEST_MODEL_CONFIG.density_mlp_config,
        TEST_MODEL_CONFIG.color_mlp_config,
    )


def _mixed_requests():
    """Twins + a departing client + a distinct orbit: every serving
    event kind short of the cluster ones fires under preemption."""
    twin_path = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.3)
    other = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.6)
    quitter = camera_path("orbit", FRAMES, SIZE, SIZE, arc=0.9)
    return [
        _request("orig", twin_path),
        _request("twin", twin_path),
        _request("other", other),
        _request("quit", quitter, departure_cycle=40),
    ]


def _server(accelerator, requests, recorder=None, varied=True):
    server = SequenceServer(accelerator, recorder=recorder)
    for request in requests:
        server.submit(
            request, synthetic_sequence(request.path, varied=varied)
        )
    return server


def _serve_events(accelerator, policy="round_robin_preemptive"):
    rec = MemoryRecorder()
    _server(accelerator, _mixed_requests(), recorder=rec).serve(policy)
    return rec.events


def _abort_events(accelerator):
    """A departure timed to land mid-frame under a 1-step quantum, so the
    in-flight ``frame_abort`` path fires (same setup as
    ``test_departure_abandons_in_flight_execution``)."""
    paths = _distinct_paths(2)
    quit_seq = synthetic_sequence(paths[1], varied=True)
    first_cycles = (
        SequenceServer(accelerator)
        .accelerator.simulate_sequence_frame(quit_seq, 0)
        .total_cycles
    )
    rec = MemoryRecorder()
    server = SequenceServer(accelerator, shared_content=False, recorder=rec)
    server.submit(
        _request("stay", paths[0]),
        synthetic_sequence(paths[0], varied=True),
    )
    server.submit(
        _request(
            "quit", paths[1], departure_cycle=max(2, first_cycles // 4)
        ),
        quit_seq,
    )
    server.serve(make_policy("round_robin_preemptive", quantum=1))
    return rec.events


def _reproject_masks(clients=("urgent",), frames=(1,)):
    """Boolean skip masks (every other ray converged) keyed like
    :attr:`SLOConfig.reproject_masks` for the module's SIZE."""
    mask = np.zeros(SIZE * SIZE, dtype=bool)
    mask[::2] = True
    return {(c, k): mask for c in clients for k in frames}


def _slo_events(accelerator):
    """Overload-control scenario: an interactive tenant with an
    impossible cadence plus batch ballast under an armed
    :class:`SLOConfig` — admission reject, batch shedding, degraded
    serving, temporal reprojection (one armed frame) and auto-quantum
    tuning all fire."""
    paths = _distinct_paths(4)
    sequences = {p: synthetic_sequence(p, varied=True) for p in paths}
    scratch = SequenceServer(accelerator)
    admitted = [
        _request(
            "urgent",
            paths[0],
            frame_interval_cycles=50,
            slo_class="interactive",
        ),
        _request("bulk0", paths[1], slo_class="batch"),
        _request("bulk1", paths[2], slo_class="batch"),
    ]
    for request in admitted:
        scratch.submit(request, sequences[request.path])
    cap = int(scratch.projected_backlog_cycles()) + 1
    rec = MemoryRecorder()
    server = SequenceServer(
        accelerator,
        slo=SLOConfig(
            admit_cycles=cap,
            shed=True,
            degrade=True,
            degrade_fraction=0.5,
            reproject_masks=_reproject_masks(),
            reproject_psnr={("urgent", 1): 35.0},
        ),
        recorder=rec,
    )
    for request in admitted:
        server.submit(request, sequences[request.path])
    with pytest.raises(AdmissionError):
        server.submit(
            _request("over", paths[3], slo_class="batch"),
            sequences[paths[3]],
        )
    server.serve(make_policy("deadline_preemptive", quantum=AUTO_QUANTUM))
    return rec.events


def _cluster_events(accelerator):
    """A two-shard fleet with a spare, a scale-out and a migration."""
    rec = MemoryRecorder()
    cluster = ClusterServer(
        [accelerator, accelerator],
        router="affinity",
        spare_accelerators=[accelerator],
        scale_out_threshold=1,
        recorder=rec,
    )
    for request in _mixed_requests()[:3]:
        cluster.submit(
            request, synthetic_sequence(request.path, varied=True)
        )
    home = cluster.placement_of("other")
    away = next(n for n in cluster.shard_names if n != home)
    cluster.serve(
        "round_robin_preemptive",
        migrations=[
            Migration(client_id="other", after_frame=2, to_shard=away)
        ],
    )
    return rec.events


# ----------------------------------------------------------------------
# The headline invariant: telemetry never changes a report
# ----------------------------------------------------------------------
class TestNeutrality:
    @pytest.mark.parametrize("policy", ["fifo", "round_robin",
                                        "round_robin_preemptive",
                                        "deadline_preemptive"])
    def test_serve_reports_bit_identical(self, accelerator, policy):
        requests = _mixed_requests()
        off = _server(accelerator, requests).serve(policy)
        rec = MemoryRecorder(metrics=MetricsRegistry())
        on = _server(accelerator, requests, recorder=rec).serve(policy)
        assert on.to_dict() == off.to_dict()
        assert rec.events, "an enabled recorder must actually record"

    def test_null_recorder_equals_no_recorder(self, accelerator):
        requests = _mixed_requests()
        off = _server(accelerator, requests).serve("round_robin")
        null = SequenceServer(accelerator, recorder=NullRecorder())
        for request in requests:
            null.submit(request, synthetic_sequence(request.path, varied=True))
        assert null.serve("round_robin").to_dict() == off.to_dict()

    def test_scalar_engine_bit_identical(self, accelerator):
        requests = _mixed_requests()
        with scalar_engine():
            off = _server(accelerator, requests).serve(
                "round_robin_preemptive"
            )
            on = _server(
                accelerator, requests, recorder=MemoryRecorder()
            ).serve("round_robin_preemptive")
        assert on.to_dict() == off.to_dict()

    def test_cluster_reports_bit_identical(self, accelerator):
        def run(recorder):
            cluster = ClusterServer(
                [accelerator, accelerator],
                router="affinity",
                recorder=recorder,
            )
            for request in _mixed_requests():
                cluster.submit(
                    request, synthetic_sequence(request.path, varied=True)
                )
            return cluster.serve("round_robin_preemptive").to_dict()

        assert run(MemoryRecorder()) == run(None)

    def test_recorder_sees_exec_and_serving_domains(self, accelerator):
        kinds = {e.kind for e in _serve_events(accelerator)}
        assert "quantum" in kinds and "serve_start" in kinds
        assert "exec_batch" in kinds or "exec_step" in kinds

    def test_reprojected_serve_bit_identical(self, accelerator):
        """Temporal-reprojection degrade keeps the neutrality contract:
        recorder on/off reports match bit-for-bit and the reprojected
        frames actually fire."""
        paths = _distinct_paths(3)
        requests = [
            _request(
                "urgent",
                paths[0],
                frame_interval_cycles=50,
                slo_class="interactive",
            ),
            _request("bulk0", paths[1], slo_class="batch"),
            _request("bulk1", paths[2], slo_class="batch"),
        ]
        slo = SLOConfig(
            degrade=True,
            degrade_min_psnr=30.0,
            reproject_masks=_reproject_masks(
                clients=("urgent", "bulk0", "bulk1"), frames=(1, 2, 3)
            ),
            reproject_psnr={
                (c, k): 35.0
                for c in ("urgent", "bulk0", "bulk1")
                for k in (1, 2, 3)
            },
        )

        def run(recorder):
            server = SequenceServer(accelerator, slo=slo, recorder=recorder)
            for request in requests:
                server.submit(
                    request, synthetic_sequence(request.path, varied=True)
                )
            return server.serve(
                make_policy("deadline_preemptive", quantum=2)
            )

        rec = MemoryRecorder()
        on = run(rec)
        assert any(e.kind == "reproject" for e in rec.events)
        assert any(
            d.get("mode") == "reproject"
            for c in on.clients
            for d in c.degraded
        )
        assert on.to_dict() == run(None).to_dict()
        with scalar_engine():
            assert run(None).to_dict() == on.to_dict()


# ----------------------------------------------------------------------
# Recorder contract
# ----------------------------------------------------------------------
class TestRecorder:
    def test_null_recorder_is_disabled_noop(self):
        rec = NullRecorder()
        assert rec.enabled is False
        rec.emit("quantum", 1, cycles=2)  # must not raise, must not store

    def test_memory_recorder_records_and_folds_metrics(self):
        metrics = MetricsRegistry()
        rec = MemoryRecorder(metrics=metrics)
        rec.emit(EV_QUANTUM, 10, client="a", frame=0, cycles=120)
        rec.emit(EV_QUANTUM, 130, client="a", frame=0, cycles=80)
        assert len(rec) == 2
        assert rec.events[0].clock == 10
        hist = metrics.histogram("quantum_cycles", shard="")
        assert hist.count == 2
        rec.clear()
        assert len(rec) == 0

    def test_scoped_recorder_merges_labels(self):
        base = MemoryRecorder()
        scoped = ScopedRecorder(base, shard="s0")
        scoped.emit(EV_QUANTUM, 5, client="a", cycles=3)
        assert base.events[0].fields["shard"] == "s0"
        assert base.events[0].fields["client"] == "a"
        # Event fields win over scope labels on collision.
        ScopedRecorder(base, client="scope").emit(EV_QUANTUM, 6, client="ev")
        assert base.events[1].fields["client"] == "ev"

    def test_scoped_recorder_inherits_disabled(self):
        assert ScopedRecorder(NullRecorder(), shard="x").enabled is False


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        m = MetricsRegistry()
        m.counter("frames", client="a").inc()
        m.counter("frames", client="a").inc(2)
        assert m.counter("frames", client="a").value == 3
        g = m.gauge("depth")
        g.set(5)
        g.set(2)
        assert (g.value, g.min_seen, g.max_seen) == (2, 2, 5)
        h = m.histogram("lat", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]
        assert h.mean == pytest.approx(185.0)

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("x").inc(-1)

    def test_from_events_and_to_dict(self, accelerator):
        m = MetricsRegistry.from_events(_serve_events(accelerator))
        d = m.to_dict()
        assert set(d) == {"counters", "gauges", "histograms"}
        totals = [
            row for row in d["counters"] if row["name"] == "obs_events_total"
        ]
        assert totals and all(r["value"] > 0 for r in totals)


# ----------------------------------------------------------------------
# Exporters and the golden schema
# ----------------------------------------------------------------------
class TestExport:
    def test_jsonl_round_trip(self, accelerator, tmp_path):
        events = _serve_events(accelerator)
        path = tmp_path / "events.jsonl"
        write_events_jsonl(path, events, clock_hz=1e9, meta={"run": "t"})
        header, loaded = read_events_jsonl(path)
        assert header["clock_hz"] == 1e9
        assert header["meta"] == {"run": "t"}
        assert loaded == events
        assert validate_file(path) == []

    def test_read_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "nope/v1"}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError):
            read_events_jsonl(bad)

    def test_chrome_trace_valid_and_deterministic(self, accelerator, tmp_path):
        events = _serve_events(accelerator)
        trace = chrome_trace(events, clock_hz=1e9)
        assert validate_trace_events(trace) == []
        assert trace == chrome_trace(events, clock_hz=1e9)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, events, clock_hz=1e9)
        assert validate_file(path) == []

    def test_golden_event_and_trace_schema(self, accelerator):
        """Field names per event kind and trace-event key structure are
        pinned — values are free to change with pricing, shapes are not."""
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        batched = _serve_events(accelerator)
        with scalar_engine():
            scalar = _serve_events(accelerator)
        cluster = _cluster_events(accelerator)
        aborts = _abort_events(accelerator)
        slo = _slo_events(accelerator)
        seen = {}
        for ev in batched + scalar + cluster + aborts + slo:
            fields = {k for k in ev.fields if k != "shard"}
            seen.setdefault(ev.kind, set()).update(fields)
        assert set(seen) == set(EVENT_KINDS), (
            "reference runs must exercise every event kind; missing: "
            f"{sorted(set(EVENT_KINDS) - set(seen))}"
        )
        assert {k: sorted(v) for k, v in seen.items()} == golden["events"]
        trace = chrome_trace(batched + cluster)
        shapes = {}
        for tev in trace["traceEvents"]:
            shapes.setdefault(tev["ph"], set()).update(tev.keys())
        assert {ph: sorted(keys) for ph, keys in shapes.items()} == (
            golden["trace"]
        )


# ----------------------------------------------------------------------
# Timeline dashboard
# ----------------------------------------------------------------------
class TestTimeline:
    def test_split_runs_per_policy(self, accelerator):
        rec = MemoryRecorder()
        server = _server(accelerator, _mixed_requests(), recorder=rec)
        server.serve("round_robin")
        server.serve("round_robin_preemptive")
        runs = split_runs(rec.events)
        assert len(runs) == 2
        assert all(
            any(e.kind == EV_SERVE_START for e in run) for run in runs
        )

    def test_render_contains_lanes_and_engines(self, accelerator):
        events = _serve_events(accelerator)
        out = render_timeline(events, width=40)
        assert "policy=round_robin_preemptive" in out
        for client in ("orig", "twin", "other"):
            assert f"server/{client}" in out
        assert "queue depth" in out and "engines:" in out
        assert render_timeline(events, width=40) == out  # deterministic

    def test_render_dashboard_stacks_runs(self, accelerator):
        rec = MemoryRecorder()
        server = _server(accelerator, _mixed_requests(), recorder=rec)
        server.serve("fifo")
        server.serve("round_robin")
        out = render_dashboard(rec.events, width=40)
        assert out.count("timeline policy=") == 2

    def test_empty_run_renders_placeholder(self):
        out = render_timeline([Event(EV_SCHED, 0, {"ready": 1})])
        assert "no executable events" in out


# ----------------------------------------------------------------------
# Schema validators (shared with tools/validate_bench.py and run-all)
# ----------------------------------------------------------------------
class TestSchemas:
    def test_serving_bench_checks(self):
        ok = {
            "schema": "serving_bench/v1",
            "policies": {
                "round_robin_preemptive": {
                    k: 1
                    for k in (
                        "p50_ms", "p95_ms", "throughput_fps", "fairness",
                        "context_switches", "busy_cycles",
                        "back_to_back_cycles",
                    )
                }
            },
        }
        assert validate_serving_bench(ok) == []
        assert validate_serving_bench({"schema": "nope"}) != []
        missing = json.loads(json.dumps(ok))
        del missing["policies"]["round_robin_preemptive"]["fairness"]
        assert any("fairness" in p for p in validate_serving_bench(missing))
        atomic_only = json.loads(json.dumps(ok))
        atomic_only["policies"] = {
            "fifo": atomic_only["policies"]["round_robin_preemptive"]
        }
        assert validate_serving_bench(atomic_only) != []

    def test_engine_bench_checks(self):
        ok = {
            "schema": "engine_bench/v1",
            "serve": {
                "identical_rows": True,
                "scalar_seconds": 1,
                "batched_seconds": 1,
                "speedup": 1,
            },
            "frame_micro": {"identical_reports": True},
        }
        assert validate_engine_bench(ok) == []
        diverged = json.loads(json.dumps(ok))
        diverged["serve"]["identical_rows"] = False
        assert any(
            "identical_rows" in p for p in validate_engine_bench(diverged)
        )

    def test_cluster_bench_checks(self):
        router = {
            k: 1
            for k in (
                "router", "policy", "shards", "total_busy_cycles",
                "total_frames", "fairness", "p50_ms", "p95_ms",
                "migrations", "utilisation",
            )
        }
        ok = {
            "schema": "cluster_bench/v1",
            "single_shard_identical": True,
            "routers": {"affinity": dict(router), "random": dict(router)},
            "affinity_over_random_cycles": 1.0,
        }
        assert validate_cluster_bench(ok) == []
        worse = json.loads(json.dumps(ok))
        worse["routers"]["affinity"]["total_busy_cycles"] = 2
        assert any("more fleet cycles" in p
                   for p in validate_cluster_bench(worse))
        broken = json.loads(json.dumps(ok))
        broken["single_shard_identical"] = False
        assert validate_cluster_bench(broken) != []

    def test_slo_bench_checks(self):
        def run(interactive, busy, shed, degraded):
            return {
                "policy": "deadline_preemptive",
                "slo_attainment": {"batch": 0.0, "interactive": interactive},
                "busy_cycles": busy,
                "total_frames": 12,
                "shed_frames": shed,
                "degraded_frames": degraded,
            }

        ok = {
            "schema": "slo_bench/v1",
            "baseline": run(0.25, 1000, 0, 0),
            "slo": {
                **run(1.0, 800, 4, 1),
                "degraded": [
                    {"client": "a", "frame": 2, "fraction": 0.5, "psnr": 31.0}
                ],
            },
            "admission_rejects": 1,
            "degrade_min_psnr": 25.0,
        }
        assert validate_slo_bench(ok) == []
        assert validate_slo_bench({"schema": "nope"}) != []

        calm = json.loads(json.dumps(ok))
        calm["baseline"]["slo_attainment"]["interactive"] = 0.9
        assert any("not an overload" in p for p in validate_slo_bench(calm))

        low = json.loads(json.dumps(ok))
        low["slo"]["slo_attainment"]["interactive"] = 0.8
        assert any("floor" in p for p in validate_slo_bench(low))

        pricey = json.loads(json.dumps(ok))
        pricey["slo"]["busy_cycles"] = 2000
        assert any("fleet cycles" in p for p in validate_slo_bench(pricey))

        idle = json.loads(json.dumps(ok))
        idle["slo"]["shed_frames"] = 0
        idle["admission_rejects"] = 0
        problems = validate_slo_bench(idle)
        assert any("shed" in p for p in problems)
        assert any("admission" in p for p in problems)

        blurry = json.loads(json.dumps(ok))
        blurry["slo"]["degraded"][0]["psnr"] = 10.0
        assert any("guard" in p for p in validate_slo_bench(blurry))

        unguarded = json.loads(json.dumps(ok))
        del unguarded["degrade_min_psnr"]
        assert any(
            "degrade_min_psnr" in p for p in validate_slo_bench(unguarded)
        )

    def test_video_bench_checks(self):
        ok = {
            "schema": "video_bench/v1",
            "psnr_guard": 24.0,
            "orbit": {
                "fresh_cycles": 1000,
                "reproject_cycles": 400,
                "speedup_vs_fresh": 2.5,
                "frames": [
                    {"frame": 0, "reprojected": 0},
                    {
                        "frame": 1,
                        "reprojected": 200,
                        "guard_psnr": 40.0,
                        "fallback": False,
                    },
                ],
            },
            "keyframes": {
                "fixed": {"probes": 7, "min_psnr": 29.0, "mean_psnr": 60.0},
                "adaptive": {
                    "probes": 4, "min_psnr": 29.0, "mean_psnr": 55.0,
                },
            },
        }
        assert validate_video_bench(ok) == []
        assert validate_video_bench({"schema": "nope"}) != []
        assert any(
            "keyframes" in p
            for p in validate_video_bench(
                {"schema": "video_bench/v1", "psnr_guard": 24.0, "orbit": {}}
            )
        )

        slow = json.loads(json.dumps(ok))
        slow["orbit"]["speedup_vs_fresh"] = 1.2
        assert any("floor" in p for p in validate_video_bench(slow))

        idle = json.loads(json.dumps(ok))
        idle["orbit"]["frames"][1]["reprojected"] = 0
        assert any(
            "no frame reprojected" in p for p in validate_video_bench(idle)
        )

        blurry = json.loads(json.dumps(ok))
        blurry["orbit"]["frames"][1]["guard_psnr"] = 20.0
        assert any("guard" in p for p in validate_video_bench(blurry))

        bailed = json.loads(json.dumps(ok))
        bailed["orbit"]["frames"][1]["fallback"] = True
        assert any("fell back" in p for p in validate_video_bench(bailed))

        clocked = json.loads(json.dumps(ok))
        clocked["keyframes"]["adaptive"]["probes"] = 7
        assert any(
            "not fewer" in p for p in validate_video_bench(clocked)
        )

        lossy = json.loads(json.dumps(ok))
        lossy["keyframes"]["adaptive"]["min_psnr"] = 20.0
        assert any("below fixed" in p for p in validate_video_bench(lossy))

    def test_obs_events_checks(self):
        header = {"schema": "obs_events/v1", "clock_hz": 1e9, "meta": {}}
        good = [{"kind": "quantum", "clock": 3, "fields": {}}]
        assert validate_obs_events(header, good) == []
        assert validate_obs_events({"schema": "x"}, good) != []
        assert validate_obs_events(
            header, [{"kind": "martian", "clock": 1, "fields": {}}]
        ) != []
        assert validate_obs_events(
            header, [{"kind": "quantum", "clock": -1, "fields": {}}]
        ) != []

    def test_bench_table_rows_partial_payloads(self):
        rows = bench_table_rows(
            {
                "engine": {
                    "serve": {"speedup": 10.5, "identical_rows": True},
                    "frame_micro": {"speedup": 2.0,
                                    "identical_reports": True},
                }
            }
        )
        assert len(rows) == 2
        assert rows[0]["value"] == "10.5x"
        assert bench_table_rows({}) == []


# ----------------------------------------------------------------------
# Profiler JSON (repro serve --profile-json)
# ----------------------------------------------------------------------
class TestProfileJson:
    def test_to_dict_round_trips(self):
        _, profile = profile_serve(lambda: sum(range(2000)))
        data = json.loads(json.dumps(profile.to_dict()))
        assert data["schema"] == "serve_profile/v1"
        rebuilt = ServeProfile.from_dict(data)
        assert rebuilt.to_dict() == profile.to_dict()
        assert rebuilt.format_report() == profile.format_report()

    def test_cli_exposes_profile_json_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--profile-json", "p.json"]
        )
        assert args.profile_json == "p.json"
        args = build_parser().parse_args(["timeline", "ev.jsonl"])
        assert args.events == "ev.jsonl"
        args = build_parser().parse_args(["bench", "run-all", "--smoke"])
        assert args.smoke is True


# ----------------------------------------------------------------------
# The tools (negative-tested like tools/check_docs.py)
# ----------------------------------------------------------------------
def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestValidateBenchTool:
    def test_passes_valid_artifacts(self, accelerator, tmp_path, capsys):
        tool = _load_tool("validate_bench")
        events = _serve_events(accelerator)
        jsonl = tmp_path / "events.jsonl"
        write_events_jsonl(jsonl, events, clock_hz=1e9)
        trace = tmp_path / "trace.json"
        write_chrome_trace(trace, events)
        assert tool.main([str(jsonl), str(trace)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_catches_planted_breakage(self, tmp_path, capsys):
        tool = _load_tool("validate_bench")
        bad = tmp_path / "BENCH_serving.json"
        bad.write_text(
            json.dumps({"schema": "serving_bench/v1", "policies": {
                "fifo": {"p50_ms": 1}
            }}),
            encoding="utf-8",
        )
        missing = tmp_path / "gone.json"
        assert tool.main([str(bad), str(missing)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out and "does not exist" in out


class TestBenchHistoryTool:
    def test_walks_committed_revisions(self, capsys):
        tool = _load_tool("bench_history")
        assert tool.main(["--root", str(REPO_ROOT), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == set(tool.BENCH_FILES)

    def test_fails_outside_git(self, tmp_path, capsys):
        tool = _load_tool("bench_history")
        assert tool.main(["--root", str(tmp_path)]) == 1


# ----------------------------------------------------------------------
# Cluster event coverage
# ----------------------------------------------------------------------
class TestClusterEvents:
    def test_route_scale_out_and_migration_events(self, accelerator):
        events = _cluster_events(accelerator)
        kinds = {e.kind for e in events}
        assert {EV_ROUTE, EV_SCALE_OUT, EV_MIGRATION} <= kinds
        shards = {
            e.fields["shard"] for e in events if "shard" in e.fields
        }
        assert len(shards) >= 2, "per-shard scoping must tag events"
