"""Property-based trace invariants (extends tests/test_frame_trace.py).

Kept in a sibling module so the core trace tests run without the optional
``hypothesis`` dependency — this whole file self-skips when it is absent
(CI installs it; a bare numpy+pytest checkout still collects cleanly).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

import numpy as np  # noqa: E402
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.arch.accelerator import ASDRAccelerator  # noqa: E402
from repro.arch.config import ArchConfig  # noqa: E402
from repro.core.config import (  # noqa: E402
    ASDRConfig,
    AdaptiveSamplingConfig,
    ApproximationConfig,
)
from repro.core.pipeline import ASDRRenderer  # noqa: E402
from repro.exec.frame_trace import PHASE_PROBE  # noqa: E402
from repro.nerf.hashgrid import HashGridConfig  # noqa: E402
from repro.nerf.model import InstantNGPConfig, InstantNGPModel  # noqa: E402
from repro.scenes.cameras import Camera, look_at_pose  # noqa: E402


class TestTraceInvariants:
    """Property-based invariants: every trace a renderer emits, for any
    algorithm configuration and viewpoint, satisfies the structural
    contract the simulator relies on."""

    GRID = HashGridConfig(
        num_levels=3, table_size=2**9, base_resolution=4, max_resolution=16
    )
    MODEL_CONFIG = InstantNGPConfig(
        grid=GRID,
        geo_feature_dim=7,
        density_hidden_dim=16,
        density_num_hidden=1,
        color_hidden_dim=16,
        color_num_hidden=1,
    )
    _model = None
    _acc = None

    @classmethod
    def model(cls):
        if cls._model is None:
            cls._model = InstantNGPModel(cls.MODEL_CONFIG, seed=5)
        return cls._model

    @classmethod
    def accelerator(cls):
        if cls._acc is None:
            cls._acc = ASDRAccelerator(
                ArchConfig.server(),
                cls.GRID,
                cls.MODEL_CONFIG.density_mlp_config,
                cls.MODEL_CONFIG.color_mlp_config,
            )
        return cls._acc

    @staticmethod
    @st.composite
    def render_cases(draw):
        size = draw(st.integers(min_value=6, max_value=12))
        num_samples = draw(st.integers(min_value=4, max_value=12))
        adaptive = draw(
            st.one_of(
                st.none(),
                st.builds(
                    AdaptiveSamplingConfig,
                    probe_stride=st.integers(min_value=2, max_value=5),
                    threshold=st.sampled_from([0.0, 1 / 2048, 1 / 256]),
                ),
            )
        )
        group = draw(st.sampled_from([1, 2, 4]))
        et = draw(st.sampled_from([None, 0.9, 0.99]))
        angle = draw(st.floats(min_value=0.0, max_value=1.0,
                               allow_nan=False))
        config = ASDRConfig(
            adaptive=adaptive,
            approximation=ApproximationConfig(group) if group > 1 else None,
            early_termination=et,
        )
        eye = np.array([0.5 + 1.4 * np.cos(2 * np.pi * angle), 0.85,
                        0.5 + 1.4 * np.sin(2 * np.pi * angle)])
        camera = Camera(size, size, 1.2 * size, look_at_pose(eye))
        return camera, config, num_samples

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(case=render_cases())
    def test_emitted_trace_satisfies_contract(self, case):
        camera, config, num_samples = case
        result = ASDRRenderer(
            self.model(), config=config, num_samples=num_samples
        ).render_image(camera)
        trace = result.trace
        n_pixels = camera.width * camera.height
        assert trace.num_pixels == n_pixels

        probe_ids, main_ids = [], []
        for wf in trace.wavefronts:
            # used_counts <= budgets, color never exceeds density, misses
            # march nothing, and points hold exactly the active prefixes.
            assert np.all(wf.used <= wf.budget)
            assert np.all(wf.used >= 0)
            assert np.all(wf.color_used <= wf.used)
            assert np.all(wf.used[~wf.hit] == 0)
            assert wf.points.shape == (int(wf.used.sum()), 3)
            (probe_ids if wf.phase == PHASE_PROBE else main_ids).append(
                wf.ray_ids
            )

        # Wavefront ray ids partition the frame's rays: main wavefronts
        # cover every non-probe pixel exactly once, probes the rest.
        main = (np.concatenate(main_ids) if main_ids
                else np.empty(0, dtype=np.int64))
        probe = (np.concatenate(probe_ids) if probe_ids
                 else np.empty(0, dtype=np.int64))
        assert len(np.unique(main)) == len(main)
        assert len(np.unique(probe)) == len(probe)
        assert len(np.intersect1d(main, probe)) == 0
        np.testing.assert_array_equal(
            np.sort(np.concatenate([main, probe])), np.arange(n_pixels)
        )

        # The trace's aggregate statistics match the renderer's counters.
        assert trace.density_points == result.density_points
        assert trace.color_points == result.color_points

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(case=render_cases())
    def test_cycle_total_is_sum_of_wavefront_charges(self, case):
        camera, config, num_samples = case
        result = ASDRRenderer(
            self.model(), config=config, num_samples=num_samples
        ).render_image(camera)
        log = []
        report = self.accelerator().simulate_trace(
            result.trace, wavefront_log=log
        )
        assert report.total_cycles == sum(cycles for _, cycles in log)
        assert all(cycles >= 0 for _, cycles in log)
